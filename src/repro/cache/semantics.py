"""The canonical per-event cache semantics, in exactly one place.

Every cache engine in the repo — the online :class:`~repro.cache.cache.Cache`,
the data-carrying functional twin, the multi-configuration replay, the
offline MIN simulator, and the stack-distance sweep's flavor decode —
drives the paper's bypass/kill transfer function through this module.
The transfer function itself lives in :meth:`UnifiedCache.access`;
replacement decisions are delegated to a state-owning
:class:`ReplacementPolicy` (LRU, FIFO, Random, MIN, and the predictive
zoo: SRRIP, BRRIP, DRRIP, SHiP-lite, Hawkeye-lite — see
``docs/POLICIES.md``), so adding a policy or changing a semantic rule
happens once and is visible to all engines at once.

Three layers:

* **Flag/flavor decode** — ``decode_trace`` (per-event flag lists),
  ``flavor_decode`` (the EV_* typed stream shared by the sweep
  engines), ``flag_presence`` and ``next_use_index``.
* **The transfer function** — :class:`UnifiedCache` plus the policy
  protocol.  The per-event handling of bypass probes, kill bits
  (invalidate vs demote), write policies, write-allocation, and
  dirty-writeback accounting appears *only* here.
* **Batch drivers** — :func:`replay_decoded` (one config, optionally
  fronted by the same-block run collapse), and the single-pass
  multi-associativity sweeps :func:`fifo_sweep` / :func:`min_sweep`
  that score a whole geometry column in one walk of the stream.

The contract between every pair of engines is bit-identical
:class:`~repro.cache.stats.CacheStats`, never approximately-equal; the
differential fuzzer and the equivalence batteries in
``tests/test_replay_multi.py`` / ``tests/test_policy_protocol.py``
enforce it.
"""

from itertools import repeat as _repeat

from repro.cache.stats import CacheStats
from repro.vm.trace import FLAG_BYPASS, FLAG_KILL, FLAG_WRITE

try:  # NumPy is an accelerator, never a requirement.
    import numpy as _np
except Exception:  # pragma: no cover - exercised only off-image
    _np = None

_INFINITY = float("inf")

#: Event type codes produced by the flavor decode (order matters only
#: to the consumers' dispatch; plain events are the two smallest).
EV_PLAIN_READ = 0
EV_PLAIN_WRITE = 1
EV_KILL_READ = 2
EV_KILL_WRITE = 3
EV_BYPASS_READ = 4
EV_BYPASS_READ_KILL = 5
EV_BYPASS_WRITE = 6


# ----------------------------------------------------------------------
# Flag and flavor decode
# ----------------------------------------------------------------------


def decode_trace(trace):
    """Unpack the flag bytes once for the whole sweep.

    Returns ``(addresses, writes, bypasses, kills)`` — the address
    array plus three parallel lists of the masked flag bits.  Sharing
    this across N configurations removes N-1 redundant per-event
    decodes from a sweep.
    """
    flags = trace.flags
    return (
        list(trace.addresses),
        [f & FLAG_WRITE for f in flags],
        [f & FLAG_BYPASS for f in flags],
        [f & FLAG_KILL for f in flags],
    )


def flag_presence(columns):
    """Does the trace carry any bypass / kill bits at all?"""
    _addresses, flags = columns
    if _np is not None and isinstance(flags, _np.ndarray):
        present = int(
            _np.bitwise_or.reduce(flags) if len(flags) else 0
        )
    else:
        present = 0
        for flag in flags:
            present |= flag
            if present & (FLAG_BYPASS | FLAG_KILL) == (
                FLAG_BYPASS | FLAG_KILL
            ):
                break
    return bool(present & FLAG_BYPASS), bool(present & FLAG_KILL)


class FlavorStream:
    """One flavor's decoded event stream.

    The blocks and EV_* type codes both as NumPy arrays (``None``
    without NumPy) and as Python lists, plus the geometry-independent
    stat constants — all computed exactly once per flavor no matter
    how many ``(num_sets, assoc)`` passes share them.  The list views
    materialize lazily: the vectorized engine and the run-collapse
    pre-pass stay entirely in array space, so decoding no longer pays
    two ``tolist()`` walks consumers may never ask for.
    """

    __slots__ = (
        "blocks_np", "types_np", "_blocks_list", "_types_list",
        "constants", "plain_only",
    )

    @property
    def blocks_list(self):
        if self._blocks_list is None:
            self._blocks_list = self.blocks_np.tolist()
        return self._blocks_list

    @blocks_list.setter
    def blocks_list(self, value):
        self._blocks_list = value

    @property
    def types_list(self):
        if self._types_list is None:
            self._types_list = self.types_np.tolist()
        return self._types_list

    @types_list.setter
    def types_list(self, value):
        self._types_list = value


def flavor_decode(columns, flavor):
    """Decode the packed columns into a :class:`FlavorStream`.

    ``flavor`` is ``(line_words, honor_bypass, honor_kill,
    write_policy)`` with the honor flags already normalized against
    the trace's flag presence.
    """
    addresses, flags = columns
    line_words, honor_bypass, honor_kill, _write_policy = flavor
    stream = FlavorStream()
    if _np is not None:
        a = _np.asarray(addresses, dtype=_np.int64)
        f = _np.asarray(flags, dtype=_np.int64)
        blocks = a if line_words == 1 else a // line_words
        w = f & FLAG_WRITE
        y = (f & FLAG_BYPASS) >> 1 if honor_bypass else 0
        k = (f & FLAG_KILL) >> 2 if honor_kill else 0
        # plain=0/1 by write bit; kill adds 2; bypass overrides to
        # 4/5/6 (a bypass write sheds its kill bit: the probe already
        # invalidates, so the kill is never separately honored).
        types = (1 - y) * (w + 2 * k) + y * (4 + 2 * w + (1 - w) * k)
        if isinstance(types, int):  # n == 0 with scalar y/k
            types = w
        stream.blocks_np = blocks
        stream.types_np = types
        stream._blocks_list = None
        stream._types_list = None
        counts = _np.bincount(types, minlength=7).tolist()
    else:
        stream.blocks_np = None
        stream.types_np = None
        stream.blocks_list = [
            address if line_words == 1 else address // line_words
            for address in addresses
        ]
        types = []
        counts = [0] * 7
        for flag in flags:
            w = flag & FLAG_WRITE
            y = (flag & FLAG_BYPASS) if honor_bypass else 0
            k = (flag & FLAG_KILL) if honor_kill else 0
            if y:
                t = (
                    EV_BYPASS_WRITE if w
                    else (EV_BYPASS_READ_KILL if k else EV_BYPASS_READ)
                )
            elif k:
                t = EV_KILL_WRITE if w else EV_KILL_READ
            else:
                t = EV_PLAIN_WRITE if w else EV_PLAIN_READ
            types.append(t)
            counts[t] += 1
        stream.types_list = types
    stream.constants = flavor_constants(counts, flavor)
    stream.plain_only = (
        counts[EV_PLAIN_READ] + counts[EV_PLAIN_WRITE] == len(addresses)
    )
    return stream


def flavor_constants(counts, flavor):
    """The geometry-independent :class:`CacheStats` contributions.

    ``kills`` and ``words_to_memory_const`` assume every kill-write
    event reaches a cache line (true whenever
    ``allocate_on_write=True``); the write-around sweeps count kills
    per associativity instead of using this entry.
    """
    _line_words, _hb, _hk, write_policy = flavor
    refs_total = sum(counts)
    writes = counts[EV_PLAIN_WRITE] + counts[EV_KILL_WRITE] + counts[
        EV_BYPASS_WRITE
    ]
    refs_bypassed = (
        counts[EV_BYPASS_READ]
        + counts[EV_BYPASS_READ_KILL]
        + counts[EV_BYPASS_WRITE]
    )
    kills = (
        counts[EV_KILL_READ]
        + counts[EV_KILL_WRITE]
        + counts[EV_BYPASS_READ_KILL]
    )
    words_to_memory = counts[EV_BYPASS_WRITE]
    if write_policy == "writethrough":
        words_to_memory += counts[EV_PLAIN_WRITE] + counts[EV_KILL_WRITE]
    return {
        "refs_total": refs_total,
        "reads": refs_total - writes,
        "writes": writes,
        "refs_cached": refs_total - refs_bypassed,
        "refs_bypassed": refs_bypassed,
        "cached_events": refs_total - refs_bypassed,
        "kills": kills,
        "bypass_writes": counts[EV_BYPASS_WRITE],
        "words_to_memory_const": words_to_memory,
        "counts": counts,
    }


def next_use_index(trace, line_words=1, honor_bypass=True):
    """For each reference index, the index of the next through-cache
    reference to the same block (or infinity).

    Bypassed references (when honored) never touch a line's future, so
    they carry the marker ``-1`` instead of a position.  The result
    depends only on the two arguments, never on geometry or policy, so
    one index serves every MIN configuration of a sweep that shares
    them.
    """
    if _np is not None and hasattr(trace, "to_columns"):
        addresses, flags = trace.to_columns()
        n = len(addresses)
        if n == 0:
            return []
        a = _np.asarray(addresses, dtype=_np.int64)
        blocks = a if line_words == 1 else a // line_words
        if honor_bypass:
            f = _np.asarray(flags, dtype=_np.int64)
            cached = _np.flatnonzero((f & FLAG_BYPASS) == 0)
        else:
            cached = _np.arange(n)
        out = _np.full(n, -1.0)
        if len(cached):
            cb = blocks[cached]
            order = _np.argsort(cb, kind="stable")
            sorted_blocks = cb[order]
            sorted_indices = cached[order]
            # Within a block group the stable sort keeps time order,
            # so each event's next use is simply its right neighbor.
            nxt = _np.empty(len(cached))
            if len(cached) > 1:
                same = sorted_blocks[1:] == sorted_blocks[:-1]
                nxt[:-1] = _np.where(same, sorted_indices[1:], _np.inf)
            nxt[-1] = _np.inf
            unsorted = _np.empty(len(cached))
            unsorted[order] = nxt
            out[cached] = unsorted
        return out.tolist()
    next_use = [0] * len(trace)
    last_seen = {}
    addresses = trace.addresses
    flags_array = trace.flags
    for index in range(len(trace) - 1, -1, -1):
        flags = flags_array[index]
        if honor_bypass and flags & FLAG_BYPASS:
            next_use[index] = -1  # Marker: not a through-cache reference.
            continue
        block = addresses[index] // line_words
        next_use[index] = last_seen.get(block, _INFINITY)
        last_seen[block] = index
    return next_use


# ----------------------------------------------------------------------
# The run-collapse pre-pass
# ----------------------------------------------------------------------


class CollapsedRuns:
    """Per-set consecutive same-block plain runs, collapsed to heads.

    ``indices`` are the surviving event indices in time order (a NumPy
    array when NumPy produced it, for fancy-indexing; ``indices_list``
    is always a plain list).  ``run_writes[p]`` says a collapsed
    follower of head ``p`` wrote; ``last_indices[p]`` is the original
    index of the run's final event (the head itself for singleton
    runs) — the index whose next-use value the MIN policies must see.
    ``follower_reads`` / ``follower_writes`` partition the
    ``collapsed`` guaranteed-hit followers.
    """

    __slots__ = (
        "indices", "indices_list", "run_writes", "last_indices",
        "follower_reads", "follower_writes", "collapsed",
    )


def collapse_runs(blocks, types, num_sets, order=None):
    """Collapse per-set consecutive same-block plain-cached runs.

    A through-cache reference whose set's previous reference touched
    the same block is a guaranteed MRU hit in every geometry and moves
    nothing, so only the run head needs simulating; followers
    contribute guaranteed hits and at most a write-dirtying.  Returns
    a :class:`CollapsedRuns` or ``None`` when nothing collapses.

    Only valid when every plain head leaves its block resident — i.e.
    ``allocate_on_write=True`` (a write-around head miss would make
    its followers miss too); callers gate on that.

    ``order``, when given, must be a stable set-major argsort of the
    events (``TraceBuffer.set_partition``); passing it skips the sort
    here so one partition serves every flavor of a geometry.
    """
    if _np is None or len(blocks) == 0:
        return _collapse_runs_py(blocks, types, num_sets)
    b = blocks if isinstance(blocks, _np.ndarray) else _np.asarray(blocks)
    t = _np.asarray(types, dtype=_np.int64)
    n = len(b)
    sets = b % num_sets
    if order is None:
        order = _np.argsort(sets, kind="stable")
    sb = b[order]
    st = t[order]
    ss = sets[order]
    same_set = _np.empty(n, dtype=bool)
    same_set[0] = False
    same_set[1:] = ss[1:] == ss[:-1]
    plain = st <= EV_PLAIN_WRITE
    follower = _np.empty(n, dtype=bool)
    follower[0] = False
    follower[1:] = (
        same_set[1:]
        & plain[1:]
        & plain[:-1]
        & (sb[1:] == sb[:-1])
    )
    collapsed = int(follower.sum())
    if collapsed == 0:
        return None
    keep_sorted = ~follower
    # Runs are contiguous in set-sorted order and time-ordered inside
    # (the stable sort never reorders one set's events), so each run
    # spans from its head up to the position before the next head.
    head_ids = _np.cumsum(keep_sorted) - 1
    heads = int(keep_sorted.sum())
    follower_write_mask = follower & (st == EV_PLAIN_WRITE)
    wrote = _np.bincount(head_ids[follower_write_mask], minlength=heads) > 0
    head_indices = order[keep_sorted]
    head_pos = _np.flatnonzero(keep_sorted)
    last_pos = _np.empty(heads, dtype=head_pos.dtype)
    last_pos[:-1] = head_pos[1:] - 1
    last_pos[-1] = n - 1
    last_orig = order[last_pos]
    # Back to time order by scattering through raw-index space (O(n),
    # cheaper than re-sorting the head indices).
    keep_raw = _np.zeros(n, dtype=bool)
    keep_raw[head_indices] = True
    wrote_raw = _np.zeros(n, dtype=bool)
    wrote_raw[head_indices] = wrote
    last_raw = _np.empty(n, dtype=last_orig.dtype)
    last_raw[head_indices] = last_orig
    runs = CollapsedRuns()
    runs.indices = _np.flatnonzero(keep_raw)
    runs.indices_list = runs.indices.tolist()
    runs.run_writes = wrote_raw[runs.indices].tolist()
    runs.last_indices = last_raw[runs.indices].tolist()
    runs.follower_writes = int(follower_write_mask.sum())
    runs.follower_reads = collapsed - runs.follower_writes
    runs.collapsed = collapsed
    return runs


class SortedRuns:
    """Set-major run collapse for the vectorized engine.

    Unlike :class:`CollapsedRuns` the surviving head events stay in
    set-major (partition) order — exactly the layout the age-matrix
    kernels consume — so no back-to-time argsort, raw-index bookkeeping
    or list materialization is ever paid.  ``blocks`` / ``types`` /
    ``sets`` are the gathered head columns; ``run_writes[p]`` says a
    collapsed follower of head ``p`` wrote.
    """

    __slots__ = (
        "blocks", "types", "sets", "run_writes",
        "follower_reads", "follower_writes", "collapsed",
    )


def collapse_runs_sorted(blocks, types, num_sets, order):
    """Collapse runs directly in set-major order (NumPy only).

    Same follower rule as :func:`collapse_runs` — and the same
    ``allocate_on_write`` validity caveat — but the result keeps the
    partition's set-major layout and always includes the gathered
    block/type/set columns, even when nothing collapses.
    """
    b = blocks if isinstance(blocks, _np.ndarray) else _np.asarray(blocks)
    t = _np.asarray(types, dtype=_np.int64)
    n = len(b)
    runs = SortedRuns()
    runs.follower_reads = runs.follower_writes = runs.collapsed = 0
    if n == 0:
        runs.blocks = b
        runs.types = t
        runs.sets = b
        runs.run_writes = _np.zeros(0, dtype=bool)
        return runs
    sb = b[order]
    st = t[order]
    ss = sb % num_sets
    same_set = _np.empty(n, dtype=bool)
    same_set[0] = False
    same_set[1:] = ss[1:] == ss[:-1]
    plain = st <= EV_PLAIN_WRITE
    follower = _np.empty(n, dtype=bool)
    follower[0] = False
    follower[1:] = (
        same_set[1:]
        & plain[1:]
        & plain[:-1]
        & (sb[1:] == sb[:-1])
    )
    collapsed = int(follower.sum())
    if collapsed == 0:
        runs.blocks = sb
        runs.types = st
        runs.sets = ss
        runs.run_writes = _np.zeros(n, dtype=bool)
        return runs
    keep = ~follower
    head_ids = _np.cumsum(keep) - 1
    heads = int(keep.sum())
    follower_write_mask = follower & (st == EV_PLAIN_WRITE)
    runs.blocks = sb[keep]
    runs.types = st[keep]
    runs.sets = ss[keep]
    runs.run_writes = (
        _np.bincount(head_ids[follower_write_mask], minlength=heads) > 0
    )
    runs.follower_writes = int(follower_write_mask.sum())
    runs.follower_reads = collapsed - runs.follower_writes
    runs.collapsed = collapsed
    return runs


def _collapse_runs_py(blocks, types, num_sets):
    """Pure-Python twin of :func:`collapse_runs`.

    Tracks each set's current run head by position so follower writes
    dirty the right head even when other sets' events interleave.
    """
    last_block = {}
    last_plain = {}
    head_pos = {}
    indices = []
    run_writes = []
    last_indices = []
    follower_reads = 0
    follower_writes = 0
    for i, block in enumerate(blocks):
        t = types[i]
        s = block % num_sets
        plain = t <= EV_PLAIN_WRITE
        if (
            plain
            and last_plain.get(s, False)
            and last_block.get(s) == block
        ):
            pos = head_pos[s]
            last_indices[pos] = i
            if t == EV_PLAIN_WRITE:
                run_writes[pos] = True
                follower_writes += 1
            else:
                follower_reads += 1
        else:
            if plain:
                head_pos[s] = len(indices)
            indices.append(i)
            run_writes.append(False)
            last_indices.append(i)
        last_block[s] = block
        last_plain[s] = plain
    collapsed = follower_reads + follower_writes
    if collapsed == 0:
        return None
    runs = CollapsedRuns()
    runs.indices = indices
    runs.indices_list = indices
    runs.run_writes = run_writes
    runs.last_indices = last_indices
    runs.follower_reads = follower_reads
    runs.follower_writes = follower_writes
    runs.collapsed = collapsed
    return runs


# ----------------------------------------------------------------------
# Replacement policies
# ----------------------------------------------------------------------

# Entry layout shared by every policy: the semantics core reads and
# writes only these three leading slots; everything after them is
# policy-private bookkeeping.
ENTRY_DIRTY = 0
ENTRY_DEAD = 1
ENTRY_VALUE = 2

# Way-list private slots (the online policies).
_WAY_TAG = 3
_WAY_VALID = 4
_WAY_STAMP = 5
_WAY_INSERTED = 6

# Extra way-list slots claimed by the predictive (RRIP-family)
# policies; plain way policies never allocate them.
_WAY_RRPV = 7
_WAY_SIG = 8
_WAY_OUTCOME = 9
_WAY_SET = 10

# MIN private slot.
_MIN_NEXT_USE = 3

# -- RRIP-family constants (docs/POLICIES.md) --------------------------

#: 2-bit re-reference prediction values: 0 = near-immediate,
#: RRPV_MAX = distant (the eviction frontier).
RRPV_MAX = 3
RRPV_LONG = RRPV_MAX - 1

#: BRRIP inserts distant except every Nth install per set, which gets
#: the long (SRRIP) position.  The throttle is a deterministic per-set
#: install counter — never the clock — so collapsed and uncollapsed
#: drivers agree and DRRIP leader sets replay standalone bit-exactly.
BRRIP_THROTTLE = 32

#: DRRIP set-dueling: leader sets every DUEL_PERIOD sets (clamped to
#: the geometry), a 10-bit PSEL saturating counter trained on leader
#: misses.
DUEL_PERIOD = 32
PSEL_BITS = 10
PSEL_INIT = 1 << (PSEL_BITS - 1)
PSEL_MAX = (1 << PSEL_BITS) - 1

#: SHiP-lite: 2-bit saturating signature history counters.
SHCT_MAX = 3
SHCT_INIT = 1

#: Hawkeye-lite: 3-bit saturating friendliness counters; a signature
#: is cache-friendly while its counter stays at or above the midpoint.
HAWKEYE_MAX = 7
HAWKEYE_INIT = 4

#: The static reference signature used by the SHiP/Hawkeye predictors:
#: the trace's annotation byte (write/bypass/kill/ambiguous/origin
#: bits — all static properties of the reference site), excluding the
#: dynamic FLAG_INSTRUCTION bit.  The trace format carries no per-site
#: program counter, and the signature must survive the RPTRACE2
#: round-trip through the artifact cache, so it is derived from
#: ``(flags)`` alone.
SIGNATURE_MASK = 0x7F


def signature_column(trace):
    """Per-event static reference signatures for a trace.

    Returns a list aligned with the trace's event positions; feed it
    to :func:`make_policy` for the signature-indexed policies (SHiP,
    Hawkeye).  Uses the columnar decode when NumPy is available.
    """
    if _np is not None:
        columns = getattr(trace, "to_columns", None)
        if columns is not None:
            _addresses, flags = columns()
            return _np.bitwise_and(
                _np.asarray(flags, dtype=_np.int64), SIGNATURE_MASK
            ).tolist()
    return [flags & SIGNATURE_MASK for _address, flags in trace]


_M64 = (1 << 64) - 1


def _mix64(seed, set_index, draw):
    """A splitmix64-style hash of ``(seed, set, draw ordinal)``.

    The counter-based RNG behind :class:`RandomPolicy`: every driver
    that replays the same trace makes the same draws in the same
    per-set order, so victims agree bit-exactly across the serial,
    multi-config, functional, and one-pass lane engines.
    """
    x = (
        seed * 0x9E3779B97F4A7C15
        + set_index * 0xBF58476D1CE4E5B9
        + draw * 0x94D049BB133111EB
    ) & _M64
    x ^= x >> 30
    x = (x * 0xBF58476D1CE4E5B9) & _M64
    x ^= x >> 27
    x = (x * 0x94D049BB133111EB) & _M64
    x ^= x >> 31
    return x


def _by_stamp(line):
    return line[_WAY_STAMP]


def _by_inserted(line):
    return line[_WAY_INSERTED]


class ReplacementPolicy:
    """State-owning replacement policy behind :class:`UnifiedCache`.

    The policy owns the resident-line storage; the semantics core
    never sees sets directly.  Entries are small lists whose leading
    ``ENTRY_DIRTY`` / ``ENTRY_DEAD`` / ``ENTRY_VALUE`` slots belong to
    the core and whose tail belongs to the policy.  ``evict`` must
    prefer dead lines (smallest stamp first) before applying its own
    order — the paper's dead-line reuse is policy-independent.
    """

    __slots__ = ()

    #: Policies that consume the trace position (MIN's next-use index,
    #: the signature-indexed predictors) set this so drivers know to
    #: thread event indices through.
    needs_index = False

    #: Whether the same-block run collapse preserves this policy's
    #: state bit-exactly.  Collapse absorbs guaranteed-hit followers
    #: without calling ``touch``, so it is only sound for policies
    #: whose hit update is idempotent within a run (LRU, FIFO, Random,
    #: MIN).  The RRIP family promotes RRPV non-idempotently on every
    #: hit, so its policies clear this and drivers replay them
    #: uncollapsed.
    collapse_safe = True

    def reset(self, config):
        """(Re)build empty per-set state for ``config``'s geometry."""
        raise NotImplementedError

    def lookup(self, set_index, block):
        """The resident entry for ``block``, or ``None``."""
        raise NotImplementedError

    def touch(self, entry, clock, index):
        """Record a hit on ``entry`` (recency/next-use update)."""
        raise NotImplementedError

    def room(self, set_index):
        """Is there a free slot, making eviction unnecessary?"""
        raise NotImplementedError

    def evict(self, set_index):
        """Choose, remove, and return ``(block, entry)`` of a victim.

        Only called when ``room`` is ``False``; the returned entry
        still carries its dirty bit for writeback accounting.
        """
        raise NotImplementedError

    def install(self, set_index, block, clock, index):
        """Insert ``block`` (there is room) and return its clean entry."""
        raise NotImplementedError

    def invalidate(self, set_index, block, entry):
        """Drop a resident entry (bypass probe or kill)."""
        raise NotImplementedError

    def demote(self, entry):
        """A kill retired ``entry`` in demote mode (it stays resident).

        The core has already marked it ``ENTRY_DEAD``; predictive
        policies additionally force their own predicted-dead state
        (distant RRPV) and exempt the line from predictor training —
        the compiler has supplied the reuse verdict.
        """

    def entries(self):
        """Yield ``(block, entry)`` for every resident line."""
        raise NotImplementedError


class _WayPolicy(ReplacementPolicy):
    """Shared way-ordered line storage for the online policies.

    The per-set state is a fixed list of ways, exactly like a hardware
    set — way order is load-bearing: free-slot filling scans ways in
    order, and the Random policy draws over the way list, so the
    victim sequence is reproducible across every driver.
    """

    __slots__ = ("_sets",)

    #: Extra way-list slots appended after ``_WAY_INSERTED`` (the RRIP
    #: family claims four: rrpv, signature, outcome, set index).
    _extra_slots = 0

    def reset(self, config):
        extra = self._extra_slots
        self._sets = [
            [
                [False, False, None, -1, False, 0, 0] + [None] * extra
                for _ in range(config.associativity)
            ]
            for _ in range(config.num_sets)
        ]

    def lookup(self, set_index, block):
        for line in self._sets[set_index]:
            if line[_WAY_VALID] and line[_WAY_TAG] == block:
                return line
        return None

    def touch(self, entry, clock, index):
        entry[_WAY_STAMP] = clock

    def room(self, set_index):
        for line in self._sets[set_index]:
            if not line[_WAY_VALID]:
                return True
        return False

    def evict(self, set_index):
        lines = self._sets[set_index]
        dead = [line for line in lines if line[ENTRY_DEAD]]
        if dead:
            victim = min(dead, key=_by_stamp)
        else:
            victim = self._victim(set_index, lines)
        victim[_WAY_VALID] = False
        return victim[_WAY_TAG], victim

    def install(self, set_index, block, clock, index):
        for line in self._sets[set_index]:
            if not line[_WAY_VALID]:
                line[ENTRY_DIRTY] = False
                line[ENTRY_DEAD] = False
                line[_WAY_TAG] = block
                line[_WAY_VALID] = True
                line[_WAY_STAMP] = clock
                line[_WAY_INSERTED] = clock
                return line
        raise AssertionError("install without room")

    def invalidate(self, set_index, block, entry):
        entry[_WAY_VALID] = False
        entry[ENTRY_DIRTY] = False

    def entries(self):
        for lines in self._sets:
            for line in lines:
                if line[_WAY_VALID]:
                    yield line[_WAY_TAG], line

    def _victim(self, set_index, lines):
        raise NotImplementedError


class LRUPolicy(_WayPolicy):
    """Least-recently-touched victim (the paper's baseline)."""

    __slots__ = ()
    name = "lru"

    def _victim(self, set_index, lines):
        return min(lines, key=_by_stamp)


class FIFOPolicy(_WayPolicy):
    """Oldest-installed victim; touches never refresh position."""

    __slots__ = ()
    name = "fifo"

    def _victim(self, set_index, lines):
        return min(lines, key=_by_inserted)


class RandomPolicy(_WayPolicy):
    """Counter-based seeded uniform victim.

    Each draw hashes ``(seed, set index, per-set draw ordinal)``
    (:func:`_mix64`) and picks that rank in install order, so the
    choice is a pure function of the per-set eviction history — no
    shared RNG stream.  A draw happens only when no dead line
    short-circuits the choice, so every driver (serial, multi-config,
    functional, and the one-pass lane sweep, where install order is
    the residency dict's insertion order) reproduces the identical
    victim sequence.
    """

    __slots__ = ("_seed", "_draws")
    name = "random"

    def reset(self, config):
        super().reset(config)
        self._seed = config.seed
        self._draws = [0] * config.num_sets

    def _victim(self, set_index, lines):
        draw = self._draws[set_index]
        self._draws[set_index] = draw + 1
        choice = _mix64(self._seed, set_index, draw) % len(lines)
        return sorted(lines, key=_by_inserted)[choice]


class MinPolicy(ReplacementPolicy):
    """Belady's MIN: evict the block whose next use is farthest away.

    Per-set state is an insertion-ordered dict; the first strict
    minimum over ``(not dead, -next_use)`` wins, so infinity ties
    break by insertion order — the same order the original offline
    simulator produced.
    """

    __slots__ = ("_sets", "_assoc", "_next_use")
    name = "min"
    needs_index = True

    def __init__(self, next_use):
        self._next_use = next_use

    def reset(self, config):
        self._assoc = config.associativity
        self._sets = [dict() for _ in range(config.num_sets)]

    def lookup(self, set_index, block):
        return self._sets[set_index].get(block)

    def touch(self, entry, clock, index):
        entry[_MIN_NEXT_USE] = self._next_use[index]

    def room(self, set_index):
        return len(self._sets[set_index]) < self._assoc

    def evict(self, set_index):
        lines = self._sets[set_index]
        victim_block = None
        victim_key = None
        for block, entry in lines.items():
            next_use_pos = entry[_MIN_NEXT_USE]
            key = (
                0 if entry[ENTRY_DEAD] else 1,
                -next_use_pos if next_use_pos != _INFINITY else -_INFINITY,
            )
            if victim_key is None or key < victim_key:
                victim_key = key
                victim_block = block
        return victim_block, lines.pop(victim_block)

    def install(self, set_index, block, clock, index):
        entry = [False, False, None, self._next_use[index]]
        self._sets[set_index][block] = entry
        return entry

    def invalidate(self, set_index, block, entry):
        del self._sets[set_index][block]

    def entries(self):
        for lines in self._sets:
            yield from lines.items()


class _RRIPPolicy(_WayPolicy):
    """Shared 2-bit RRPV machinery for the predictive policies.

    Insertion position is the subclass knob (``_insert``); hits
    promote to RRPV 0; the victim scan ages the whole set to the
    eviction frontier in one step and breaks frontier ties toward the
    least-recently-touched line, so a just-promoted MRU block is never
    the victim while an alternative exists.  Hit promotion is not
    idempotent within a same-block run, so the family opts out of the
    run collapse (``collapse_safe = False``).
    """

    __slots__ = ()
    collapse_safe = False
    _extra_slots = 4  # rrpv, signature, outcome, set index

    def install(self, set_index, block, clock, index):
        line = super().install(set_index, block, clock, index)
        sig = self._signature(index)
        line[_WAY_SET] = set_index
        line[_WAY_SIG] = sig
        line[_WAY_OUTCOME] = False
        line[_WAY_RRPV] = self._insert(set_index, sig, index)
        return line

    def touch(self, entry, clock, index):
        entry[_WAY_STAMP] = clock
        entry[_WAY_RRPV] = 0
        self._on_hit(entry, index)

    def evict(self, set_index):
        block, victim = super().evict(set_index)
        self._on_evict(victim)
        return block, victim

    def demote(self, entry):
        # Kill/bypass interaction: the compiler said dead, so force the
        # hardware's predicted-dead state and withhold the line from
        # predictor training (its non-reuse is knowledge, not evidence).
        entry[_WAY_RRPV] = RRPV_MAX
        entry[_WAY_SIG] = None

    def _victim(self, set_index, lines):
        top = lines[0][_WAY_RRPV]
        for line in lines:
            if line[_WAY_RRPV] > top:
                top = line[_WAY_RRPV]
        if top < RRPV_MAX:
            bump = RRPV_MAX - top
            for line in lines:
                line[_WAY_RRPV] += bump
        victim = None
        for line in lines:
            if line[_WAY_RRPV] >= RRPV_MAX and (
                victim is None or line[_WAY_STAMP] < victim[_WAY_STAMP]
            ):
                victim = line
        return victim

    # -- subclass hooks ------------------------------------------------

    def _signature(self, index):
        return None

    def _insert(self, set_index, sig, index):
        raise NotImplementedError

    def _on_hit(self, entry, index):
        pass

    def _on_evict(self, victim):
        pass


class SRRIPPolicy(_RRIPPolicy):
    """Static RRIP: insert at the long position, promote on hit."""

    __slots__ = ()
    name = "srrip"

    def _insert(self, set_index, sig, index):
        return RRPV_LONG


class BRRIPPolicy(_RRIPPolicy):
    """Bimodal RRIP: insert distant, every Nth per-set install long."""

    __slots__ = ("_throttle",)
    name = "brrip"

    def reset(self, config):
        super().reset(config)
        self._throttle = [0] * config.num_sets

    def _insert(self, set_index, sig, index):
        count = self._throttle[set_index]
        self._throttle[set_index] = count + 1
        return RRPV_LONG if count % BRRIP_THROTTLE == 0 else RRPV_MAX


class DRRIPPolicy(_RRIPPolicy):
    """Dynamic RRIP: set-dueling between SRRIP and BRRIP insertion.

    Leader sets are fixed by geometry (every ``DUEL_PERIOD`` sets,
    clamped so small caches still duel); a saturating PSEL counter
    charges each leader miss against its policy, and follower sets
    insert with whichever side PSEL currently favors.  ``monitor``
    exposes per-leader-set hit counts — a leader set's state depends
    only on its own access subsequence, so those counts replay
    standalone under pure SRRIP/BRRIP bit-exactly (the Hypothesis
    suite holds it to that).
    """

    __slots__ = ("_throttle", "_psel", "_roles", "monitor")
    name = "drrip"

    def reset(self, config):
        super().reset(config)
        num_sets = config.num_sets
        self._throttle = [0] * num_sets
        self._psel = PSEL_INIT
        period = min(num_sets, DUEL_PERIOD)
        roles = []
        for set_index in range(num_sets):
            phase = set_index % period
            if phase == 0:
                roles.append("srrip")
            elif period >= 2 and phase == period // 2:
                roles.append("brrip")
            else:
                roles.append(None)
        self._roles = roles
        self.monitor = {"srrip": {}, "brrip": {}}

    def _insert(self, set_index, sig, index):
        role = self._roles[set_index]
        if role == "srrip":
            if self._psel < PSEL_MAX:
                self._psel += 1
            brrip = False
        elif role == "brrip":
            if self._psel > 0:
                self._psel -= 1
            brrip = True
        else:
            brrip = self._psel > PSEL_INIT
        if not brrip:
            return RRPV_LONG
        count = self._throttle[set_index]
        self._throttle[set_index] = count + 1
        return RRPV_LONG if count % BRRIP_THROTTLE == 0 else RRPV_MAX

    def _on_hit(self, entry, index):
        role = self._roles[entry[_WAY_SET]]
        if role is not None:
            hits = self.monitor[role]
            set_index = entry[_WAY_SET]
            hits[set_index] = hits.get(set_index, 0) + 1


class SHiPPolicy(_RRIPPolicy):
    """SHiP-lite: signature history counters steer insertion.

    A 2-bit saturating counter per static reference signature (the
    trace's annotation byte — see :data:`SIGNATURE_MASK`) learns
    whether that signature's installs see reuse: hits train up and set
    the line's outcome bit, an eviction without reuse trains down.  A
    zero counter predicts dead-on-arrival and inserts distant.
    Invalidations (bypass probes, kills) never train — the compiler
    already ruled on those lines.
    """

    __slots__ = ("_signatures", "_shct")
    name = "ship"
    needs_index = True

    def __init__(self, signatures):
        self._signatures = signatures

    def reset(self, config):
        super().reset(config)
        self._shct = {}

    def _signature(self, index):
        return self._signatures[index]

    def _insert(self, set_index, sig, index):
        if self._shct.get(sig, SHCT_INIT) == 0:
            return RRPV_MAX
        return RRPV_LONG

    def _on_hit(self, entry, index):
        sig = entry[_WAY_SIG]
        if sig is not None:
            entry[_WAY_OUTCOME] = True
            count = self._shct.get(sig, SHCT_INIT)
            if count < SHCT_MAX:
                self._shct[sig] = count + 1

    def _on_evict(self, victim):
        sig = victim[_WAY_SIG]
        if sig is not None and not victim[_WAY_OUTCOME]:
            count = self._shct.get(sig, SHCT_INIT)
            if count > 0:
                self._shct[sig] = count - 1


class HawkeyePolicy(_RRIPPolicy):
    """Hawkeye-lite: learn from what Belady's MIN *would have done*.

    Every through-cache access also runs through a per-set shadow OPT
    that mirrors :class:`MinPolicy` exactly — same always-install,
    same farthest-next-use victim, same tie order — driven by the
    precomputed :func:`next_use_index`, i.e. the OPTgen oracle is the
    existing incremental MIN machinery rather than a liveness-vector
    reconstruction.  A shadow hit trains the access's signature
    cache-friendly, a shadow miss trains it averse; friendly installs
    enter at RRPV 0, averse installs at the eviction frontier.
    ``optgen_hits`` counts shadow hits so the property suite can hold
    the oracle to :func:`~repro.cache.belady.simulate_min`.
    """

    __slots__ = (
        "_signatures", "_next_use", "_predictor", "_shadow",
        "_shadow_assoc", "optgen_hits", "optgen_refs",
    )
    name = "hawkeye"
    needs_index = True

    def __init__(self, next_use, signatures):
        self._next_use = next_use
        self._signatures = signatures

    def reset(self, config):
        super().reset(config)
        self._predictor = {}
        self._shadow = [dict() for _ in range(config.num_sets)]
        self._shadow_assoc = config.associativity
        self.optgen_hits = 0
        self.optgen_refs = 0

    def install(self, set_index, block, clock, index):
        self._optgen(set_index, block, index)
        return super().install(set_index, block, clock, index)

    def touch(self, entry, clock, index):
        self._optgen(entry[_WAY_SET], entry[_WAY_TAG], index)
        super().touch(entry, clock, index)

    def _signature(self, index):
        return self._signatures[index]

    def _insert(self, set_index, sig, index):
        if self._predictor.get(sig, HAWKEYE_INIT) >= HAWKEYE_INIT:
            return 0
        return RRPV_MAX

    def _optgen(self, set_index, block, index):
        """One access through the shadow OPT; trains the predictor."""
        shadow = self._shadow[set_index]
        sig = self._signatures[index]
        counters = self._predictor
        count = counters.get(sig, HAWKEYE_INIT)
        self.optgen_refs += 1
        if block in shadow:
            self.optgen_hits += 1
            if count < HAWKEYE_MAX:
                counters[sig] = count + 1
        else:
            if count > 0:
                counters[sig] = count - 1
            if len(shadow) >= self._shadow_assoc:
                # MinPolicy's victim order: farthest next use, first
                # strict winner on infinity ties (insertion order).
                victim_block = None
                victim_key = None
                for resident, position in shadow.items():
                    key = (
                        -position if position != _INFINITY else -_INFINITY
                    )
                    if victim_key is None or key < victim_key:
                        victim_key = key
                        victim_block = resident
                del shadow[victim_block]
        shadow[block] = self._next_use[index]


_POLICY_CLASSES = {
    "lru": LRUPolicy,
    "fifo": FIFOPolicy,
    "random": RandomPolicy,
    "srrip": SRRIPPolicy,
    "brrip": BRRIPPolicy,
    "drrip": DRRIPPolicy,
    "ship": SHiPPolicy,
    "hawkeye": HawkeyePolicy,
}

#: Policies whose constructors need precomputed trace columns
#: (next-use index and/or signature column) — drivers build these
#: through :func:`make_policy` before replaying.
PREDICTOR_POLICIES = ("ship", "hawkeye")


def policy_collapse_safe(name):
    """May the same-block run collapse front a replay of ``name``?"""
    policy_class = _POLICY_CLASSES.get(name)
    return policy_class is None or policy_class.collapse_safe


def make_policy(config, next_use=None, signatures=None):
    """Instantiate the :class:`ReplacementPolicy` for ``config``.

    MIN and Hawkeye need the trace's precomputed ``next_use`` index
    (see :func:`next_use_index`); SHiP and Hawkeye need its
    ``signatures`` column (see :func:`signature_column`); the plain
    online policies ignore both.
    """
    if config.policy == "ship":
        if signatures is None:
            raise ValueError("the SHiP policy needs a signature column")
        return SHiPPolicy(signatures)
    if config.policy == "hawkeye":
        if next_use is None or signatures is None:
            raise ValueError(
                "the Hawkeye policy needs next-use and signature columns"
            )
        return HawkeyePolicy(next_use, signatures)
    if config.policy == "min" or next_use is not None:
        if next_use is None:
            raise ValueError("the MIN policy needs a next-use index")
        return MinPolicy(next_use)
    try:
        return _POLICY_CLASSES[config.policy]()
    except KeyError:
        raise ValueError("unknown policy {!r}".format(config.policy))


# ----------------------------------------------------------------------
# The transfer function
# ----------------------------------------------------------------------


class UnifiedCache:
    """The paper's cache semantics over a pluggable policy.

    ``access`` is the single source of truth for how a reference with
    bypass/kill bits moves words, dirties lines, and retires dead
    values; every engine is a driver over it.  With ``data=True`` the
    cache also carries values (the functional twin): ``main`` is the
    backing word store, writes deposit ``value``, and reads leave the
    observed word in ``self.value``.
    """

    __slots__ = (
        "config", "stats", "policy", "main", "value", "last_entry",
        "_clock", "_line_words", "_num_sets", "_honor_bypass",
        "_honor_kill", "_writethrough", "_allocate_on_write",
        "_kill_invalidates",
    )

    def __init__(self, config, policy=None, data=False, next_use=None):
        self.config = config
        self.stats = CacheStats()
        if policy is None:
            policy = make_policy(config, next_use=next_use)
        policy.reset(config)
        self.policy = policy
        self._clock = 0
        self._line_words = config.line_words
        self._num_sets = config.num_sets
        self._honor_bypass = config.honor_bypass
        self._honor_kill = config.honor_kill
        self._writethrough = config.write_policy == "writethrough"
        self._allocate_on_write = config.allocate_on_write
        self._kill_invalidates = (
            config.kill_mode == "invalidate" and config.line_words == 1
        )
        if data and config.line_words != 1:
            raise ValueError(
                "data-carrying caches require line_words=1 "
                "(got {})".format(config.line_words)
            )
        self.main = {} if data else None
        self.value = None
        self.last_entry = None

    # -- the canonical per-event semantics ----------------------------

    def access(self, address, is_write, bypass=False, kill=False,
               value=None, index=None):
        """Apply one reference; returns ``"hit"``/``"miss"``/``"bypass"``.

        ``index`` is the trace position (consumed by next-use-driven
        policies); ``value`` is the stored word in data mode.
        """
        stats = self.stats
        stats.refs_total += 1
        if is_write:
            stats.writes += 1
        else:
            stats.reads += 1
        if bypass and not self._honor_bypass:
            bypass = False
        if kill and not self._honor_kill:
            kill = False
        self._clock += 1
        line_words = self._line_words
        block = address // line_words
        set_index = block % self._num_sets
        policy = self.policy
        entry = policy.lookup(set_index, block)
        main = self.main

        if bypass:
            stats.refs_bypassed += 1
            self.last_entry = None
            if is_write:
                # A bypassed store goes straight to memory; a resident
                # copy is stale and dies without writeback (the store
                # supersedes whatever the line held).
                stats.words_to_memory += 1
                stats.bypass_writes += 1
                if main is not None:
                    main[address] = value
                if entry is not None:
                    stats.probe_hits += 1
                    policy.invalidate(set_index, block, entry)
                return "bypass"
            if entry is not None:
                stats.probe_hits += 1
                stats.bypass_read_hits += 1
                if main is not None:
                    self.value = entry[ENTRY_VALUE]
                if entry[ENTRY_DIRTY]:
                    if kill:
                        # Last use of a dead value: drop it instead of
                        # flushing.
                        stats.dead_drops += 1
                    else:
                        stats.writebacks += 1
                        stats.words_to_memory += line_words
                        if main is not None:
                            main[address] = entry[ENTRY_VALUE]
                if kill:
                    stats.kills += 1
                policy.invalidate(set_index, block, entry)
                return "bypass"
            stats.words_from_memory += 1
            stats.bypass_reads_from_memory += 1
            if kill:
                stats.kills += 1
            if main is not None:
                self.value = main.get(address, 0)
            return "bypass"

        # -- through-cache path ---------------------------------------
        stats.refs_cached += 1
        writethrough = self._writethrough
        if is_write and writethrough:
            stats.words_to_memory += 1
            if main is not None:
                main[address] = value

        if entry is not None:
            stats.hits += 1
            if is_write:
                if not writethrough:
                    entry[ENTRY_DIRTY] = True
                if main is not None:
                    entry[ENTRY_VALUE] = value
            elif main is not None:
                self.value = entry[ENTRY_VALUE]
            policy.touch(entry, self._clock, index)
            entry[ENTRY_DEAD] = False
            self.last_entry = entry
            if kill:
                self._kill(set_index, block, entry)
            return "hit"

        stats.misses += 1
        if kill and not is_write:
            # A killed read misses *around* the cache: the value is
            # dead after this one use, so serve the word and install
            # nothing.
            stats.kills += 1
            stats.words_from_memory += 1
            if main is not None:
                self.value = main.get(address, 0)
            self.last_entry = None
            return "miss"
        if is_write and not self._allocate_on_write:
            # Write-around: the store goes to memory without claiming
            # a line (and without honoring any kill — there is no line
            # to retire).
            if not writethrough:
                stats.words_to_memory += 1
                if main is not None:
                    main[address] = value
            self.last_entry = None
            return "miss"

        if not policy.room(set_index):
            victim_block, victim = policy.evict(set_index)
            stats.evictions += 1
            if victim[ENTRY_DIRTY]:
                stats.writebacks += 1
                stats.words_to_memory += line_words
                if main is not None:
                    main[victim_block] = victim[ENTRY_VALUE]
        entry = policy.install(set_index, block, self._clock, index)
        if is_write:
            if not writethrough:
                entry[ENTRY_DIRTY] = True
            if main is not None:
                entry[ENTRY_VALUE] = value
        elif main is not None:
            entry[ENTRY_VALUE] = main.get(address, 0)
            self.value = entry[ENTRY_VALUE]
        if not (is_write and line_words == 1):
            # A one-word write-allocate needs no fill; everything else
            # fetches the line.
            stats.words_from_memory += line_words
        self.last_entry = entry
        if kill:
            self._kill(set_index, block, entry)
        return "miss"

    def _kill(self, set_index, block, entry):
        """Retire a dead value after its final touch."""
        stats = self.stats
        stats.kills += 1
        if self._kill_invalidates:
            if entry[ENTRY_DIRTY]:
                stats.dead_drops += 1
            self.policy.invalidate(set_index, block, entry)
            stats.dead_line_frees += 1
            self.last_entry = None
        else:
            # Demote (or a partial-line kill): mark dead so the next
            # eviction in this set prefers it; predictive policies
            # additionally force their predicted-dead state.
            entry[ENTRY_DEAD] = True
            self.policy.demote(entry)

    def absorb_followers(self, follower_reads, follower_writes):
        """Account collapsed same-block run followers.

        Followers are guaranteed hits in every geometry (their head
        left the block resident and MRU); only reference counting and
        writethrough store traffic remain.  Line-dirtying for
        follower writes is handled at the head via ``last_entry``.
        """
        stats = self.stats
        count = follower_reads + follower_writes
        stats.refs_total += count
        stats.reads += follower_reads
        stats.writes += follower_writes
        stats.refs_cached += count
        stats.hits += count
        if self._writethrough:
            stats.words_to_memory += follower_writes

    # -- inspection and data-mode helpers -----------------------------

    def probe(self, address):
        """Would ``address`` hit right now?  Counts nothing."""
        block = address // self._line_words
        return self.policy.lookup(block % self._num_sets, block) is not None

    def contents(self):
        """``{block: dirty}`` for every resident line."""
        return {
            block: entry[ENTRY_DIRTY]
            for block, entry in self.policy.entries()
        }

    def peek(self, address):
        """Observe a word without touching state (cached copy wins)."""
        block = address // self._line_words
        entry = self.policy.lookup(block % self._num_sets, block)
        if entry is not None:
            return entry[ENTRY_VALUE]
        return self.main.get(address, 0)

    def poke(self, address, value):
        """Set a word directly, keeping any cached copy coherent."""
        block = address // self._line_words
        entry = self.policy.lookup(block % self._num_sets, block)
        if entry is not None:
            entry[ENTRY_VALUE] = value
        self.main[address] = value

    def flush(self):
        """Write every dirty line back to ``main`` (lines stay resident)."""
        for block, entry in self.policy.entries():
            if entry[ENTRY_DIRTY]:
                self.main[block * self._line_words] = entry[ENTRY_VALUE]
                entry[ENTRY_DIRTY] = False


# ----------------------------------------------------------------------
# Batch drivers
# ----------------------------------------------------------------------


def replay_decoded(decoded, config, policy=None, next_use=None, runs=None):
    """Replay one decoded stream through one configuration.

    ``runs`` (a :class:`CollapsedRuns` for this config's effective
    flavor and set count) fronts the loop with the same-block run
    collapse; pass it only when ``config.allocate_on_write`` holds.
    Collapse-unsafe policies (the RRIP family) ignore ``runs`` and
    replay every event.
    """
    addresses, writes, bypasses, kills = decoded
    core = UnifiedCache(config, policy=policy, next_use=next_use)
    access = core.access
    if (
        runs is not None
        and config.allocate_on_write
        and core.policy.collapse_safe
    ):
        dirty_runs = not core._writethrough
        run_writes = runs.run_writes
        last_indices = runs.last_indices
        for pos, i in enumerate(runs.indices_list):
            access(addresses[i], writes[i], bypasses[i], kills[i],
                   index=last_indices[pos])
            if run_writes[pos] and dirty_runs:
                core.last_entry[ENTRY_DIRTY] = True
        core.absorb_followers(runs.follower_reads, runs.follower_writes)
    elif core.policy.needs_index:
        index = 0
        for address, is_write, bypass, kill in zip(
            addresses, writes, bypasses, kills
        ):
            access(address, is_write, bypass, kill, index=index)
            index += 1
    else:
        for address, is_write, bypass, kill in zip(
            addresses, writes, bypasses, kills
        ):
            access(address, is_write, bypass, kill)
    return core.stats


# Per-associativity counter slots used by the single-pass sweeps.
_C_HITS = 0
_C_MISSES = 1
_C_EVICTIONS = 2
_C_WRITEBACKS = 3
_C_WORDS_FROM = 4
_C_WORDS_TO = 5
_C_PROBE_HITS = 6
_C_KILLS = 7
_C_DEAD_DROPS = 8
_C_DEAD_FREES = 9
_C_BYPASS_READ_HITS = 10
_C_BYPASS_READ_MEM = 11
_C_SLOTS = 12


def _sweep_stats(stream, counters, collapsed):
    """Assemble exact :class:`CacheStats` from sweep counters."""
    const = stream.constants
    stats = CacheStats()
    stats.refs_total = const["refs_total"]
    stats.reads = const["reads"]
    stats.writes = const["writes"]
    stats.refs_cached = const["refs_cached"]
    stats.refs_bypassed = const["refs_bypassed"]
    stats.bypass_writes = const["bypass_writes"]
    stats.hits = counters[_C_HITS] + collapsed
    stats.misses = counters[_C_MISSES]
    stats.evictions = counters[_C_EVICTIONS]
    stats.writebacks = counters[_C_WRITEBACKS]
    stats.words_from_memory = counters[_C_WORDS_FROM]
    stats.words_to_memory = (
        const["words_to_memory_const"] + counters[_C_WORDS_TO]
    )
    stats.probe_hits = counters[_C_PROBE_HITS]
    stats.kills = counters[_C_KILLS]
    stats.dead_drops = counters[_C_DEAD_DROPS]
    stats.dead_line_frees = counters[_C_DEAD_FREES]
    stats.bypass_read_hits = counters[_C_BYPASS_READ_HITS]
    stats.bypass_reads_from_memory = counters[_C_BYPASS_READ_MEM]
    return stats


def fifo_sweep(stream, num_sets, assocs, line_words, kill_mode,
               write_policy, allocate_on_write):
    """Score every FIFO associativity of one flavor group in one pass.

    FIFO has no stacking property, so each associativity keeps its own
    per-set residency dict — but one walk of the shared typed stream
    (fronted by the run collapse) serves them all, and the victim
    choice (free slot, else smallest-stamp dead line, else oldest
    install) is representation-independent because clock stamps are
    globally unique.  Returns ``{assoc: CacheStats}``.
    """

    def make_evict():
        def evict(lines, counters, set_index):
            _fifo_evict(lines, counters, line_words)

        return evict

    return _lane_sweep(stream, num_sets, assocs, line_words, kill_mode,
                       write_policy, allocate_on_write, make_evict)


def random_sweep(stream, num_sets, assocs, line_words, kill_mode,
                 write_policy, allocate_on_write, seed):
    """Score every Random associativity of one flavor group in one pass.

    Shares the lane walk with :func:`fifo_sweep`; the victim is the
    counter-based :func:`_mix64` draw over install order, which in a
    lane's residency dict *is* its insertion order — so each lane's
    per-set draw counters replay exactly the serial
    :class:`RandomPolicy` sequence for that associativity.  Returns
    ``{assoc: CacheStats}``.
    """

    def make_evict():
        draws = [0] * num_sets

        def evict(lines, counters, set_index):
            _random_evict(lines, counters, line_words, seed, set_index,
                          draws)

        return evict

    return _lane_sweep(stream, num_sets, assocs, line_words, kill_mode,
                       write_policy, allocate_on_write, make_evict)


def _lane_sweep(stream, num_sets, assocs, line_words, kill_mode,
                write_policy, allocate_on_write, make_evict):
    """One walk of the typed stream over per-associativity lanes.

    The shared engine behind :func:`fifo_sweep` and
    :func:`random_sweep`: ``make_evict()`` is called once per lane and
    must return an ``evict(lines, counters, set_index)`` that pops a
    victim from the residency dict and accounts the eviction.
    """
    writethrough = write_policy == "writethrough"
    kill_invalidates = kill_mode == "invalidate" and line_words == 1
    runs = None
    if allocate_on_write:
        blocks_src = (
            stream.blocks_np if stream.blocks_np is not None
            else stream.blocks_list
        )
        types_src = (
            stream.types_np if stream.types_np is not None
            else stream.types_list
        )
        runs = collapse_runs(blocks_src, types_src, num_sets)
    blocks = stream.blocks_list
    types = stream.types_list
    if runs is not None:
        events = [
            (blocks[i], types[i], wrote)
            for i, wrote in zip(runs.indices_list, runs.run_writes)
        ]
        collapsed = runs.collapsed
    else:
        events = zip(blocks, types, _false_forever())
        collapsed = 0

    uniq = sorted(set(assocs))
    states = [[{} for _ in range(num_sets)] for _ in uniq]
    counters = [[0] * _C_SLOTS for _ in uniq]
    lanes = [
        (assoc, state, c, make_evict())
        for assoc, state, c in zip(uniq, states, counters)
    ]

    clock = 0
    for block, event_type, follower_wrote in events:
        clock += 1
        set_index = block % num_sets
        for assoc, sets, c, evict in lanes:
            lines = sets[set_index]
            entry = lines.get(block)
            if event_type <= EV_PLAIN_WRITE:
                is_write = event_type == EV_PLAIN_WRITE
                if entry is not None:
                    c[_C_HITS] += 1
                    if not writethrough and (is_write or follower_wrote):
                        entry[0] = True
                    entry[1] = False
                    entry[2] = clock
                    continue
                c[_C_MISSES] += 1
                if is_write and not allocate_on_write:
                    if not writethrough:
                        c[_C_WORDS_TO] += 1
                    continue
                if len(lines) >= assoc:
                    evict(lines, c, set_index)
                dirty = (is_write or follower_wrote) and not writethrough
                lines[block] = [dirty, False, clock, clock]
                if not (is_write and line_words == 1):
                    c[_C_WORDS_FROM] += line_words
                continue
            if event_type == EV_KILL_READ:
                if entry is None:
                    c[_C_MISSES] += 1
                    c[_C_KILLS] += 1
                    c[_C_WORDS_FROM] += 1
                    continue
                c[_C_HITS] += 1
                entry[1] = False
                entry[2] = clock
                c[_C_KILLS] += 1
                if kill_invalidates:
                    if entry[0]:
                        c[_C_DEAD_DROPS] += 1
                    del lines[block]
                    c[_C_DEAD_FREES] += 1
                else:
                    entry[1] = True
                continue
            if event_type == EV_KILL_WRITE:
                if entry is not None:
                    c[_C_HITS] += 1
                    if not writethrough:
                        entry[0] = True
                    entry[1] = False
                    entry[2] = clock
                else:
                    c[_C_MISSES] += 1
                    if not allocate_on_write:
                        if not writethrough:
                            c[_C_WORDS_TO] += 1
                        continue
                    if len(lines) >= assoc:
                        evict(lines, c, set_index)
                    dirty = not writethrough
                    entry = [dirty, False, clock, clock]
                    lines[block] = entry
                    if line_words != 1:
                        c[_C_WORDS_FROM] += line_words
                c[_C_KILLS] += 1
                if kill_invalidates:
                    if entry[0]:
                        c[_C_DEAD_DROPS] += 1
                    del lines[block]
                    c[_C_DEAD_FREES] += 1
                else:
                    entry[1] = True
                continue
            if event_type == EV_BYPASS_WRITE:
                if entry is not None:
                    c[_C_PROBE_HITS] += 1
                    del lines[block]
                continue
            # Bypass read, with or without a kill bit.
            if entry is not None:
                c[_C_PROBE_HITS] += 1
                c[_C_BYPASS_READ_HITS] += 1
                if entry[0]:
                    if event_type == EV_BYPASS_READ_KILL:
                        c[_C_DEAD_DROPS] += 1
                    else:
                        c[_C_WRITEBACKS] += 1
                        c[_C_WORDS_TO] += line_words
                if event_type == EV_BYPASS_READ_KILL:
                    c[_C_KILLS] += 1
                del lines[block]
            else:
                c[_C_WORDS_FROM] += 1
                c[_C_BYPASS_READ_MEM] += 1
                if event_type == EV_BYPASS_READ_KILL:
                    c[_C_KILLS] += 1

    return {
        assoc: _sweep_stats(stream, c, collapsed)
        for assoc, _sets, c, _evict in lanes
    }


def _fifo_evict(lines, counters, line_words):
    """Pop the FIFO victim (dead-first) and account the eviction."""
    victim_block = None
    dead_stamp = None
    fifo_block = None
    fifo_inserted = None
    for block, entry in lines.items():
        if entry[1] and (dead_stamp is None or entry[2] < dead_stamp):
            dead_stamp = entry[2]
            victim_block = block
        if fifo_inserted is None or entry[3] < fifo_inserted:
            fifo_inserted = entry[3]
            fifo_block = block
    if victim_block is None:
        victim_block = fifo_block
    victim = lines.pop(victim_block)
    counters[_C_EVICTIONS] += 1
    if victim[0]:
        counters[_C_WRITEBACKS] += 1
        counters[_C_WORDS_TO] += line_words


def _random_evict(lines, counters, line_words, seed, set_index, draws):
    """Pop the counter-RNG Random victim (dead-first) and account it.

    The residency dict's iteration order is its insertion order, which
    for lane entries equals ascending install stamp — the same ranking
    :class:`RandomPolicy` sorts its way list into, so the ``_mix64``
    draw lands on the identical block.  The draw counter advances only
    when a draw actually happens (a dead line short-circuits it).
    """
    victim_block = None
    dead_stamp = None
    for block, entry in lines.items():
        if entry[1] and (dead_stamp is None or entry[2] < dead_stamp):
            dead_stamp = entry[2]
            victim_block = block
    if victim_block is None:
        draw = draws[set_index]
        draws[set_index] = draw + 1
        choice = _mix64(seed, set_index, draw) % len(lines)
        for position, block in enumerate(lines):
            if position == choice:
                victim_block = block
                break
    victim = lines.pop(victim_block)
    counters[_C_EVICTIONS] += 1
    if victim[0]:
        counters[_C_WRITEBACKS] += 1
        counters[_C_WORDS_TO] += line_words


def min_sweep(stream, num_sets, assocs, line_words, kill_mode,
              write_policy, allocate_on_write, next_use):
    """Score every MIN associativity of one flavor group in one pass.

    Shares the typed stream, the run collapse, and one next-use index
    across every associativity; per-set state and the
    farthest-next-use victim scan mirror :class:`MinPolicy` exactly
    (insertion-ordered dicts, first strict minimum wins), so the
    statistics are bit-identical to the per-config path.  Returns
    ``{assoc: CacheStats}``.
    """
    writethrough = write_policy == "writethrough"
    kill_invalidates = kill_mode == "invalidate" and line_words == 1
    runs = None
    if allocate_on_write:
        blocks_src = (
            stream.blocks_np if stream.blocks_np is not None
            else stream.blocks_list
        )
        types_src = (
            stream.types_np if stream.types_np is not None
            else stream.types_list
        )
        runs = collapse_runs(blocks_src, types_src, num_sets)
    # Events carry everything the hot loop needs — block, set, type,
    # follower-write flag, next-use position — precomputed once (and
    # vectorized where NumPy holds the columns) so the per-lane walk
    # does no arithmetic or index chasing of its own.
    if runs is not None:
        if _np is not None and stream.blocks_np is not None:
            eb = stream.blocks_np[runs.indices]
            events = list(zip(
                eb.tolist(),
                (eb % num_sets).tolist(),
                stream.types_np[runs.indices].tolist(),
                runs.run_writes,
                [next_use[i] for i in runs.last_indices],
            ))
        else:
            blocks = stream.blocks_list
            types = stream.types_list
            events = [
                (blocks[i], blocks[i] % num_sets, types[i], wrote,
                 next_use[last])
                for i, wrote, last in zip(
                    runs.indices_list, runs.run_writes, runs.last_indices
                )
            ]
        collapsed = runs.collapsed
    else:
        if _np is not None and stream.blocks_np is not None:
            set_indices = (stream.blocks_np % num_sets).tolist()
        else:
            set_indices = [b % num_sets for b in stream.blocks_list]
        events = list(zip(
            stream.blocks_list, set_indices, stream.types_list,
            _repeat(False), next_use,
        ))
        collapsed = 0

    uniq = sorted(set(assocs))
    states = [[{} for _ in range(num_sets)] for _ in uniq]
    counters = [[0] * _C_SLOTS for _ in uniq]
    lanes = list(zip(uniq, states, counters))

    for block, set_index, event_type, follower_wrote, position in events:
        if event_type <= EV_PLAIN_WRITE:
            is_write = event_type == EV_PLAIN_WRITE
            dirties = (is_write or follower_wrote) and not writethrough
            fetches = not (is_write and line_words == 1)
            for assoc, sets, c in lanes:
                lines = sets[set_index]
                entry = lines.get(block)
                if entry is not None:
                    c[_C_HITS] += 1
                    if dirties:
                        entry[0] = True
                    entry[1] = False
                    entry[2] = position
                    continue
                c[_C_MISSES] += 1
                if is_write and not allocate_on_write:
                    if not writethrough:
                        c[_C_WORDS_TO] += 1
                    continue
                if len(lines) >= assoc:
                    _min_evict(lines, c, line_words)
                lines[block] = [dirties, False, position]
                if fetches:
                    c[_C_WORDS_FROM] += line_words
            continue
        if event_type == EV_KILL_READ:
            for assoc, sets, c in lanes:
                lines = sets[set_index]
                entry = lines.get(block)
                if entry is None:
                    c[_C_MISSES] += 1
                    c[_C_KILLS] += 1
                    c[_C_WORDS_FROM] += 1
                    continue
                c[_C_HITS] += 1
                entry[1] = False
                entry[2] = position
                c[_C_KILLS] += 1
                if kill_invalidates:
                    if entry[0]:
                        c[_C_DEAD_DROPS] += 1
                    del lines[block]
                    c[_C_DEAD_FREES] += 1
                else:
                    entry[1] = True
            continue
        if event_type == EV_KILL_WRITE:
            for assoc, sets, c in lanes:
                lines = sets[set_index]
                entry = lines.get(block)
                if entry is not None:
                    c[_C_HITS] += 1
                    if not writethrough:
                        entry[0] = True
                    entry[1] = False
                    entry[2] = position
                else:
                    c[_C_MISSES] += 1
                    if not allocate_on_write:
                        if not writethrough:
                            c[_C_WORDS_TO] += 1
                        continue
                    if len(lines) >= assoc:
                        _min_evict(lines, c, line_words)
                    entry = [not writethrough, False, position]
                    lines[block] = entry
                    if line_words != 1:
                        c[_C_WORDS_FROM] += line_words
                c[_C_KILLS] += 1
                if kill_invalidates:
                    if entry[0]:
                        c[_C_DEAD_DROPS] += 1
                    del lines[block]
                    c[_C_DEAD_FREES] += 1
                else:
                    entry[1] = True
            continue
        if event_type == EV_BYPASS_WRITE:
            for assoc, sets, c in lanes:
                lines = sets[set_index]
                if block in lines:
                    c[_C_PROBE_HITS] += 1
                    del lines[block]
            continue
        is_kill = event_type == EV_BYPASS_READ_KILL
        for assoc, sets, c in lanes:
            lines = sets[set_index]
            entry = lines.get(block)
            if entry is not None:
                c[_C_PROBE_HITS] += 1
                c[_C_BYPASS_READ_HITS] += 1
                if entry[0]:
                    if is_kill:
                        c[_C_DEAD_DROPS] += 1
                    else:
                        c[_C_WRITEBACKS] += 1
                        c[_C_WORDS_TO] += line_words
                if is_kill:
                    c[_C_KILLS] += 1
                del lines[block]
            else:
                c[_C_WORDS_FROM] += 1
                c[_C_BYPASS_READ_MEM] += 1
                if is_kill:
                    c[_C_KILLS] += 1

    return {
        assoc: _sweep_stats(stream, c, collapsed)
        for assoc, _sets, c in lanes
    }


def _min_evict(lines, counters, line_words):
    """Pop the MIN victim (dead-first, then farthest next use).

    Same ordering as :class:`MinPolicy` — dead beats live, then the
    larger next-use position, first strict winner on ties — written
    as scalar comparisons so the scan allocates nothing.
    """
    victim_block = None
    victim_dead = False
    victim_pos = -1.0
    for block, entry in lines.items():
        dead = entry[1]
        pos = entry[2]
        if dead:
            if not victim_dead or pos > victim_pos:
                victim_dead = True
                victim_pos = pos
                victim_block = block
        elif not victim_dead and pos > victim_pos:
            victim_pos = pos
            victim_block = block
    victim = lines.pop(victim_block)
    counters[_C_EVICTIONS] += 1
    if victim[0]:
        counters[_C_WRITEBACKS] += 1
        counters[_C_WORDS_TO] += line_words


def _false_forever():
    while True:
        yield False
