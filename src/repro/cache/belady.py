"""Belady's MIN (optimal replacement) over the unified semantics.

The offline oracle: evict the block whose next use is farthest in the
future.  The per-event semantics and the victim search both live in
:mod:`repro.cache.semantics` (:class:`~repro.cache.semantics.MinPolicy`
driven by :class:`~repro.cache.semantics.UnifiedCache`); this module
keeps the one-shot :func:`simulate_min` entry point and re-exports
:func:`next_use_index` for sweep callers that share the index.
"""

from repro.cache.cache import CacheConfig
from repro.cache.semantics import (  # noqa: F401  (re-exported)
    MinPolicy,
    UnifiedCache,
    next_use_index,
)
from repro.vm.trace import FLAG_BYPASS, FLAG_KILL, FLAG_WRITE

__all__ = ["next_use_index", "simulate_min"]


def simulate_min(trace, config=None, next_use=None, **kwargs):
    """Simulate ``trace`` under MIN replacement; returns CacheStats.

    ``config`` carries the geometry and the honor/kill semantics (its
    ``policy`` field is unused — replacement is MIN).  The bypass path
    behaves exactly as in the online simulator; only the victim choice
    differs.  ``next_use`` accepts a precomputed
    :func:`next_use_index` (it must match the config's ``line_words``
    and ``honor_bypass``) so sweeps can amortize the first pass.
    """
    if config is None:
        config = CacheConfig(policy="lru", **kwargs)  # policy field unused
    if next_use is None:
        next_use = next_use_index(
            trace, config.line_words, config.honor_bypass
        )
    core = UnifiedCache(config, policy=MinPolicy(next_use))
    access = core.access
    for index, (address, flags) in enumerate(trace):
        access(
            address,
            bool(flags & FLAG_WRITE),
            bool(flags & FLAG_BYPASS),
            bool(flags & FLAG_KILL),
            index=index,
        )
    return core.stats
