"""Belady's MIN replacement, offline, with the dead-line modification.

MIN evicts the block whose next use lies farthest in the future
[Bel66].  It needs the whole trace up front, so it is implemented as a
two-pass trace simulator rather than an online policy.  The paper
(Section 3.2) notes the dead-marking idea applies to MIN as well: a
kill-marked reference tells MIN the block's next use is at infinity
*and* that its dirty data need not be written back.
"""

from repro.cache.cache import CacheConfig
from repro.cache.stats import CacheStats
from repro.vm.trace import FLAG_BYPASS, FLAG_KILL, FLAG_WRITE

_INFINITY = float("inf")


def _next_use_positions(trace, config):
    """For each reference index, the index of the next through-cache
    reference to the same block (or infinity)."""
    line_words = config.line_words
    honor_bypass = config.honor_bypass
    next_use = [0] * len(trace)
    last_seen = {}
    addresses = trace.addresses
    flags_array = trace.flags
    for index in range(len(trace) - 1, -1, -1):
        flags = flags_array[index]
        if honor_bypass and flags & FLAG_BYPASS:
            next_use[index] = -1  # Marker: not a through-cache reference.
            continue
        block = addresses[index] // line_words
        next_use[index] = last_seen.get(block, _INFINITY)
        last_seen[block] = index
    return next_use


def simulate_min(trace, config=None, **kwargs):
    """Simulate ``trace`` under MIN replacement; returns CacheStats.

    The bypass path behaves exactly as in the online simulator; only
    the victim choice differs.
    """
    if config is None:
        config = CacheConfig(policy="lru", **kwargs)  # policy field unused
    stats = CacheStats()
    next_use = _next_use_positions(trace, config)
    num_sets = config.num_sets
    line_words = config.line_words
    assoc = config.associativity

    # Per set: {block: [next_use, dirty, dead]}.
    sets = [dict() for _ in range(num_sets)]

    for index, (address, flags) in enumerate(trace):
        stats.refs_total += 1
        is_write = bool(flags & FLAG_WRITE)
        if is_write:
            stats.writes += 1
        else:
            stats.reads += 1
        bypass = bool(flags & FLAG_BYPASS) and config.honor_bypass
        kill = bool(flags & FLAG_KILL) and config.honor_kill
        block = address // line_words
        lines = sets[block % num_sets]

        if bypass:
            stats.refs_bypassed += 1
            entry = lines.get(block)
            if is_write:
                stats.words_to_memory += 1
                stats.bypass_writes += 1
                if entry is not None:
                    stats.probe_hits += 1
                    del lines[block]
            else:
                if entry is not None:
                    stats.probe_hits += 1
                    stats.bypass_read_hits += 1
                    if entry[1]:
                        if kill:
                            stats.dead_drops += 1
                        else:
                            stats.writebacks += 1
                            stats.words_to_memory += line_words
                    del lines[block]
                else:
                    stats.words_from_memory += 1
                    stats.bypass_reads_from_memory += 1
                if kill:
                    stats.kills += 1
            continue

        stats.refs_cached += 1
        entry = lines.get(block)
        if entry is not None:
            stats.hits += 1
            entry[0] = next_use[index]
            if is_write:
                entry[1] = True
            entry[2] = False
            if kill:
                _kill_entry(stats, lines, block, entry, config)
            continue

        stats.misses += 1
        if kill and not is_write:
            stats.kills += 1
            stats.words_from_memory += 1
            continue
        if len(lines) >= assoc:
            victim_block = _choose_min_victim(lines)
            victim = lines.pop(victim_block)
            stats.evictions += 1
            if victim[1]:
                stats.writebacks += 1
                stats.words_to_memory += line_words
        lines[block] = [next_use[index], is_write, False]
        if not (is_write and line_words == 1):
            stats.words_from_memory += line_words
        if kill:
            _kill_entry(stats, lines, block, lines[block], config)
    return stats


def _kill_entry(stats, lines, block, entry, config):
    stats.kills += 1
    if config.kill_mode == "invalidate" and config.line_words == 1:
        if entry[1]:
            stats.dead_drops += 1
        del lines[block]
        stats.dead_line_frees += 1
    else:
        entry[2] = True


def _choose_min_victim(lines):
    """Dead lines first, then the block used farthest in the future."""
    best_block = None
    best_key = None
    for block, (next_use_pos, _dirty, dead) in lines.items():
        key = (0 if dead else 1, -next_use_pos if next_use_pos != _INFINITY else -_INFINITY)
        # We want: dead first; then farthest next use.  Compare via
        # tuple where smaller wins: dead -> 0, farther -> smaller.
        if best_key is None or key < best_key:
            best_key = key
            best_block = block
    return best_block
