"""Belady's MIN replacement, offline, with the dead-line modification.

MIN evicts the block whose next use lies farthest in the future
[Bel66].  It needs the whole trace up front, so it is implemented as a
two-pass trace simulator rather than an online policy.  The paper
(Section 3.2) notes the dead-marking idea applies to MIN as well: a
kill-marked reference tells MIN the block's next use is at infinity
*and* that its dirty data need not be written back.

The second pass is exposed incrementally as :class:`MinSimulator` so
the multi-configuration replay core (:mod:`repro.cache.replay`) can
drive several MIN geometries through one trace walk; the first pass
(:func:`next_use_index`) depends only on ``(line_words,
honor_bypass)`` and is shared between all configurations that agree on
those two fields.
"""

from repro.cache.cache import CacheConfig
from repro.cache.stats import CacheStats
from repro.vm.trace import FLAG_BYPASS, FLAG_KILL, FLAG_WRITE

_INFINITY = float("inf")


def next_use_index(trace, line_words=1, honor_bypass=True):
    """For each reference index, the index of the next through-cache
    reference to the same block (or infinity).

    Bypassed references (when honored) never touch a line's future, so
    they carry the marker ``-1`` instead of a position.  The result
    depends only on the two arguments, never on geometry or policy, so
    one index serves every MIN configuration of a sweep that shares
    them.
    """
    next_use = [0] * len(trace)
    last_seen = {}
    addresses = trace.addresses
    flags_array = trace.flags
    for index in range(len(trace) - 1, -1, -1):
        flags = flags_array[index]
        if honor_bypass and flags & FLAG_BYPASS:
            next_use[index] = -1  # Marker: not a through-cache reference.
            continue
        block = addresses[index] // line_words
        next_use[index] = last_seen.get(block, _INFINITY)
        last_seen[block] = index
    return next_use


class MinSimulator:
    """One MIN cache consuming a trace event-by-event.

    ``next_use`` must be the :func:`next_use_index` of the trace being
    replayed, computed with this configuration's ``line_words`` and
    ``honor_bypass``; the per-event logic is exactly the body of the
    original one-shot simulator, so feeding every event in order
    reproduces its statistics bit for bit.
    """

    __slots__ = ("config", "stats", "_sets", "_next_use")

    def __init__(self, config, next_use):
        self.config = config
        self.stats = CacheStats()
        # Per set: {block: [next_use, dirty, dead]}.
        self._sets = [dict() for _ in range(config.num_sets)]
        self._next_use = next_use

    def access(self, index, address, flags):
        """Simulate trace event ``index``; mirrors ``Cache.access``."""
        config = self.config
        stats = self.stats
        next_use = self._next_use
        stats.refs_total += 1
        is_write = bool(flags & FLAG_WRITE)
        if is_write:
            stats.writes += 1
        else:
            stats.reads += 1
        bypass = bool(flags & FLAG_BYPASS) and config.honor_bypass
        kill = bool(flags & FLAG_KILL) and config.honor_kill
        line_words = config.line_words
        block = address // line_words
        lines = self._sets[block % config.num_sets]

        if bypass:
            stats.refs_bypassed += 1
            entry = lines.get(block)
            if is_write:
                stats.words_to_memory += 1
                stats.bypass_writes += 1
                if entry is not None:
                    stats.probe_hits += 1
                    del lines[block]
            else:
                if entry is not None:
                    stats.probe_hits += 1
                    stats.bypass_read_hits += 1
                    if entry[1]:
                        if kill:
                            stats.dead_drops += 1
                        else:
                            stats.writebacks += 1
                            stats.words_to_memory += line_words
                    del lines[block]
                else:
                    stats.words_from_memory += 1
                    stats.bypass_reads_from_memory += 1
                if kill:
                    stats.kills += 1
            return

        stats.refs_cached += 1
        entry = lines.get(block)
        if entry is not None:
            stats.hits += 1
            entry[0] = next_use[index]
            if is_write:
                entry[1] = True
            entry[2] = False
            if kill:
                _kill_entry(stats, lines, block, entry, config)
            return

        stats.misses += 1
        if kill and not is_write:
            stats.kills += 1
            stats.words_from_memory += 1
            return
        if len(lines) >= config.associativity:
            victim_block = _choose_min_victim(lines)
            victim = lines.pop(victim_block)
            stats.evictions += 1
            if victim[1]:
                stats.writebacks += 1
                stats.words_to_memory += line_words
        lines[block] = [next_use[index], is_write, False]
        if not (is_write and line_words == 1):
            stats.words_from_memory += line_words
        if kill:
            _kill_entry(stats, lines, block, lines[block], config)


def simulate_min(trace, config=None, next_use=None, **kwargs):
    """Simulate ``trace`` under MIN replacement; returns CacheStats.

    The bypass path behaves exactly as in the online simulator; only
    the victim choice differs.  ``next_use`` accepts a precomputed
    :func:`next_use_index` (it must match the config's ``line_words``
    and ``honor_bypass``) so sweeps can amortize the first pass.
    """
    if config is None:
        config = CacheConfig(policy="lru", **kwargs)  # policy field unused
    if next_use is None:
        next_use = next_use_index(
            trace, config.line_words, config.honor_bypass
        )
    simulator = MinSimulator(config, next_use)
    access = simulator.access
    for index, (address, flags) in enumerate(trace):
        access(index, address, flags)
    return simulator.stats


def _kill_entry(stats, lines, block, entry, config):
    stats.kills += 1
    if config.kill_mode == "invalidate" and config.line_words == 1:
        if entry[1]:
            stats.dead_drops += 1
        del lines[block]
        stats.dead_line_frees += 1
    else:
        entry[2] = True


def _choose_min_victim(lines):
    """Dead lines first, then the block used farthest in the future."""
    best_block = None
    best_key = None
    for block, (next_use_pos, _dirty, dead) in lines.items():
        key = (0 if dead else 1, -next_use_pos if next_use_pos != _INFINITY else -_INFINITY)
        # We want: dead first; then farthest next use.  Compare via
        # tuple where smaller wins: dead -> 0, farther -> smaller.
        if best_key is None or key < best_key:
            best_key = key
            best_block = block
    return best_block
