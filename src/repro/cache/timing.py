"""Analytic memory-access-time model (paper Section 4.4).

The paper argues that "reserving a control bit to obtain speedups of
total memory access time by factors of 2 or more is virtually always
worthwhile."  This model turns simulated :class:`CacheStats` into
cycle counts so that claim can be checked against measured reference
mixes.

Latency defaults are era-plausible: a cache hit costs one cycle, main
memory ten (the paper's "high off-chip to on-chip memory access
ratio").  Register references cost zero and never reach the memory
system — which is the unified model's point: the dominant term of the
speedup comes from value references that left the memory system when
their values moved to registers, and the bypass bit is what makes
that safe without polluting the cache.
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class LatencyModel:
    """Cycle costs of the memory-system events."""

    cache_hit_cycles: int = 1
    memory_cycles: int = 10
    #: Tag-check cycles a through-cache miss pays before its fill.
    miss_detect_cycles: int = 1

    def cycles(self, stats):
        """Total memory-access cycles implied by ``stats``.

        * through-cache hit — one cache access;
        * through-cache miss — tag check, plus the fill from memory
          when one happened (write-allocate misses with line size one
          fetch nothing and pay only the tag check);
        * bypass read — cache speed on a probe hit, memory speed
          otherwise;
        * bypass write — memory speed (no write buffer modelled);
        * write-backs and dead drops are buffered off the critical
          path: bus occupancy (already in ``words_to_memory``), not
          latency.
        """
        fill_words = stats.words_from_memory - stats.bypass_reads_from_memory
        cycles = 0
        cycles += stats.hits * self.cache_hit_cycles
        cycles += stats.misses * self.miss_detect_cycles
        cycles += fill_words * self.memory_cycles
        cycles += stats.bypass_read_hits * self.cache_hit_cycles
        cycles += stats.bypass_reads_from_memory * self.memory_cycles
        cycles += stats.bypass_writes * self.memory_cycles
        return cycles

    def average_access_time(self, stats):
        if stats.refs_total == 0:
            return 0.0
        return self.cycles(stats) / stats.refs_total


def value_reference_time(stats, refs_in_registers=0, model=None,
                         register_cycles=0):
    """Total cycles to service *all* value references of a program.

    ``refs_in_registers`` counts references the allocator satisfied
    from registers (the difference between the promotion-none
    reference count and this compilation's memory-reference count);
    they cost ``register_cycles`` each — zero by default, since a
    register read is part of the instruction (the paper's benefit [1]).
    """
    model = model or LatencyModel()
    return model.cycles(stats) + refs_in_registers * register_cycles


def access_time_speedup(baseline_cycles, improved_cycles):
    """Plain ratio with a zero guard."""
    if improved_cycles == 0:
        return float("inf")
    return baseline_cycles / improved_cycles
