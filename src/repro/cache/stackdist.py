"""One-pass, bypass/kill-aware stack-distance profiling of block streams.

Mattson's classical observation is that an LRU cache of every
associativity can be scored in a single pass: keep the referenced
blocks of a set in recency order and a reference that finds its block
at stack position ``p`` hits exactly the caches with ``assoc >= p``.
This module extends that machinery to the paper's unified-management
semantics and reconstructs **exact** :class:`~repro.cache.stats.CacheStats`
— bit-identical to serial :meth:`repro.cache.cache.Cache.access`
replay, not approximations — for every ``(num_sets, associativity)``
geometry sharing one *flavor* (``line_words``, honored flag set,
write policy) in one pass per ``(flavor, num_sets)`` pair.

Three extensions are needed beyond the textbook stack:

* **Bypass probes and kills leave holes.**  A bypassing reference (and
  a kill on a resident block, in invalidate mode) removes the block
  from every cache that holds it, which frees a way in precisely those
  caches.  Popping the entry would mis-predict later evictions, so the
  entry is replaced by a *hole* pinned at its stack position: caches
  with ``assoc >= position`` see the free way, smaller caches (which
  had already evicted the block) see nothing.  A later install
  consumes the topmost hole above the touched position — the caches
  that had the free way absorb the fill without an eviction — and a
  touch of a block *below* a hole migrates the hole down to the
  touched block's old position.  Section "the hole algebra" in
  ``docs/PERFORMANCE.md`` spells out the case analysis.
* **Dirty thresholds.**  A block's dirtiness is not one bit but a
  threshold: a write dirties the line in every cache (write-allocate
  installs dirty, write hits dirty), while a read touch at stack
  position ``p`` re-installs *clean* in every cache with ``assoc < p``
  and preserves the state above.  So "dirty in caches with assoc >= D"
  is an invariant, with writes setting ``D = 1`` and read touches
  setting ``D = max(D, p)``.  Writebacks, dead-line drops, and
  bypass-hit flushes all become exact 2-D ``(position, D)`` histogram
  sums.
* **Evictions are prefix shifts.**  When a touch moves a block from
  position ``p`` to the top, the entries at positions ``1..p-1`` (or
  ``1..h-1`` when the hole at ``h`` absorbs the fill) shift down one
  position; an entry crossing the ``q -> q+1`` boundary is exactly an
  eviction from the ``assoc == q`` cache, and it costs a writeback
  exactly when its dirty threshold is ``<= q``.

The profiler is exact for LRU with write-allocate (any write policy,
any line size), with kills honored only when they fully invalidate
(``kill_mode == "invalidate"`` and one-word lines — the demote mode
reorders evictions away from pure recency and has no stack property).
FIFO, Random, and Belady MIN have no stack property, but their sweeps
still share one walk of the typed stream per flavor through the
set-count stackers in :mod:`repro.cache.semantics`
(:func:`~repro.cache.semantics.fifo_sweep` /
:func:`~repro.cache.semantics.random_sweep` /
:func:`~repro.cache.semantics.min_sweep`).  Everything else — the
predictive zoo (SRRIP/BRRIP/DRRIP/SHiP/Hawkeye),
write-around LRU, demoted-kill LRU — is the fallback path's job
(:func:`repro.cache.replay.replay_trace_multi`);
:func:`replay_trace_sweep` routes each requested configuration to
whichever engine applies and merges the results in request order.

NumPy (optional but present in the supported environment) accelerates
the per-flavor decode and the run-collapse pre-pass; without it the
same pre-pass runs on plain Python lists.
"""

from itertools import repeat

from repro.cache.semantics import (
    EV_BYPASS_READ,
    EV_BYPASS_READ_KILL,
    EV_BYPASS_WRITE,
    EV_KILL_READ,
    EV_KILL_WRITE,
    EV_PLAIN_READ,
    EV_PLAIN_WRITE,
    collapse_runs,
    fifo_sweep,
    flag_presence as _flag_presence,
    flavor_decode as _flavor_decode,
    min_sweep,
    next_use_index,
    random_sweep,
)
from repro.cache.stats import CacheStats


def supports_stackdist(config, has_bypass, has_kill):
    """Can the profiler reproduce ``config`` exactly on such a trace?

    ``has_bypass`` / ``has_kill`` say whether the trace carries any
    bypass/kill flag bits at all: a config that honors kills over a
    kill-free trace is still pure LRU, so the trace content widens the
    supported set.
    """
    if config.policy != "lru":
        return False
    if not config.allocate_on_write:
        return False
    if config.honor_kill and has_kill:
        # Only full invalidation preserves the stack property; the
        # demote mode (and multi-word lines, which force it) prefers
        # dead lines over LRU order.
        if config.kill_mode != "invalidate" or config.line_words != 1:
            return False
    return True


def flavor_key(config, has_bypass, has_kill):
    """The profiling flavor a supported config belongs to.

    Two configs in one flavor consume the identical decoded event
    stream; they may still differ in geometry (``num_sets`` and
    ``associativity``).  Honor flags are normalized against the trace:
    honoring bypass on a bypass-free trace is the same flavor as not
    honoring it.
    """
    return (
        config.line_words,
        bool(config.honor_bypass and has_bypass),
        bool(config.honor_kill and has_kill),
        config.write_policy,
    )


class StackDistanceProfile:
    """Exact sweep results for one ``(flavor, num_sets)`` pass.

    Carries the per-set-derived distance histograms (aggregated over
    sets) alongside everything needed to reconstruct exact
    :class:`CacheStats` for any profiled associativity: positions are
    1-based stack distances clipped to ``assoc_cap + 1`` (the "beyond
    every profiled cache" bucket, which includes cold and
    post-invalidation misses).
    """

    __slots__ = (
        "num_sets",
        "assoc_cap",
        "line_words",
        "write_policy",
        "constants",
        "hist_cached_read",
        "hist_cached_write",
        "hist_kill_read",
        "hist_bypass_read",
        "hist_bypass_write",
        "hist2_kill_read",
        "hist2_bypass_read_kill",
        "hist2_bypass_read_nokill",
        "shift_prefix",
        "wb_hist",
        "collapsed_hits",
        "totals",
    )

    def __init__(self, num_sets, assoc_cap, line_words, write_policy,
                 constants):
        cap = assoc_cap + 2  # positions 1..cap-1 plus the miss bucket
        self.num_sets = num_sets
        self.assoc_cap = assoc_cap
        self.line_words = line_words
        self.write_policy = write_policy
        #: Geometry-independent counter values shared by every
        #: associativity of the pass (see :func:`_flavor_constants`).
        self.constants = constants
        # 1-D position histograms, one bucket per stack distance.
        self.hist_cached_read = [0] * cap
        self.hist_cached_write = [0] * cap
        self.hist_kill_read = [0] * cap
        self.hist_bypass_read = [0] * cap
        self.hist_bypass_write = [0] * cap
        # 2-D (position, dirty-threshold) histograms for the flush
        # accounting of resident-block invalidations.
        self.hist2_kill_read = [[0] * cap for _ in range(cap)]
        self.hist2_bypass_read_kill = [[0] * cap for _ in range(cap)]
        self.hist2_bypass_read_nokill = [[0] * cap for _ in range(cap)]
        #: ``shift_prefix[m]`` counts events whose install shifted the
        #: top ``m`` stack entries down one position; entry ``q`` of a
        #: counted prefix is an eviction from the ``assoc == q`` cache.
        self.shift_prefix = [0] * cap
        #: ``wb_hist[q]`` counts shifted entries that crossed the
        #: ``q -> q+1`` boundary while dirty at ``q`` (victim
        #: writebacks of the ``assoc == q`` cache).
        self.wb_hist = [0] * cap
        #: Collapsed same-block run followers: guaranteed hits at every
        #: profiled associativity (split read/write only for the
        #: histograms' totals; both hit everywhere).
        self.collapsed_hits = 0
        self.totals = {}

    # -- reconstruction -------------------------------------------------

    def stats_for(self, assoc):
        """Exact :class:`CacheStats` for ``(num_sets, assoc)``."""
        if assoc > self.assoc_cap:
            raise ValueError(
                "associativity {} exceeds the profiled cap {}".format(
                    assoc, self.assoc_cap
                )
            )
        c = self.constants
        lw = self.line_words
        writeback = self.write_policy == "writeback"
        up_to = assoc + 1  # positions 1..assoc hit
        kill_write_hist = self.hist_kill_write_positions()

        cached_read_hits = sum(self.hist_cached_read[1:up_to])
        cached_write_hits = sum(self.hist_cached_write[1:up_to])
        kill_read_hits = sum(self.hist_kill_read[1:up_to])
        kill_write_hits = sum(kill_write_hist[1:up_to])
        bypass_read_hits = sum(self.hist_bypass_read[1:up_to])
        bypass_write_hits = sum(self.hist_bypass_write[1:up_to])

        # Each run head lands in exactly one histogram bucket, so the
        # miss side of every hist is its tail; collapsed followers are
        # guaranteed hits at every profiled associativity.
        plain_read_misses = sum(self.hist_cached_read[up_to:])
        plain_write_misses = sum(self.hist_cached_write[up_to:])
        kill_read_misses = sum(self.hist_kill_read[up_to:])
        kill_write_misses = sum(kill_write_hist[up_to:])
        bypass_read_misses = sum(self.hist_bypass_read[up_to:])

        hits = (
            cached_read_hits + cached_write_hits + kill_read_hits
            + kill_write_hits + self.collapsed_hits
        )
        misses = (
            plain_read_misses + plain_write_misses
            + kill_read_misses + kill_write_misses
        )

        # Fills: every through-cache miss fetches a full line except a
        # one-word write-allocate (the write overwrites the line) and a
        # kill read (served around the cache, one word).

        words_from_memory = plain_read_misses * lw + bypass_read_misses
        words_from_memory += kill_read_misses
        if lw > 1:
            words_from_memory += plain_write_misses * lw
            words_from_memory += kill_write_misses * lw

        # Evictions: prefix shifts crossing the assoc boundary.
        evictions = sum(
            self.shift_prefix[m]
            for m in range(assoc, self.assoc_cap + 2)
        )
        victim_writebacks = self.wb_hist[assoc] if writeback else 0

        flush_writebacks = 0
        dead_drops = 0
        if writeback:
            flush_writebacks = _prefix2(
                self.hist2_bypass_read_nokill, assoc
            )
            dead_drops = (
                _prefix2(self.hist2_bypass_read_kill, assoc)
                + _prefix2(self.hist2_kill_read, assoc)
                + self.totals["kill_write"]
            )
        writebacks = victim_writebacks + flush_writebacks

        words_to_memory = c["words_to_memory_const"] + writebacks * lw

        dead_line_frees = kill_read_hits + self.totals["kill_write"]

        return CacheStats(
            refs_total=c["refs_total"],
            reads=c["reads"],
            writes=c["writes"],
            refs_cached=c["refs_cached"],
            refs_bypassed=c["refs_bypassed"],
            hits=hits,
            misses=misses,
            evictions=evictions,
            writebacks=writebacks,
            words_from_memory=words_from_memory,
            words_to_memory=words_to_memory,
            probe_hits=bypass_read_hits + bypass_write_hits,
            kills=c["kills"],
            dead_drops=dead_drops,
            dead_line_frees=dead_line_frees,
            bypass_read_hits=bypass_read_hits,
            bypass_reads_from_memory=bypass_read_misses,
            bypass_writes=c["bypass_writes"],
        )

    def hist_kill_write_positions(self):
        """Kill-write position histogram (stored with the 2-D data)."""
        return self._kill_write_hist

    @property
    def _kill_write_hist(self):
        return self.totals["kill_write_hist"]

    def distance_histogram(self):
        """Aggregate per-set LRU distance histogram of cached refs.

        ``histogram[p]`` counts through-cache references that found
        their block at stack position ``p`` (``p == 0`` holds the
        collapsed guaranteed-MRU hits; the last bucket is "deeper than
        every profiled cache", including cold misses).
        """
        cap = self.assoc_cap + 2
        out = [0] * cap
        out[0] = self.collapsed_hits
        kill_write = self.hist_kill_write_positions()
        for p in range(cap):
            out[p] += (
                self.hist_cached_read[p]
                + self.hist_cached_write[p]
                + self.hist_kill_read[p]
                + kill_write[p]
            )
        return out


def _prefix2(hist2, assoc):
    """Sum of ``hist2[p][d]`` over ``p <= assoc and d <= assoc``."""
    total = 0
    for p in range(1, assoc + 1):
        row = hist2[p]
        for d in range(1, assoc + 1):
            total += row[d]
    return total


# ----------------------------------------------------------------------
# The automaton
# ----------------------------------------------------------------------


def profile_pass(columns, flavor, num_sets, assoc_cap, decoded=None):
    """One pass: profile ``(flavor, num_sets)`` up to ``assoc_cap``.

    Returns a :class:`StackDistanceProfile` from which
    :meth:`~StackDistanceProfile.stats_for` reconstructs exact stats
    for every ``assoc <= assoc_cap``.
    """
    line_words, _hb, _hk, write_policy = flavor
    stream = decoded
    if stream is None:
        stream = _flavor_decode(columns, flavor)
    profile = StackDistanceProfile(
        num_sets, assoc_cap, line_words, write_policy, stream.constants
    )
    counts = stream.constants["counts"]
    profile.totals = {
        "plain_read": counts[EV_PLAIN_READ],
        "plain_write": counts[EV_PLAIN_WRITE],
        "kill_read": counts[EV_KILL_READ],
        "kill_write": counts[EV_KILL_WRITE],
        "bypass_read": counts[EV_BYPASS_READ] + counts[EV_BYPASS_READ_KILL],
        "kill_write_hist": [0] * (assoc_cap + 2),
    }

    if stream.blocks_np is not None:
        runs = collapse_runs(stream.blocks_np, stream.types_np, num_sets)
    else:
        runs = collapse_runs(stream.blocks_list, stream.types_list, num_sets)
    profile.collapsed_hits = runs.collapsed if runs is not None else 0

    if runs is None:
        blocks_it = stream.blocks_list
        types_it = stream.types_list
        rw_it = repeat(False)
    elif stream.blocks_np is not None:
        blocks_it = stream.blocks_np[runs.indices].tolist()
        types_it = stream.types_np[runs.indices].tolist()
        rw_it = runs.run_writes
    else:
        blocks_it = [stream.blocks_list[i] for i in runs.indices_list]
        types_it = [stream.types_list[i] for i in runs.indices_list]
        rw_it = runs.run_writes

    if stream.plain_only:
        _run_plain(profile, zip(blocks_it, types_it, rw_it),
                   num_sets, assoc_cap, write_policy)
    else:
        _run_general(profile, zip(blocks_it, types_it, rw_it),
                     num_sets, assoc_cap, write_policy)
    return profile


def _run_plain(profile, iterator, num_sets, assoc_cap, write_policy):
    """The no-hole fast path: the stream is plain reads/writes only.

    Without bypasses or kills nothing is ever invalidated, so the
    stack never contains holes and every touch is the classic Mattson
    move-to-front.
    """
    writeback = write_policy == "writeback"
    clean = assoc_cap + 1
    miss_bucket = assoc_cap + 1
    sets = [[] for _ in range(num_sets)]
    hist_cr = profile.hist_cached_read
    hist_cw = profile.hist_cached_write
    shift_prefix = profile.shift_prefix
    wb_hist = profile.wb_hist

    for block, is_write, follower_wrote in iterator:
        stack = sets[block % num_sets]
        pos = 0
        for idx, entry in enumerate(stack):
            if entry[0] == block:
                pos = idx + 1
                break
        if pos == 1:
            if writeback and (is_write or follower_wrote):
                stack[0][1] = 1
            (hist_cw if is_write else hist_cr)[1] += 1
            continue
        if pos:
            entry = stack[pos - 1]
            shift_prefix[pos - 1] += 1
            if writeback:
                for q in range(pos - 1):
                    if stack[q][1] <= q + 1:
                        wb_hist[q + 1] += 1
                if is_write or follower_wrote:
                    entry[1] = 1
                elif entry[1] < pos:
                    entry[1] = pos
            del stack[pos - 1]
            stack.insert(0, entry)
            (hist_cw if is_write else hist_cr)[pos] += 1
        else:
            depth = len(stack)
            shift_prefix[depth] += 1
            if writeback:
                for q in range(depth):
                    if stack[q][1] <= q + 1:
                        wb_hist[q + 1] += 1
            if depth == assoc_cap:
                # The bottom entry falls past the deepest profiled
                # cache; its eviction is already in the prefix count.
                del stack[-1]
            stack.insert(0, [
                block,
                1 if (is_write or follower_wrote) and writeback else clean,
            ])
            (hist_cw if is_write else hist_cr)[miss_bucket] += 1


def _run_general(profile, iterator, num_sets, assoc_cap, write_policy):
    """The full automaton: bypass probes and kills leave holes."""
    writeback = write_policy == "writeback"
    clean = assoc_cap + 1
    miss_bucket = assoc_cap + 1
    sets = [[] for _ in range(num_sets)]
    #: Holes per set, so hole searches are skipped while a set has
    #: none (the common case even in unified streams).
    hole_count = [0] * num_sets

    hist_cr = profile.hist_cached_read
    hist_cw = profile.hist_cached_write
    hist_kr = profile.hist_kill_read
    hist_br = profile.hist_bypass_read
    hist_bw = profile.hist_bypass_write
    hist_kw = profile.totals["kill_write_hist"]
    h2_kr = profile.hist2_kill_read
    h2_brk = profile.hist2_bypass_read_kill
    h2_brn = profile.hist2_bypass_read_nokill
    shift_prefix = profile.shift_prefix
    wb_hist = profile.wb_hist

    for block, event_type, follower_wrote in iterator:
        s = block % num_sets
        stack = sets[s]
        pos = 0
        for idx, entry in enumerate(stack):
            if entry[0] == block:
                pos = idx + 1
                break

        if event_type <= EV_KILL_WRITE:
            # Through-cache reference: touch (kill-write touches then
            # invalidates; kill-read never installs).
            if event_type == EV_KILL_READ:
                if pos:
                    hist_kr[pos] += 1
                    if writeback:
                        h2_kr[pos][stack[pos - 1][1]] += 1
                    stack[pos - 1][0] = None
                    hole_count[s] += 1
                else:
                    hist_kr[miss_bucket] += 1
                continue

            is_write = event_type != EV_PLAIN_READ  # PLAIN_WRITE/KILL_WRITE
            if pos == 1:
                # MRU hit: nothing moves, no holes involved.
                if writeback and (is_write or follower_wrote):
                    stack[0][1] = 1
                if event_type == EV_PLAIN_READ:
                    hist_cr[1] += 1
                elif event_type == EV_PLAIN_WRITE:
                    hist_cw[1] += 1
                else:
                    hist_kw[1] += 1
                    stack[0][0] = None
                    hole_count[s] += 1
                continue

            if pos:
                entry = stack[pos - 1]
                hole = -1
                if hole_count[s]:
                    for idx in range(pos - 1):
                        if stack[idx][0] is None:
                            hole = idx
                            break
                if hole >= 0:
                    # Fill absorbed by the hole at ``hole + 1``: the
                    # entries above it shift; the block's old slot
                    # becomes the migrated hole (hole count is net
                    # unchanged).
                    shift_prefix[hole] += 1
                    if writeback:
                        for q in range(hole):
                            if stack[q][1] <= q + 1:
                                wb_hist[q + 1] += 1
                    stack[pos - 1] = [None, 0]
                    del stack[hole]
                else:
                    shift_prefix[pos - 1] += 1
                    if writeback:
                        for q in range(pos - 1):
                            if stack[q][1] <= q + 1:
                                wb_hist[q + 1] += 1
                    del stack[pos - 1]
                if writeback:
                    if is_write or follower_wrote:
                        entry[1] = 1
                    elif entry[1] < pos:
                        entry[1] = pos
                stack.insert(0, entry)
                record = pos
            else:
                # Cold (or previously invalidated/fallen-off) install.
                if hole_count[s]:
                    for idx, entry in enumerate(stack):
                        if entry[0] is None:
                            hole = idx
                            break
                    shift_prefix[hole] += 1
                    if writeback:
                        for q in range(hole):
                            if stack[q][1] <= q + 1:
                                wb_hist[q + 1] += 1
                    del stack[hole]
                    hole_count[s] -= 1
                else:
                    depth = len(stack)
                    shift_prefix[depth] += 1
                    if writeback:
                        for q in range(depth):
                            if stack[q][1] <= q + 1:
                                wb_hist[q + 1] += 1
                    if depth == assoc_cap:
                        # The bottom entry falls past the deepest
                        # profiled cache; its eviction is already in
                        # the prefix count.
                        del stack[-1]
                dirty = (
                    1 if (is_write or follower_wrote) and writeback
                    else clean
                )
                stack.insert(0, [block, dirty])
                record = miss_bucket

            if event_type == EV_PLAIN_READ:
                hist_cr[record] += 1
            elif event_type == EV_PLAIN_WRITE:
                hist_cw[record] += 1
            else:
                hist_kw[record] += 1
                stack[0][0] = None
                hole_count[s] += 1
            continue

        # Bypass path: probe without pushing; resident blocks die.
        if event_type == EV_BYPASS_WRITE:
            if pos:
                hist_bw[pos] += 1
                stack[pos - 1][0] = None
                hole_count[s] += 1
            continue
        if pos:
            hist_br[pos] += 1
            if writeback:
                d = stack[pos - 1][1]
                if event_type == EV_BYPASS_READ_KILL:
                    h2_brk[pos][d] += 1
                else:
                    h2_brn[pos][d] += 1
            stack[pos - 1][0] = None
            hole_count[s] += 1
        else:
            hist_br[miss_bucket] += 1


# ----------------------------------------------------------------------
# Sweep dispatch
# ----------------------------------------------------------------------


def replay_trace_sweep(trace, specs, columns=None, engine=None):
    """Score every spec of a sweep, one-pass where the math allows.

    ``specs`` mixes :class:`~repro.cache.cache.CacheConfig` and
    :class:`~repro.cache.replay.MinConfig` entries exactly like
    :func:`~repro.cache.replay.replay_trace_multi`; the result list is
    aligned with the input and bit-identical to the serial
    :func:`~repro.cache.replay.replay_trace` path for every entry.
    Supported LRU configurations are grouped by flavor and set count
    and scored by :func:`profile_pass`; FIFO, Random, and Belady MIN
    specs are grouped the same way and scored by the single-pass
    set-count stackers (:func:`repro.cache.semantics.fifo_sweep` /
    :func:`repro.cache.semantics.random_sweep` /
    :func:`repro.cache.semantics.min_sweep`); everything else
    (the predictive zoo, write-around LRU, demoted-kill LRU) falls
    back to the multi-replay core.  ``engine`` forces a path:
    ``"stackdist"``
    raises :class:`ValueError` if any spec is outside the hole-stack
    profiler (FIFO/Random/MIN included — they have no stack property),
    ``"vectorized"`` scores the profiled groups with the set-major
    array kernels (:mod:`repro.cache.vectorized`) and routes
    everything else exactly like ``auto`` — fallback, not failure —
    ``"multi"`` skips one-pass engines entirely, ``"auto"`` routes per
    spec, preferring the vectorized kernels when NumPy is available.
    When left ``None`` the ``REPRO_SWEEP_ENGINE`` environment
    variable picks the engine (the CI golden-pin job forces each in
    turn this way), defaulting to ``auto``.
    """
    import os

    from repro.cache.replay import MinConfig, replay_trace_multi

    specs = list(specs)
    if engine is None:
        engine = os.environ.get("REPRO_SWEEP_ENGINE", "auto")
    if engine not in ("auto", "stackdist", "vectorized", "multi"):
        raise ValueError("unknown sweep engine {!r}".format(engine))
    if engine == "multi":
        return replay_trace_multi(trace, specs)

    if columns is None:
        columns = trace.to_columns()
    has_bypass, has_kill = _flag_presence(columns)

    def policy_sweep_key(config):
        """Group key for the FIFO/MIN single-pass stackers.

        Like :func:`flavor_key` plus the knobs those sweeps honor
        directly; the kill mode is normalized away when the effective
        stream carries no kills.
        """
        eff_hk = bool(config.honor_kill and has_kill)
        return (
            config.line_words,
            bool(config.honor_bypass and has_bypass),
            eff_hk,
            config.kill_mode if eff_hk else "invalidate",
            config.write_policy,
            config.allocate_on_write,
            config.num_sets,
        )

    groups = {}
    fifo_groups = {}
    random_groups = {}
    min_groups = {}
    fallback = []
    for index, spec in enumerate(specs):
        if isinstance(spec, MinConfig):
            if engine == "stackdist":
                raise ValueError(
                    "stack-distance engine cannot profile {!r}".format(spec)
                )
            config = spec.config
            key = policy_sweep_key(config)
            min_groups.setdefault(key, []).append((index, config))
            continue
        if supports_stackdist(spec, has_bypass, has_kill):
            key = (flavor_key(spec, has_bypass, has_kill), spec.num_sets)
            groups.setdefault(key, []).append((index, spec))
            continue
        if engine == "stackdist":
            raise ValueError(
                "stack-distance engine cannot profile {!r}".format(spec)
            )
        if spec.policy == "fifo":
            key = policy_sweep_key(spec)
            fifo_groups.setdefault(key, []).append((index, spec))
            continue
        if spec.policy == "random":
            # The counter-based RNG is a pure function of (seed, set,
            # draw ordinal), so lanes sharing a seed sweep together.
            key = policy_sweep_key(spec) + (spec.seed,)
            random_groups.setdefault(key, []).append((index, spec))
            continue
        fallback.append((index, spec))

    results = [None] * len(specs)
    decoded_cache = {}

    def stream_for(flavor):
        decoded = decoded_cache.get(flavor)
        if decoded is None:
            decoded = _flavor_decode(columns, flavor)
            decoded_cache[flavor] = decoded
        return decoded

    use_vector = False
    if groups and engine != "stackdist":
        from repro.cache.vectorized import (
            vector_available, vector_profile_pass,
        )
        use_vector = engine == "vectorized" or vector_available()

    for (flavor, num_sets), members in groups.items():
        assoc_cap = max(spec.associativity for _i, spec in members)
        if use_vector:
            partition = getattr(trace, "set_partition", None)
            order = (
                partition(num_sets, flavor[0])
                if partition is not None else None
            )
            profile = vector_profile_pass(
                columns, flavor, num_sets, assoc_cap,
                decoded=stream_for(flavor), order=order,
            )
        else:
            profile = profile_pass(
                columns, flavor, num_sets, assoc_cap,
                decoded=stream_for(flavor),
            )
        for index, spec in members:
            results[index] = profile.stats_for(spec.associativity)

    next_use_cache = {}
    for kind, kind_groups in (
        ("fifo", fifo_groups),
        ("random", random_groups),
        ("min", min_groups),
    ):
        for key, members in kind_groups.items():
            seed = None
            if kind == "random":
                key, seed = key[:-1], key[-1]
            (line_words, eff_hb, eff_hk, kill_mode, write_policy,
             allocate_on_write, num_sets) = key
            stream = stream_for((line_words, eff_hb, eff_hk, write_policy))
            assocs = sorted({spec.associativity for _i, spec in members})
            if kind == "fifo":
                sweep = fifo_sweep(
                    stream, num_sets, assocs, line_words, kill_mode,
                    write_policy, allocate_on_write,
                )
            elif kind == "random":
                sweep = random_sweep(
                    stream, num_sets, assocs, line_words, kill_mode,
                    write_policy, allocate_on_write, seed,
                )
            else:
                nu_key = (line_words, eff_hb)
                next_use = next_use_cache.get(nu_key)
                if next_use is None:
                    next_use = next_use_index(trace, line_words, eff_hb)
                    next_use_cache[nu_key] = next_use
                sweep = min_sweep(
                    stream, num_sets, assocs, line_words, kill_mode,
                    write_policy, allocate_on_write, next_use,
                )
            for index, spec in members:
                results[index] = sweep[spec.associativity]

    if fallback:
        fallback_stats = replay_trace_multi(
            trace, [spec for _i, spec in fallback]
        )
        for (index, _spec), stats in zip(fallback, fallback_stats):
            results[index] = stats
    return results
