"""Two-level (L1/L2) cache hierarchies over the unified semantics.

The paper's experiments score a single data cache; this module asks
the natural follow-up: in a memory hierarchy, *which level* do the
compiler's annotations address?  A ``UmAm_*`` reference marked bypass
certainly skips the first-level cache — but whether it also skips the
second level is a design choice with measurable consequences, so the
model makes it a knob (``bypass_level``):

* ``"l1"`` — the bypass bit is a *first-level* directive: the
  reference skips (and invalidates any stale copy in) L1 but is a
  perfectly ordinary cached reference at L2.
* ``"both"`` — the bypass bit addresses the whole hierarchy: the
  reference probes and invalidates at every level and the data moves
  straight between processor and memory.

Kill bits always act at L1 only: the liveness argument (Section 3.2)
is about the level whose working set the register allocator manages;
a dead first-level line may still serve a future miss from L2.

Two inclusion disciplines are modeled:

* ``"inclusive"`` — L2 holds a superset of L1.  Both levels are then
  scored *standalone over the unfiltered stream* through the one-pass
  sweep dispatcher (:func:`~repro.cache.stackdist.replay_trace_sweep`),
  which is exact for an inclusive hierarchy whose L2 recency state is
  updated on L1 hits: with LRU, ``num_sets(L1) | num_sets(L2)`` and
  ``assoc(L2) >= assoc(L1)``, a block at L1 stack distance ``d`` sits
  at L2 distance ``<= d`` (the L2 set's blocks are a subset of the L1
  set's), so residency in L1 implies residency in L2 and per-level
  hit counts follow from the standalone scores.  The nesting
  conditions are validated at parse time.
* ``"non-inclusive"`` — L2 sees only the references L1 could not
  serve.  L1 is replayed online (recording the filtered stream) and
  L2 is scored on that stream; :class:`HierarchyCache` chains the two
  online simulators and is bit-identical to this by construction —
  the differential harness holds the offline scorer to it.

Modeling simplification, stated once: L1 victim writebacks are
accounted as L1-to-L2 bus words (``L1.words_to_memory``) but do not
allocate or re-dirty lines in the modeled L2 — a write-no-allocate
victim path.  Each level's ``bus_words`` therefore measures the
traffic on the bus *below* it (L1: the L1-L2 bus; the last level: the
memory bus).
"""

from dataclasses import replace

from repro.cache.cache import Cache, CacheConfig
from repro.cache.stackdist import replay_trace_sweep
from repro.vm.trace import FLAG_BYPASS, FLAG_KILL, FLAG_WRITE, TraceBuffer

INCLUSIONS = ("inclusive", "non-inclusive")
BYPASS_LEVELS = ("l1", "both")


class HierarchySpec:
    """Geometry and discipline of a multi-level hierarchy.

    ``levels`` is a tuple of ``(name, CacheConfig)`` pairs ordered
    from the processor outward; every config shares the innermost
    level's ``line_words`` (mixed line sizes would make the inter-level
    traffic accounting ambiguous).
    """

    __slots__ = ("levels", "inclusion", "bypass_level")

    def __init__(self, levels, inclusion="non-inclusive", bypass_level="l1"):
        levels = tuple(levels)
        if len(levels) < 2:
            raise ValueError("a hierarchy needs at least two levels")
        if inclusion not in INCLUSIONS:
            raise ValueError("unknown inclusion {!r}".format(inclusion))
        if bypass_level not in BYPASS_LEVELS:
            raise ValueError("unknown bypass level {!r}".format(bypass_level))
        line_words = levels[0][1].line_words
        for _name, config in levels[1:]:
            if config.line_words != line_words:
                raise ValueError("hierarchy levels must share line_words")
        if inclusion == "inclusive":
            for (inner_name, inner), (outer_name, outer) in zip(
                levels, levels[1:]
            ):
                if (
                    outer.num_sets % inner.num_sets
                    or outer.associativity < inner.associativity
                ):
                    raise ValueError(
                        "inclusive hierarchy requires nested geometry: "
                        "{} ({} sets x {} ways) does not nest inside "
                        "{} ({} sets x {} ways)".format(
                            inner_name, inner.num_sets, inner.associativity,
                            outer_name, outer.num_sets, outer.associativity,
                        )
                    )
        self.levels = levels
        self.inclusion = inclusion
        self.bypass_level = bypass_level

    def __repr__(self):
        return "HierarchySpec({}, {}, bypass={})".format(
            ",".join(
                "{}:{}x{}".format(name, cfg.size_words, cfg.associativity)
                for name, cfg in self.levels
            ),
            self.inclusion,
            self.bypass_level,
        )

    def describe(self):
        """The canonical spec string (parseable by :func:`parse_hierarchy`)."""
        parts = [
            "{}:{}x{}".format(name, cfg.size_words, cfg.associativity)
            for name, cfg in self.levels
        ]
        parts.append(self.inclusion)
        parts.append("bypass=" + self.bypass_level)
        return ",".join(parts)


def parse_hierarchy(text, base=None, inclusion=None, bypass_level=None):
    """Parse ``"L1:64x2,L2:512x8"`` into a :class:`HierarchySpec`.

    Each ``NAME:SIZExASSOC`` part builds a level from ``base`` (default
    :class:`CacheConfig`) with ``size_words`` and ``associativity``
    overridden.  The comma list also accepts the bare discipline tokens
    ``inclusive`` / ``non-inclusive`` and ``bypass=l1`` /
    ``bypass=both``; explicit keyword arguments win over tokens.
    """
    if base is None:
        base = CacheConfig()
    levels = []
    token_inclusion = None
    token_bypass = None
    for raw in text.split(","):
        part = raw.strip()
        if not part:
            continue
        if part in INCLUSIONS:
            token_inclusion = part
            continue
        if part.startswith("bypass="):
            value = part[len("bypass="):]
            if value not in BYPASS_LEVELS:
                raise ValueError(
                    "bad bypass level {!r} (expected one of {})".format(
                        value, "/".join(BYPASS_LEVELS)
                    )
                )
            token_bypass = value
            continue
        try:
            name, geometry = part.split(":")
            size_text, assoc_text = geometry.lower().split("x")
            size_words = int(size_text)
            associativity = int(assoc_text)
        except ValueError:
            raise ValueError(
                "bad hierarchy level {!r} (expected NAME:SIZExASSOC, "
                "e.g. L1:64x2)".format(part)
            )
        levels.append(
            (
                name,
                replace(
                    base,
                    size_words=size_words,
                    associativity=associativity,
                ),
            )
        )
    return HierarchySpec(
        levels,
        inclusion=inclusion or token_inclusion or "non-inclusive",
        bypass_level=bypass_level or token_bypass or "l1",
    )


def _downstream_flags(flags, bypass_level):
    """Flag byte a reference carries past L1.

    Kills always stop at L1; the bypass bit survives only when it
    addresses the whole hierarchy.
    """
    flags &= ~FLAG_KILL
    if bypass_level != "both":
        flags &= ~FLAG_BYPASS
    return flags


class HierarchyCache:
    """Online chained hierarchy: the reference model.

    Drives one :class:`~repro.cache.semantics.UnifiedCache` per level;
    a reference propagates outward until some level serves it (every
    outcome except ``"hit"`` — misses *and* bypasses — falls through).
    The offline scorers in :func:`hierarchy_stats` are held
    bit-identical to this model by the differential harness.
    """

    def __init__(self, spec):
        self.spec = spec
        self.caches = [Cache(config) for _name, config in spec.levels]

    def access(self, address, is_write, bypass=False, kill=False):
        """Run one reference through the hierarchy; returns the name of
        the level that served it (or ``"memory"``)."""
        drop_bypass = self.spec.bypass_level != "both"
        for position, cache in enumerate(self.caches):
            outcome = cache.access(address, is_write, bypass, kill)
            if outcome == "hit":
                return self.spec.levels[position][0]
            kill = False
            if drop_bypass:
                bypass = False
        return "memory"

    def stats(self):
        """Per-level :class:`CacheStats`, as ``{name: stats}``."""
        return {
            name: cache.stats
            for (name, _cfg), cache in zip(self.spec.levels, self.caches)
        }


class HierarchyStats:
    """Scored hierarchy: per-level stats plus the derived metrics."""

    __slots__ = ("spec", "levels")

    def __init__(self, spec, levels):
        self.spec = spec
        self.levels = levels  # list of (name, CacheStats)

    def __getitem__(self, name):
        for level_name, stats in self.levels:
            if level_name == name:
                return stats
        raise KeyError(name)

    def as_dict(self):
        """Flat reporting row (JSON-friendly)."""
        inner_name, inner = self.levels[0]
        outer_name, outer = self.levels[-1]
        row = {
            "hierarchy": self.spec.describe(),
            "inclusion": self.spec.inclusion,
            "bypass_level": self.spec.bypass_level,
        }
        for name, stats in self.levels:
            key = name.lower()
            row[key + "_hits"] = stats.hits
            row[key + "_misses"] = stats.misses
            row[key + "_miss_rate"] = stats.miss_rate
            row[key + "_bus_words"] = stats.bus_words
        if self.spec.inclusion == "inclusive":
            # Outer-level stats are global (scored on the unfiltered
            # stream); localize them against the inner level.
            local_hits = outer.hits - inner.hits
            local_accesses = local_hits + outer.misses
        else:
            local_hits = outer.hits
            local_accesses = outer.hits + outer.misses
        row["{}_local_hits".format(outer_name.lower())] = local_hits
        row["{}_local_miss_rate".format(outer_name.lower())] = (
            outer.misses / local_accesses if local_accesses else 0.0
        )
        row["memory_bus_words"] = outer.bus_words
        row["l1_l2_bus_words"] = inner.bus_words
        return row


def _filtered_trace(trace, config, bypass_level):
    """Replay one level online; return ``(stats, stream_passed_down)``."""
    cache = Cache(config)
    access = cache.access
    downstream = TraceBuffer(max_events=None)
    append = downstream.append
    drop = (
        ~FLAG_KILL & ~FLAG_BYPASS
        if bypass_level != "both" else ~FLAG_KILL
    )
    for address, flags in trace:
        outcome = access(
            address,
            bool(flags & FLAG_WRITE),
            bool(flags & FLAG_BYPASS),
            bool(flags & FLAG_KILL),
        )
        if outcome != "hit":
            append(address, flags & drop)
    return cache.stats, downstream


def hierarchy_stats(trace, spec):
    """Score ``trace`` through every level of ``spec``.

    Inclusive hierarchies score every level standalone over the full
    stream in one :func:`~repro.cache.stackdist.replay_trace_sweep`
    call (one-pass stack-distance profiling whenever the level's
    config supports it); non-inclusive hierarchies chain the levels,
    scoring each on the stream its inner neighbour passed through.
    Returns a :class:`HierarchyStats`.
    """
    if spec.inclusion == "inclusive":
        specs = [spec.levels[0][1]]
        for _name, config in spec.levels[1:]:
            specs.append(
                replace(
                    config,
                    honor_kill=False,
                    honor_bypass=spec.bypass_level == "both",
                )
            )
        scored = replay_trace_sweep(trace, specs)
        return HierarchyStats(
            spec,
            [
                (name, stats)
                for (name, _cfg), stats in zip(spec.levels, scored)
            ],
        )

    levels = []
    current = trace
    last = len(spec.levels) - 1
    for position, (name, config) in enumerate(spec.levels):
        if position == last:
            # Outermost level: score the residual stream through the
            # one-pass dispatcher.
            (stats,) = replay_trace_sweep(current, [config])
        else:
            stats, current = _filtered_trace(
                current, config, spec.bypass_level
            )
        levels.append((name, stats))
    return HierarchyStats(spec, levels)
