"""N-level cache hierarchies over the unified semantics.

The paper's experiments score a single data cache; this module asks
the natural follow-up: in a memory hierarchy, *which levels* do the
compiler's annotations address?  A ``UmAm_*`` reference marked bypass
certainly skips the first-level cache — but whether it also skips the
levels below is a design choice with measurable consequences, so the
model makes bypass an *addressing set* (``HierarchySpec.bypass_levels``,
a subset of the level names): the reference probes-and-invalidates at
every level the set names and is a perfectly ordinary cached reference
at every level it does not.  The historical two-position knob survives
as spelling sugar — ``bypass_level="l1"`` (deprecated) addresses the
innermost level only and ``bypass_level="both"`` (deprecated) addresses
every level — so existing E16 scripts run unchanged.

Kill bits always act at the innermost level only: the liveness argument
(Section 3.2) is about the level whose working set the register
allocator manages; a dead first-level line may still serve a future
miss from an outer level.  (The multi-core layer in
:mod:`repro.cache.multicore` deliberately relaxes this as an
experiment knob; the hierarchy core itself does not.)

Two inclusion disciplines are modeled:

* ``"inclusive"`` — every outer level holds a superset of the one
  inside it.  All levels are then scored *standalone over the
  unfiltered stream* through the one-pass sweep dispatcher
  (:func:`~repro.cache.stackdist.replay_trace_sweep`), which is exact
  for an inclusive hierarchy whose outer recency state is updated on
  inner hits: with LRU, nested set counts and non-decreasing
  associativity, a block at inner stack distance ``d`` sits at outer
  distance ``<= d``, so residency inside implies residency outside and
  per-level hit counts follow from the standalone scores.  The nesting
  conditions are validated at construction.
* ``"non-inclusive"`` — each level sees only the references its inner
  neighbour could not serve.  Every inner level is replayed online
  (recording the filtered stream); the outermost level is scored on
  the final residual stream through the sweep dispatcher.
  :class:`HierarchyCache` chains the online simulators and is
  bit-identical to this by construction — the differential harness
  holds the offline scorer to it.

Every level is a full :class:`~repro.cache.semantics.UnifiedCache`
over a pluggable :class:`~repro.cache.semantics.ReplacementPolicy`, so
any zoo policy works at any level (``L2:512x8@srrip``); the offline
scorer materializes each level's stream, which is what the
signature-indexed predictors (SHiP, Hawkeye) need.

Modeling simplification, stated once: a level's victim writebacks are
accounted as bus words on the bus *below* it but do not allocate or
re-dirty lines in the next level — a write-no-allocate victim path.
Each level's ``bus_words`` therefore measures the traffic below it
(the last level: the memory bus).
"""

from dataclasses import replace

from repro.cache.cache import Cache, CacheConfig, POLICIES
from repro.cache.stackdist import replay_trace_sweep
from repro.errors import ReproError
from repro.vm.trace import FLAG_BYPASS, FLAG_KILL, FLAG_WRITE, TraceBuffer

INCLUSIONS = ("inclusive", "non-inclusive")

#: The legacy two-position knob (kept importable for old callers);
#: ``"l1"`` maps to "innermost level only", ``"both"`` to "every level".
BYPASS_LEVELS = ("l1", "both")


class HierarchyError(ReproError, ValueError):
    """A malformed hierarchy spec (bad token, duplicate level, …).

    Subclasses both :class:`~repro.errors.ReproError` (stage-tagged,
    so the CLI's structured-error wrapper and the failure records
    classify it) and :class:`ValueError` (so long-standing
    ``except ValueError`` call sites keep working).
    """

    stage = "hierarchy"


def _resolve_bypass(value, names):
    """Normalize a bypass addressing ``value`` to level names, in order.

    ``value`` may be ``None`` (default: the innermost level), one of
    the legacy knob spellings ``"l1"``/``"both"``, a ``"+"``-joined
    string of level names (``"L1+L3"``), or an iterable of names.
    Names resolve case-insensitively; the result is deduplicated and
    ordered processor-outward.
    """
    if value is None:
        return (names[0],)
    if isinstance(value, str):
        if value == "both":
            return tuple(names)
        parts = [part.strip() for part in value.split("+") if part.strip()]
    else:
        parts = [str(part).strip() for part in value]
    lowered = {name.lower(): name for name in names}
    resolved = []
    for part in parts:
        match = lowered.get(part.lower())
        if match is None and part.lower() == "l1" and len(parts) == 1:
            # The legacy knob on a hierarchy whose first level is not
            # literally named "L1".
            match = names[0]
        if match is None:
            raise HierarchyError(
                "bad bypass level {!r} (expected 'both', 'l1', or "
                "'+'-joined level names among {})".format(
                    part, "/".join(names)
                )
            )
        if match not in resolved:
            resolved.append(match)
    if not resolved:
        raise HierarchyError("empty bypass addressing")
    return tuple(name for name in names if name in resolved)


class HierarchySpec:
    """Geometry and discipline of an N-level hierarchy.

    ``levels`` is a tuple of ``(name, CacheConfig)`` pairs ordered
    from the processor outward (two or more; names unique); every
    config shares the innermost level's ``line_words`` (mixed line
    sizes would make the inter-level traffic accounting ambiguous).
    ``bypass_levels`` is the set of level names the bypass bit
    addresses, stored processor-outward; the deprecated
    ``bypass_level`` keyword ("l1"/"both") is accepted as sugar.
    """

    __slots__ = ("levels", "inclusion", "bypass_levels")

    def __init__(self, levels, inclusion="non-inclusive",
                 bypass_level=None, bypass_levels=None):
        levels = tuple(levels)
        if len(levels) < 2:
            raise HierarchyError("a hierarchy needs at least two levels")
        if inclusion not in INCLUSIONS:
            raise HierarchyError("unknown inclusion {!r}".format(inclusion))
        names = [name for name, _config in levels]
        seen = set()
        for name in names:
            key = name.lower()
            if key in seen:
                raise HierarchyError(
                    "duplicate level name {!r}".format(name)
                )
            seen.add(key)
        if bypass_level is not None and bypass_levels is not None:
            raise HierarchyError(
                "pass either bypass_level (deprecated knob) or "
                "bypass_levels (addressing set), not both"
            )
        line_words = levels[0][1].line_words
        for _name, config in levels[1:]:
            if config.line_words != line_words:
                raise HierarchyError(
                    "hierarchy levels must share line_words"
                )
        if inclusion == "inclusive":
            for (inner_name, inner), (outer_name, outer) in zip(
                levels, levels[1:]
            ):
                if (
                    outer.num_sets % inner.num_sets
                    or outer.associativity < inner.associativity
                ):
                    raise HierarchyError(
                        "inclusive hierarchy requires nested geometry: "
                        "{} ({} sets x {} ways) does not nest inside "
                        "{} ({} sets x {} ways)".format(
                            inner_name, inner.num_sets, inner.associativity,
                            outer_name, outer.num_sets, outer.associativity,
                        )
                    )
        self.levels = levels
        self.inclusion = inclusion
        self.bypass_levels = _resolve_bypass(
            bypass_levels if bypass_levels is not None else bypass_level,
            tuple(names),
        )

    @property
    def bypass_level(self):
        """The addressing set in legacy spelling where representable.

        ``"l1"`` when only the innermost level is addressed, ``"both"``
        when every level is, otherwise the ``"+"``-joined name list.
        Kept so E16-era reporting rows and scripts read unchanged.
        """
        names = tuple(name for name, _config in self.levels)
        if self.bypass_levels == (names[0],):
            return "l1"
        if self.bypass_levels == names:
            return "both"
        return "+".join(self.bypass_levels)

    def level_configs(self):
        """The effective per-level configs the chain drives.

        Bypass is honored only at the levels the addressing set names;
        kills are honored only at the innermost level.  A base config
        that already disables a flag stays disabled (the gates compose
        with ``and``).
        """
        configs = []
        for position, (name, config) in enumerate(self.levels):
            configs.append(
                replace(
                    config,
                    honor_bypass=(
                        config.honor_bypass and name in self.bypass_levels
                    ),
                    honor_kill=config.honor_kill and position == 0,
                )
            )
        return configs

    def __repr__(self):
        return "HierarchySpec({}, {}, bypass={})".format(
            ",".join(
                "{}:{}x{}".format(name, cfg.size_words, cfg.associativity)
                for name, cfg in self.levels
            ),
            self.inclusion,
            self.bypass_level,
        )

    def describe(self):
        """The canonical spec string (parseable by :func:`parse_hierarchy`)."""
        parts = []
        for name, cfg in self.levels:
            token = "{}:{}x{}".format(name, cfg.size_words, cfg.associativity)
            if cfg.policy != "lru":
                token += "@" + cfg.policy
            parts.append(token)
        parts.append(self.inclusion)
        parts.append("bypass=" + self.bypass_level)
        return ",".join(parts)


def parse_hierarchy(text, base=None, inclusion=None, bypass_level=None,
                    bypass_levels=None):
    """Parse ``"L1:64x2,L2:512x8,L3:4096x8"`` into a :class:`HierarchySpec`.

    Each ``NAME:SIZExASSOC[@POLICY]`` part builds a level from ``base``
    (default :class:`CacheConfig`) with ``size_words``,
    ``associativity`` and optionally ``policy`` overridden.  The comma
    list also accepts the bare discipline tokens ``inclusive`` /
    ``non-inclusive`` and ``bypass=`` addressing tokens —
    ``bypass=L1+L3`` names levels directly; ``bypass=l1`` /
    ``bypass=both`` are the deprecated knob spellings.  Whitespace
    around tokens is ignored.  Duplicate level names and contradictory
    repeated ``inclusive``/``bypass=`` tokens raise
    :class:`HierarchyError` (stage ``hierarchy``) instead of silently
    taking the last value; explicit keyword arguments win over tokens.
    """
    if base is None:
        base = CacheConfig()
    levels = []
    token_inclusion = None
    token_bypass = None
    for raw in text.split(","):
        part = raw.strip()
        if not part:
            continue
        if part in INCLUSIONS:
            if token_inclusion is not None and token_inclusion != part:
                raise HierarchyError(
                    "contradictory inclusion tokens {!r} and {!r}".format(
                        token_inclusion, part
                    )
                )
            token_inclusion = part
            continue
        if part.startswith("bypass="):
            value = part[len("bypass="):].strip()
            if token_bypass is not None and token_bypass != value:
                raise HierarchyError(
                    "contradictory bypass tokens {!r} and {!r}".format(
                        token_bypass, value
                    )
                )
            token_bypass = value
            continue
        policy = None
        geometry_part = part
        if "@" in part:
            geometry_part, policy = part.rsplit("@", 1)
            policy = policy.strip().lower()
            if policy not in POLICIES:
                raise HierarchyError(
                    "bad level policy {!r} (expected one of {})".format(
                        policy, "/".join(POLICIES)
                    )
                )
        try:
            name, geometry = geometry_part.split(":")
            name = name.strip()
            size_text, assoc_text = geometry.strip().lower().split("x")
            size_words = int(size_text)
            associativity = int(assoc_text)
        except ValueError:
            raise HierarchyError(
                "bad hierarchy level {!r} (expected NAME:SIZExASSOC, "
                "e.g. L1:64x2)".format(part)
            )
        overrides = {
            "size_words": size_words,
            "associativity": associativity,
        }
        if policy is not None:
            overrides["policy"] = policy
        levels.append((name, replace(base, **overrides)))
    if bypass_level is None and bypass_levels is None:
        bypass_level = token_bypass
    return HierarchySpec(
        levels,
        inclusion=inclusion or token_inclusion or "non-inclusive",
        bypass_level=bypass_level,
        bypass_levels=bypass_levels,
    )


class HierarchyCache:
    """Online chained hierarchy: the reference model.

    Drives one :class:`~repro.cache.semantics.UnifiedCache` per level
    (built from :meth:`HierarchySpec.level_configs`, whose honor gates
    encode the bypass addressing and innermost-only kills); a
    reference propagates outward until some level serves it (every
    outcome except ``"hit"`` — misses *and* bypasses — falls through).
    The offline scorers in :func:`hierarchy_stats` are held
    bit-identical to this model by the differential harness.

    The online chain builds each level's policy from its config alone,
    so the signature-indexed predictors (SHiP, Hawkeye) — which need a
    per-level precomputed stream — are offline-only (:func:`hierarchy_stats`).
    """

    def __init__(self, spec):
        self.spec = spec
        self.caches = [Cache(config) for config in spec.level_configs()]

    def access(self, address, is_write, bypass=False, kill=False):
        """Run one reference through the hierarchy; returns the name of
        the level that served it (or ``"memory"``)."""
        for position, cache in enumerate(self.caches):
            outcome = cache.access(address, is_write, bypass, kill)
            if outcome == "hit":
                return self.spec.levels[position][0]
        return "memory"

    def stats(self):
        """Per-level :class:`CacheStats`, as ``{name: stats}``."""
        return {
            name: cache.stats
            for (name, _cfg), cache in zip(self.spec.levels, self.caches)
        }


class HierarchyStats:
    """Scored hierarchy: per-level stats plus the derived metrics."""

    __slots__ = ("spec", "levels")

    def __init__(self, spec, levels):
        self.spec = spec
        self.levels = levels  # list of (name, CacheStats)

    def __getitem__(self, name):
        for level_name, stats in self.levels:
            if level_name == name:
                return stats
        raise KeyError(name)

    def as_dict(self):
        """Flat reporting row (JSON-friendly).

        Per-level ``{name}_hits`` / ``_misses`` / ``_miss_rate`` /
        ``_bus_words`` keys, localized ``{name}_local_hits`` /
        ``_local_miss_rate`` for every level past the first (for the
        inclusive discipline the standalone scores are globalized, so
        each level is localized against its inner neighbour), adjacent
        ``{inner}_{outer}_bus_words`` pairs, and ``memory_bus_words``.
        ``l1_l2_bus_words`` survives as a deprecated alias for the
        innermost level's downstream bus.
        """
        row = {
            "hierarchy": self.spec.describe(),
            "inclusion": self.spec.inclusion,
            "bypass_level": self.spec.bypass_level,
            "levels": [name for name, _stats in self.levels],
        }
        for name, stats in self.levels:
            key = name.lower()
            row[key + "_hits"] = stats.hits
            row[key + "_misses"] = stats.misses
            row[key + "_miss_rate"] = stats.miss_rate
            row[key + "_bus_words"] = stats.bus_words
        inclusive = self.spec.inclusion == "inclusive"
        for (inner_name, inner), (name, stats) in zip(
            self.levels, self.levels[1:]
        ):
            if inclusive:
                # This level's stats are global (scored on the
                # unfiltered stream); localize against the level inside.
                local_hits = stats.hits - inner.hits
            else:
                local_hits = stats.hits
            local_accesses = local_hits + stats.misses
            row["{}_local_hits".format(name.lower())] = local_hits
            row["{}_local_miss_rate".format(name.lower())] = (
                stats.misses / local_accesses if local_accesses else 0.0
            )
            row["{}_{}_bus_words".format(
                inner_name.lower(), name.lower()
            )] = inner.bus_words
        row["memory_bus_words"] = self.levels[-1][1].bus_words
        # Deprecated alias (pre-N-level reporting shape).
        row["l1_l2_bus_words"] = self.levels[0][1].bus_words
        return row


def filtered_trace(trace, config):
    """Replay one level online; return ``(stats, stream_passed_down)``.

    The downstream stream keeps every flag except ``FLAG_KILL`` (kills
    are an innermost-level directive; whether an outer level honors
    the surviving bypass bit is that level's ``honor_bypass`` gate).
    The level's policy is built for this exact stream, so the
    signature-indexed predictors work at inner levels too.
    """
    from repro.cache.replay import policy_for_trace

    cache = Cache(config, policy=policy_for_trace(trace, config))
    access = cache.access
    downstream = TraceBuffer(max_events=None)
    append = downstream.append
    drop = ~FLAG_KILL
    if cache.policy.needs_index:
        for index, (address, flags) in enumerate(trace):
            outcome = access(
                address,
                bool(flags & FLAG_WRITE),
                bool(flags & FLAG_BYPASS),
                bool(flags & FLAG_KILL),
                index=index,
            )
            if outcome != "hit":
                append(address, flags & drop)
    else:
        for address, flags in trace:
            outcome = access(
                address,
                bool(flags & FLAG_WRITE),
                bool(flags & FLAG_BYPASS),
                bool(flags & FLAG_KILL),
            )
            if outcome != "hit":
                append(address, flags & drop)
    return cache.stats, downstream


#: Backwards-compatible private name (pre-N-level callers).
_filtered_trace = filtered_trace


def hierarchy_stats(trace, spec):
    """Score ``trace`` through every level of ``spec``.

    Inclusive hierarchies score every level standalone over the full
    stream in one :func:`~repro.cache.stackdist.replay_trace_sweep`
    call (one-pass stack-distance profiling whenever the level's
    config supports it); non-inclusive hierarchies chain the levels,
    scoring each on the stream its inner neighbour passed through.
    Returns a :class:`HierarchyStats`.
    """
    configs = spec.level_configs()
    if spec.inclusion == "inclusive":
        scored = replay_trace_sweep(trace, configs)
        return HierarchyStats(
            spec,
            [
                (name, stats)
                for (name, _cfg), stats in zip(spec.levels, scored)
            ],
        )

    levels = []
    current = trace
    last = len(spec.levels) - 1
    for position, (name, _config) in enumerate(spec.levels):
        config = configs[position]
        if position == last:
            # Outermost level: score the residual stream through the
            # one-pass dispatcher.
            (stats,) = replay_trace_sweep(current, [config])
        else:
            stats, current = filtered_trace(current, config)
        levels.append((name, stats))
    return HierarchyStats(spec, levels)
