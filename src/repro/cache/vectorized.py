"""Set-major vectorized stack-distance replay kernels.

The per-event automaton in :mod:`repro.cache.stackdist` pays Python
dispatch for every collapsed event.  This module rebuilds the same
exact profile with NumPy array kernels over the columnar trace that
:meth:`repro.vm.trace.TraceBuffer.to_columns` already provides:

* **Set-major partition.**  One stable argsort of the set-index column
  groups every set's events contiguously while preserving time order
  inside each set (:meth:`TraceBuffer.set_partition` caches it per
  geometry, and :func:`repro.cache.semantics.collapse_runs` shares the
  same permutation).  All kernels below run on the partitioned stream,
  so per-set state machines become segmented scans.

* **Age-matrix LRU sweep.**  Classic Mattson stack maintenance is
  replaced by the bounded recency matrix ``t[d, q]`` — the slot of the
  ``d``-th most recent distinct block as of slot ``q`` — built level
  by level from the recurrence ``t[d+1, q+1] = t[d, q] if t[d, q] >
  prev(q) else t[d+1, q]`` (``prev(q)`` is the driving block's
  previous-touch slot).  Each level is a masked segmented forward
  fill, so all ``assoc_cap`` associativities of a geometry are scored
  in ``assoc_cap`` vector passes instead of ``events x assoc`` scalar
  steps.  A reference's stack distance is ``1 + #{d : t[d, q] >
  prev}``; "ever fell past the deepest profiled cache" shows up as all
  ``assoc_cap`` entries beating ``prev``.

* **Bypass/kill as vector masks.**  Probes (bypasses and through-cache
  kills) read the age matrix without driving it.  A probe that would
  *hit* — and a kill-write, which always invalidates — mutates the
  recency state in ways the offline matrix does not model, so its set
  is flagged and that whole set's events are replayed through the
  exact hole-stack automaton (:func:`repro.cache.stackdist._run_general`)
  instead.  The flag is sound: the first mutating event of a set is
  classified under a still-valid no-mutation history, and everything
  after it in that set is recomputed sequentially.  Measured on the
  six Figure 5 benchmarks, 0-42 % of a unified stream's events live in
  flagged sets; conventional flavors carry no probes at all.

* **Dirty thresholds and writebacks as gap algebra.**  Between two
  touches of a block its dirty threshold ``D`` is constant and its
  stack position only ever decays ``1 -> P_end``, crossing each
  boundary exactly once; a victim writeback at associativity ``q`` is
  a gap with ``D <= q <= P_end - 1``.  ``D`` is a segmented running
  max over each block's touch chain, the crossings are two bincounts
  (a difference array over ``q``), and evictions are one more
  bincount of per-event shift widths.

The result is a :class:`repro.cache.stackdist.StackDistanceProfile`
whose every field is bit-identical to :func:`profile_pass` — the
reconstruction arithmetic in ``stats_for`` is shared, so equal
profiles mean equal :class:`~repro.cache.stats.CacheStats`.  Without
NumPy the pure-Python twin scores each partitioned set with the same
offline/fallback split, scalar-wise, to identical results.  Geometry
outside the kernel's comfort zone (associativity caps above
``VECTOR_ASSOC_CAP_LIMIT``) falls back to :func:`profile_pass` —
fallback, never failure.  ``docs/PERFORMANCE.md`` ("The set-major
vectorized kernel") has the derivation and measured speedups.
"""

try:
    import numpy as _np
except Exception:  # pragma: no cover - exercised off-image
    _np = None

from repro.cache.semantics import (
    EV_BYPASS_READ,
    EV_BYPASS_READ_KILL,
    EV_BYPASS_WRITE,
    EV_KILL_READ,
    EV_KILL_WRITE,
    EV_PLAIN_READ,
    EV_PLAIN_WRITE,
    collapse_runs,
    collapse_runs_sorted,
    flavor_decode as _flavor_decode,
)
from repro.cache.stackdist import (
    StackDistanceProfile,
    _run_general,
    profile_pass,
)

#: Above this associativity cap the level loop stops paying for itself
#: and the pass delegates to the scalar profiler.
VECTOR_ASSOC_CAP_LIMIT = 64


def vector_available():
    """Is the NumPy kernel importable in this interpreter?"""
    return _np is not None


def vector_profile_pass(columns, flavor, num_sets, assoc_cap,
                        decoded=None, order=None, info=None):
    """Drop-in twin of :func:`profile_pass` built on array kernels.

    Same contract: returns a :class:`StackDistanceProfile` for
    ``(flavor, num_sets)`` scoring every ``assoc <= assoc_cap``,
    bit-identical field by field to the scalar profiler.  ``order`` is
    an optional pre-computed set-major partition
    (:meth:`TraceBuffer.set_partition`); ``info``, when a dict, is
    populated with ``kernel`` (``"numpy"``/``"python"``/
    ``"stackdist"``), ``offline_sets`` and ``fallback_sets`` for
    benchmarks and tests.
    """
    if assoc_cap > VECTOR_ASSOC_CAP_LIMIT:
        if info is not None:
            info["kernel"] = "stackdist"
        return profile_pass(columns, flavor, num_sets, assoc_cap,
                            decoded=decoded)

    line_words, _hb, _hk, write_policy = flavor
    stream = decoded
    if stream is None:
        stream = _flavor_decode(columns, flavor)
    profile = _fresh_profile(stream, flavor, num_sets, assoc_cap)

    if _np is None or stream.blocks_np is None:
        if info is not None:
            info["kernel"] = "python"
        _vector_profile_pass_py(profile, stream, num_sets, assoc_cap,
                                write_policy, info)
        return profile
    if info is not None:
        info["kernel"] = "numpy"
    _vector_profile_pass_np(profile, stream, num_sets, assoc_cap,
                            write_policy, order, info)
    return profile


def _fresh_profile(stream, flavor, num_sets, assoc_cap):
    """An empty profile with the same totals ``profile_pass`` seeds."""
    line_words, _hb, _hk, write_policy = flavor
    profile = StackDistanceProfile(
        num_sets, assoc_cap, line_words, write_policy, stream.constants
    )
    counts = stream.constants["counts"]
    profile.totals = {
        "plain_read": counts[EV_PLAIN_READ],
        "plain_write": counts[EV_PLAIN_WRITE],
        "kill_read": counts[EV_KILL_READ],
        "kill_write": counts[EV_KILL_WRITE],
        "bypass_read": counts[EV_BYPASS_READ] + counts[EV_BYPASS_READ_KILL],
        "kill_write_hist": [0] * (assoc_cap + 2),
    }
    return profile


# ----------------------------------------------------------------------
# The NumPy kernel
# ----------------------------------------------------------------------


def _vector_profile_pass_np(profile, stream, num_sets, assoc_cap,
                            write_policy, order, info):
    blocks = stream.blocks_np
    types = stream.types_np
    nraw = len(blocks)
    if nraw == 0:
        if info is not None:
            info["offline_sets"] = 0
            info["fallback_sets"] = 0
        return

    writeback = write_policy == "writeback"
    cap = assoc_cap
    clean = cap + 1
    miss_bucket = cap + 1

    if order is None:
        order = _np.argsort(blocks % num_sets, kind="stable")

    # Collapse directly in set-major order: the head columns come out
    # already partitioned, so no back-to-time remap, keep-mask
    # regather or list materialization is paid on this path.
    runs = collapse_runs_sorted(blocks, types, num_sets, order)
    profile.collapsed_hits = runs.collapsed
    sb = runs.blocks
    st = runs.types
    ss = runs.sets
    sw = runs.run_writes
    n = len(sb)

    plain = st <= EV_PLAIN_WRITE

    # Set segmentation (ordinals over the sets actually present).
    new_set = _np.empty(n, dtype=bool)
    new_set[0] = True
    new_set[1:] = ss[1:] != ss[:-1]
    sid = _np.cumsum(new_set) - 1
    n_sets_present = int(sid[-1]) + 1

    # Slot coordinates: each set owns one slot per plain event plus a
    # trailing "after the last touch" slot, so probes landing past a
    # set's final plain event still have a queryable column.
    pc = _np.cumsum(plain) - plain
    slot = pc + sid
    plain_per_set = _np.bincount(sid[plain], minlength=n_sets_present)
    slot_widths = plain_per_set + 1
    base = _np.empty(n_sets_present, dtype=_np.int64)
    base[0] = 0
    _np.cumsum(slot_widths[:-1], out=base[1:])
    n_slots = int(base[-1] + slot_widths[-1])
    slot_set = _np.repeat(_np.arange(n_sets_present), slot_widths)
    slot_start = _np.zeros(n_slots, dtype=bool)
    slot_start[base] = True

    # Per-block chains: previous plain-touch slot of every event's
    # block (``-1`` = cold).  Blocks never span sets, so a stable sort
    # by block keeps each chain in time order; within a chain slots
    # are increasing, so "most recent previous plain touch" is an
    # exclusive segmented running max.
    corder = _np.argsort(sb, kind="stable")
    cb = sb[corder]
    cchange = _np.empty(n, dtype=bool)
    cchange[0] = True
    cchange[1:] = cb[1:] != cb[:-1]
    cid = _np.cumsum(cchange) - 1
    carry = _np.where(plain[corder], slot[corder], -1)
    stride = _np.int64(n_slots + 1)
    inc = _np.maximum.accumulate(carry + cid * stride) - cid * stride
    exc = _np.empty(n, dtype=_np.int64)
    exc[0] = -1
    exc[1:] = inc[:-1]
    exc[cchange] = -1
    prev_slot = _np.empty(n, dtype=_np.int64)
    prev_slot[corder] = exc

    # Drivers of the age-matrix recurrence: the plain events.
    plain_idx = _np.flatnonzero(plain)
    pslot = slot[plain_idx]
    driver = _np.zeros(n_slots, dtype=bool)
    driver[pslot] = True
    prev_of_slot = _np.full(n_slots, -1, dtype=_np.int64)
    prev_of_slot[pslot] = prev_slot[plain_idx]

    # Chain-order view of the plain events (for dirty thresholds and
    # the end-of-trace gap queries below).  A chain's first plain
    # event is exactly its cold touch, so chain starts come free from
    # the forward fill.
    cpo = corder[plain[corder]]
    npl = len(cpo)
    chain_start = prev_slot[cpo] < 0
    chain_last = _np.empty(npl, dtype=bool)
    if npl:
        chain_last[-1] = True
        chain_last[:-1] = chain_start[1:]
    last_events = cpo[chain_last]
    last_sid = sid[last_events]
    end_q = base[last_sid] + plain_per_set[last_sid]
    end_prev = slot[last_events]

    # Level loop: build t_1..t_cap, accumulating per-event "entries
    # above my previous touch" counts as each level materializes.
    ar = _np.arange(n_slots, dtype=_np.int64)
    t = ar - 1
    t[slot_start] = -1
    cnt = _np.zeros(n, dtype=_np.int64)
    cnt_end = _np.zeros(len(last_events), dtype=_np.int64)
    seg_stride = _np.int64(n_slots + 1)
    seg_off = slot_set * seg_stride
    for level in range(cap):
        cnt += t[slot] > prev_slot
        cnt_end += t[end_q] > end_prev
        if level == cap - 1:
            break
        valid = driver & (t > prev_of_slot)
        idx = _np.where(valid, ar, -1)
        last_valid = _np.maximum.accumulate(idx + seg_off) - seg_off
        exi = _np.empty(n_slots, dtype=_np.int64)
        exi[0] = -1
        exi[1:] = last_valid[:-1]
        exi[slot_start] = -1
        t = _np.where(exi >= 0, t[exi], -1)

    cold = prev_slot < 0
    pos = _np.where(cold | (cnt >= cap), miss_bucket, cnt + 1)

    # Mutation flags: a resident probe (bypass or through-cache kill
    # read) and every kill-write invalidate state the offline matrix
    # does not carry — their sets replay through the hole automaton.
    probe = ~plain & (st != EV_KILL_WRITE)
    resident = ~cold & (cnt < cap)
    mutating = (st == EV_KILL_WRITE) | (probe & resident)
    bad_set = _np.bincount(sid[mutating], minlength=n_sets_present) > 0
    good = ~bad_set[sid]
    if info is not None:
        info["fallback_sets"] = int(bad_set.sum())
        info["offline_sets"] = n_sets_present - info["fallback_sets"]
        info["fallback_events"] = int((~good).sum())

    hist_len = cap + 2

    # Distance histograms of the offline sets' plain heads.
    gp = plain & good
    gp_write = gp & (st == EV_PLAIN_WRITE)
    bc_w = _np.bincount(pos[gp_write], minlength=hist_len)
    bc_r = _np.bincount(pos[gp & ~gp_write], minlength=hist_len)
    _add_list(profile.hist_cached_write, bc_w)
    _add_list(profile.hist_cached_read, bc_r)

    # Offline probes are all misses (a hit would have flagged the
    # set): kill reads and bypass reads record their miss bucket,
    # bypass writes record nothing.
    gq = probe & good
    profile.hist_kill_read[miss_bucket] += int(
        (gq & (st == EV_KILL_READ)).sum()
    )
    profile.hist_bypass_read[miss_bucket] += int(
        (gq & ((st == EV_BYPASS_READ) | (st == EV_BYPASS_READ_KILL))).sum()
    )

    # Evictions: per-event shift widths.  A hit at position p shifts
    # the p-1 entries above it (MRU hits shift nothing); an install
    # shifts the whole current stack, whose depth is the number of
    # prior installs in the set, saturated at the cap.
    hit_sel = gp & (pos >= 2) & (pos <= cap)
    miss_flag = (plain & (pos == miss_bucket)).astype(_np.int64)
    installs_excl = _np.cumsum(miss_flag) - miss_flag
    set_first = _np.flatnonzero(new_set)
    installs_before = installs_excl - installs_excl[set_first][sid]
    miss_sel = gp & (pos == miss_bucket)
    shifts = _np.concatenate([
        pos[hit_sel] - 1,
        _np.minimum(installs_before[miss_sel], cap),
    ])
    _add_list(profile.shift_prefix, _np.bincount(shifts, minlength=hist_len))

    if writeback:
        # Dirty thresholds along each chain: writes (head or collapsed
        # follower) reset D to 1, installs reset it to 1/clean, read
        # hits fold in max(D, p).  Segmented running max with segments
        # opened by the resets.
        pos_cp = pos[cpo]
        w_cp = (st[cpo] == EV_PLAIN_WRITE) | sw[cpo]
        miss_cp = pos_cp == miss_bucket
        v = _np.where(w_cp, 1, _np.where(miss_cp, clean, pos_cp))
        reset = chain_start | miss_cp | w_cp
        seg = _np.cumsum(reset)
        dstride = _np.int64(clean + 2)
        d_after = _np.maximum.accumulate(v + seg * dstride) - seg * dstride

        # Gaps: consecutive touches inside a chain plus each chain's
        # tail gap to the end of the trace.  A gap (D, P_end) crosses
        # boundaries 1..P_end-1 exactly once each and writes back at q
        # iff D <= q, so wb_hist is a difference array of bincounts.
        good_cp = good[cpo]
        adj = ~chain_start
        gap_d = _np.concatenate([
            d_after[:-1][adj[1:]],
            d_after[chain_last],
        ])
        gap_end = _np.concatenate([
            pos_cp[adj],
            _np.where(cnt_end >= cap, miss_bucket, cnt_end + 1),
        ])
        gap_good = _np.concatenate([good_cp[adj], good_cp[chain_last]])
        live = gap_good & (gap_d < gap_end)
        wb_len = clean + 2
        diff = (
            _np.bincount(gap_d[live], minlength=wb_len)
            - _np.bincount(gap_end[live], minlength=wb_len)
        )
        running = _np.cumsum(diff)
        wb = profile.wb_hist
        for q in range(1, cap + 1):
            wb[q] += int(running[q])

    # Flagged sets: replay their events — still set-major, so each
    # set's slice is in time order — through the exact automaton into
    # the same additive profile.
    if bad_set.any():
        bi = _np.flatnonzero(~good)
        _run_general(
            profile,
            zip(sb[bi].tolist(), st[bi].tolist(), sw[bi].tolist()),
            num_sets, assoc_cap, write_policy,
        )


def _add_list(target, counts):
    for i, value in enumerate(counts.tolist()):
        if value:
            target[i] += value


# ----------------------------------------------------------------------
# The pure-Python twin
# ----------------------------------------------------------------------


def _vector_profile_pass_py(profile, stream, num_sets, assoc_cap,
                            write_policy, info):
    """Scalar twin: same partition, same offline/fallback split.

    Each set's collapsed events are scored by an offline recency-list
    walk (probes may only miss); the first mutating event aborts the
    set untouched and routes it through the hole automaton.
    """
    runs = collapse_runs(stream.blocks_list, stream.types_list, num_sets)
    profile.collapsed_hits = runs.collapsed if runs is not None else 0
    if runs is None:
        triples = [
            (b, t, False)
            for b, t in zip(stream.blocks_list, stream.types_list)
        ]
    else:
        triples = [
            (stream.blocks_list[i], stream.types_list[i], w)
            for i, w in zip(runs.indices_list, runs.run_writes)
        ]

    by_set = {}
    for triple in triples:
        by_set.setdefault(triple[0] % num_sets, []).append(triple)

    offline = 0
    fallback = []
    for set_index in sorted(by_set):
        events = by_set[set_index]
        if _offline_set_clean(events, assoc_cap):
            _score_offline_set(profile, events, assoc_cap, write_policy)
            offline += 1
        else:
            fallback.append(set_index)
    if fallback:
        flat = []
        for set_index in fallback:
            flat.extend(by_set[set_index])
        _run_general(profile, iter(flat), num_sets, assoc_cap, write_policy)
    if info is not None:
        info["offline_sets"] = offline
        info["fallback_sets"] = len(fallback)


def _offline_set_clean(events, assoc_cap):
    """True iff no event of the set mutates the recency state."""
    rec = []
    for block, etype, _fw in events:
        if etype <= EV_PLAIN_WRITE:
            try:
                rec.remove(block)
            except ValueError:
                pass
            rec.insert(0, block)
            if len(rec) > assoc_cap:
                rec.pop()
        elif etype == EV_KILL_WRITE or block in rec:
            return False
    return True


def _score_offline_set(profile, events, assoc_cap, write_policy):
    """Mutation-free set walk: ``_run_plain`` plus probe misses."""
    writeback = write_policy == "writeback"
    clean = assoc_cap + 1
    miss_bucket = assoc_cap + 1
    stack = []
    hist_cr = profile.hist_cached_read
    hist_cw = profile.hist_cached_write
    shift_prefix = profile.shift_prefix
    wb_hist = profile.wb_hist

    for block, etype, follower_wrote in events:
        if etype > EV_PLAIN_WRITE:
            if etype == EV_KILL_READ:
                profile.hist_kill_read[miss_bucket] += 1
            elif etype != EV_BYPASS_WRITE:
                profile.hist_bypass_read[miss_bucket] += 1
            continue
        is_write = etype == EV_PLAIN_WRITE
        pos = 0
        for idx, entry in enumerate(stack):
            if entry[0] == block:
                pos = idx + 1
                break
        if pos == 1:
            if writeback and (is_write or follower_wrote):
                stack[0][1] = 1
            (hist_cw if is_write else hist_cr)[1] += 1
            continue
        if pos:
            entry = stack[pos - 1]
            shift_prefix[pos - 1] += 1
            if writeback:
                for q in range(pos - 1):
                    if stack[q][1] <= q + 1:
                        wb_hist[q + 1] += 1
                if is_write or follower_wrote:
                    entry[1] = 1
                elif entry[1] < pos:
                    entry[1] = pos
            del stack[pos - 1]
            stack.insert(0, entry)
            (hist_cw if is_write else hist_cr)[pos] += 1
        else:
            depth = len(stack)
            shift_prefix[depth] += 1
            if writeback:
                for q in range(depth):
                    if stack[q][1] <= q + 1:
                        wb_hist[q + 1] += 1
            if depth == assoc_cap:
                del stack[-1]
            stack.insert(0, [
                block,
                1 if (is_write or follower_wrote) and writeback else clean,
            ])
            (hist_cw if is_write else hist_cr)[miss_bucket] += 1
