"""Trace-driven data-cache simulation with bypass and kill support.

The paper assumes a data cache with **line size one** (Section 1); the
simulator defaults to that but supports longer lines so the ablation
benches can show *why* line size one is preferred for data.

Replacement policies: LRU, FIFO, Random, and Belady's MIN (offline),
each combined with the paper's dead-line modification (Section 3.2):
a kill-marked reference empties the line immediately — or, in
``demote`` mode, merely makes it least recently used — and a dead dirty
line is dropped without a write-back.
"""

from repro.cache.stats import CacheStats
from repro.cache.semantics import (
    FIFOPolicy,
    LRUPolicy,
    MinPolicy,
    RandomPolicy,
    ReplacementPolicy,
    UnifiedCache,
)
from repro.cache.cache import Cache, CacheConfig
from repro.cache.belady import simulate_min
from repro.cache.replay import MinConfig, replay_trace, replay_trace_multi
from repro.cache.stackdist import (
    StackDistanceProfile,
    profile_pass,
    replay_trace_sweep,
    supports_stackdist,
)
from repro.cache.functional import DataCachedMemory
from repro.cache.hierarchy import (
    HierarchyCache,
    HierarchySpec,
    hierarchy_stats,
    parse_hierarchy,
)

__all__ = [
    "Cache",
    "CacheConfig",
    "CacheStats",
    "FIFOPolicy",
    "HierarchyCache",
    "HierarchySpec",
    "LRUPolicy",
    "MinConfig",
    "MinPolicy",
    "RandomPolicy",
    "ReplacementPolicy",
    "StackDistanceProfile",
    "UnifiedCache",
    "simulate_min",
    "hierarchy_stats",
    "parse_hierarchy",
    "profile_pass",
    "replay_trace",
    "replay_trace_multi",
    "replay_trace_sweep",
    "supports_stackdist",
    "DataCachedMemory",
]
