"""Replay recorded traces through cache models."""

from repro.cache.belady import simulate_min
from repro.cache.cache import Cache, CacheConfig
from repro.vm.trace import FLAG_BYPASS, FLAG_KILL, FLAG_WRITE


def replay_trace(trace, config=None, **kwargs):
    """Run ``trace`` through a cache built from ``config``.

    ``config.policy`` may also be ``"min"``, which dispatches to the
    offline Belady simulator.  Returns the resulting CacheStats.
    """
    if config is None:
        policy = kwargs.pop("policy", "lru")
        if policy == "min":
            return simulate_min(trace, **kwargs)
        config = CacheConfig(policy=policy, **kwargs)

    cache = Cache(config)
    access = cache.access
    for address, flags in trace:
        access(
            address,
            bool(flags & FLAG_WRITE),
            bool(flags & FLAG_BYPASS),
            bool(flags & FLAG_KILL),
        )
    return cache.stats
