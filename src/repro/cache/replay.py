"""Replay recorded traces through cache models.

Two entry points:

* :func:`replay_trace` — the reference serial path: one trace, one
  configuration, driven event-by-event through the online
  :class:`Cache` (or the offline MIN simulator).  Every other replay
  implementation in the repository is defined as "bit-identical to
  this".
* :func:`replay_trace_multi` — the sweep core: one trace, N
  configurations, one decode.  The flag bytes are unpacked once and
  every configuration consumes the shared decoded stream through the
  canonical transfer function
  (:func:`repro.cache.semantics.replay_decoded`), fronted by the
  same-block run collapse wherever the configuration's allocation
  policy makes followers guaranteed hits; MIN slots (requested with
  :class:`MinConfig`) share one precomputed next-use index per
  ``(line_words, honor_bypass)`` combination.  The equivalence battery
  (``tests/test_parallel_equivalence.py``) and the fuzzer's
  differential loop both assert the two paths agree on every counter.
"""

from repro.cache.belady import next_use_index, simulate_min
from repro.cache.cache import Cache, CacheConfig
from repro.cache.semantics import (
    PREDICTOR_POLICIES,
    MinPolicy,
    collapse_runs,
    decode_trace,  # noqa: F401  (re-exported sweep helper)
    flag_presence,
    flavor_decode,
    make_policy,
    policy_collapse_safe,
    replay_decoded,
    signature_column,
)
from repro.vm.trace import FLAG_BYPASS, FLAG_KILL, FLAG_WRITE


class MinConfig:
    """Request Belady MIN replacement for one slot of a multi-replay.

    Wraps the :class:`CacheConfig` whose geometry and bypass/kill
    handling the MIN simulation shares (the wrapped ``policy`` field is
    ignored, exactly as in ``replay_trace(..., policy="min")``).
    """

    __slots__ = ("config",)

    def __init__(self, config=None, **kwargs):
        if config is None:
            config = CacheConfig(policy="lru", **kwargs)
        elif kwargs:
            raise ValueError(
                "MinConfig: pass either a CacheConfig or keyword "
                "arguments, not both (got config plus {!r})".format(
                    sorted(kwargs)
                )
            )
        self.config = config

    def __repr__(self):
        return "MinConfig({!r})".format(self.config)


def replay_trace(trace, config=None, **kwargs):
    """Run ``trace`` through a cache built from ``config``.

    ``config`` and keyword overrides are mutually exclusive: silently
    dropping kwargs next to an explicit config hid real mistakes, so
    that combination raises :class:`ValueError`.  Without a config,
    ``policy`` may also be ``"min"``, which dispatches to the offline
    Belady simulator.  Returns the resulting CacheStats.
    """
    if config is None:
        policy = kwargs.pop("policy", "lru")
        if policy == "min":
            return simulate_min(trace, **kwargs)
        config = CacheConfig(policy=policy, **kwargs)
    elif kwargs:
        raise ValueError(
            "replay_trace: pass either a CacheConfig or keyword "
            "arguments, not both (got config plus {!r})".format(
                sorted(kwargs)
            )
        )

    cache = Cache(config, policy=policy_for_trace(trace, config))
    access = cache.access
    if cache.policy.needs_index:
        for index, (address, flags) in enumerate(trace):
            access(
                address,
                bool(flags & FLAG_WRITE),
                bool(flags & FLAG_BYPASS),
                bool(flags & FLAG_KILL),
                index=index,
            )
    else:
        for address, flags in trace:
            access(
                address,
                bool(flags & FLAG_WRITE),
                bool(flags & FLAG_BYPASS),
                bool(flags & FLAG_KILL),
            )
    return cache.stats


def policy_for_trace(trace, config):
    """Build the policy object ``config`` needs to replay ``trace``.

    Returns ``None`` for the self-contained policies (the cache builds
    its own); SHiP and Hawkeye need the trace's precomputed signature
    (and, for Hawkeye, next-use) columns, so any driver holding only a
    config uses this to construct them.
    """
    if config.policy not in PREDICTOR_POLICIES:
        return None
    signatures = signature_column(trace)
    next_use = None
    if config.policy == "hawkeye":
        next_use = next_use_index(
            trace, config.line_words, config.honor_bypass
        )
    return make_policy(config, next_use=next_use, signatures=signatures)


def replay_trace_multi(trace, configs, decoded=None):
    """Replay ``trace`` through every configuration of a sweep at once.

    ``configs`` is a sequence of :class:`CacheConfig` (any online
    policy, the predictive zoo included) and/or :class:`MinConfig`
    (offline Belady)
    entries; the result is the list of :class:`CacheStats` in the same
    order, each bit-identical to what :func:`replay_trace` produces
    for that entry alone.  The trace is decoded once (pass ``decoded``
    to amortize even that across calls), the MIN next-use index is
    computed once per ``(line_words, honor_bypass)`` combination, and
    the same-block run collapse is computed once per effective flavor
    and set count, shared across every configuration that can use it.
    """
    if decoded is None:
        decoded = decode_trace(trace)
    next_use_cache = {}
    stream_cache = {}
    runs_cache = {}
    state = {"columns": None, "presence": None, "signatures": None}

    def next_use_for(config):
        key = (config.line_words, config.honor_bypass)
        next_use = next_use_cache.get(key)
        if next_use is None:
            next_use = next_use_index(trace, *key)
            next_use_cache[key] = next_use
        return next_use

    def signatures_for():
        if state["signatures"] is None:
            state["signatures"] = signature_column(trace)
        return state["signatures"]

    def runs_for(config):
        """The run collapse for this config, or ``None`` if ineligible."""
        if not policy_collapse_safe(config.policy):
            # The RRIP family's hit promotion is not idempotent within
            # a same-block run; replay it uncollapsed.
            return None
        if not config.allocate_on_write:
            # A write-around head miss leaves its followers missing
            # too, so followers are not guaranteed hits.
            return None
        if state["columns"] is None:
            if not hasattr(trace, "to_columns"):
                return None
            state["columns"] = trace.to_columns()
            state["presence"] = flag_presence(state["columns"])
        has_bypass, has_kill = state["presence"]
        effective = (
            config.line_words,
            config.honor_bypass and has_bypass,
            config.honor_kill and has_kill,
        )
        runs_key = effective + (config.num_sets,)
        if runs_key in runs_cache:
            return runs_cache[runs_key]
        stream = stream_cache.get(effective)
        if stream is None:
            stream = flavor_decode(
                state["columns"], effective + (config.write_policy,)
            )
            stream_cache[effective] = stream
        blocks = (
            stream.blocks_np if stream.blocks_np is not None
            else stream.blocks_list
        )
        types = (
            stream.types_np if stream.types_np is not None
            else stream.types_list
        )
        runs = collapse_runs(blocks, types, config.num_sets)
        runs_cache[runs_key] = runs
        return runs

    results = []
    for spec in configs:
        if isinstance(spec, MinConfig):
            config = spec.config
            results.append(
                replay_decoded(
                    decoded, config,
                    policy=MinPolicy(next_use_for(config)),
                    runs=runs_for(config),
                )
            )
        elif spec.policy in PREDICTOR_POLICIES:
            policy = make_policy(
                spec,
                next_use=(
                    next_use_for(spec) if spec.policy == "hawkeye" else None
                ),
                signatures=signatures_for(),
            )
            results.append(replay_decoded(decoded, spec, policy=policy))
        else:
            results.append(
                replay_decoded(decoded, spec, runs=runs_for(spec))
            )
    return results
