"""Replay recorded traces through cache models.

Two entry points:

* :func:`replay_trace` — the reference serial path: one trace, one
  configuration, driven through the online :class:`Cache` (or the
  offline MIN simulator).  Every other replay implementation in the
  repository is defined as "bit-identical to this".
* :func:`replay_trace_multi` — the sweep core: one trace, N
  configurations, one decode.  The flag bytes are unpacked once and
  every configuration consumes the shared decoded stream through a
  tight inlined state machine (:func:`_replay_decoded`) that mirrors
  ``Cache.access`` branch for branch; MIN slots (requested with
  :class:`MinConfig`) share one precomputed next-use index per
  ``(line_words, honor_bypass)`` combination.  The equivalence battery
  (``tests/test_parallel_equivalence.py``) and the fuzzer's
  differential loop both assert the two paths agree on every counter.
"""

import random

from repro.cache.belady import next_use_index, simulate_min
from repro.cache.cache import Cache, CacheConfig
from repro.vm.trace import FLAG_BYPASS, FLAG_KILL, FLAG_WRITE


class MinConfig:
    """Request Belady MIN replacement for one slot of a multi-replay.

    Wraps the :class:`CacheConfig` whose geometry and bypass/kill
    handling the MIN simulation shares (the wrapped ``policy`` field is
    ignored, exactly as in ``replay_trace(..., policy="min")``).
    """

    __slots__ = ("config",)

    def __init__(self, config=None, **kwargs):
        if config is None:
            config = CacheConfig(policy="lru", **kwargs)
        elif kwargs:
            raise ValueError(
                "MinConfig: pass either a CacheConfig or keyword "
                "arguments, not both (got config plus {!r})".format(
                    sorted(kwargs)
                )
            )
        self.config = config

    def __repr__(self):
        return "MinConfig({!r})".format(self.config)


def replay_trace(trace, config=None, **kwargs):
    """Run ``trace`` through a cache built from ``config``.

    ``config`` and keyword overrides are mutually exclusive: silently
    dropping kwargs next to an explicit config hid real mistakes, so
    that combination raises :class:`ValueError`.  Without a config,
    ``policy`` may also be ``"min"``, which dispatches to the offline
    Belady simulator.  Returns the resulting CacheStats.
    """
    if config is None:
        policy = kwargs.pop("policy", "lru")
        if policy == "min":
            return simulate_min(trace, **kwargs)
        config = CacheConfig(policy=policy, **kwargs)
    elif kwargs:
        raise ValueError(
            "replay_trace: pass either a CacheConfig or keyword "
            "arguments, not both (got config plus {!r})".format(
                sorted(kwargs)
            )
        )

    cache = Cache(config)
    access = cache.access
    for address, flags in trace:
        access(
            address,
            bool(flags & FLAG_WRITE),
            bool(flags & FLAG_BYPASS),
            bool(flags & FLAG_KILL),
        )
    return cache.stats


def decode_trace(trace):
    """Unpack the flag bytes once for the whole sweep.

    Returns ``(addresses, writes, bypasses, kills)`` — the address
    array plus three parallel lists of the masked flag bits.  Sharing
    this across N configurations removes N-1 redundant per-event
    decodes from a sweep.
    """
    flags = trace.flags
    return (
        list(trace.addresses),
        [f & FLAG_WRITE for f in flags],
        [f & FLAG_BYPASS for f in flags],
        [f & FLAG_KILL for f in flags],
    )


def replay_trace_multi(trace, configs, decoded=None):
    """Replay ``trace`` through every configuration of a sweep at once.

    ``configs`` is a sequence of :class:`CacheConfig` (online
    LRU/FIFO/Random) and/or :class:`MinConfig` (offline Belady)
    entries; the result is the list of :class:`CacheStats` in the same
    order, each bit-identical to what :func:`replay_trace` produces
    for that entry alone.  The trace is decoded once (pass ``decoded``
    to amortize even that across calls) and the MIN next-use index is
    computed once per ``(line_words, honor_bypass)`` combination.
    """
    if decoded is None:
        decoded = decode_trace(trace)
    next_use_cache = {}
    results = []
    for spec in configs:
        if isinstance(spec, MinConfig):
            config = spec.config
            key = (config.line_words, config.honor_bypass)
            next_use = next_use_cache.get(key)
            if next_use is None:
                next_use = next_use_index(trace, *key)
                next_use_cache[key] = next_use
            results.append(simulate_min(trace, config, next_use=next_use))
        else:
            results.append(_replay_decoded(decoded, spec))
    return results


def _replay_decoded(decoded, config):
    """One online configuration over the decoded stream.

    This is ``Cache.access`` inlined: identical branch structure and
    counter updates, with the per-line record ``[tag, valid, dirty,
    stamp, inserted, dead]`` and the statistics held in locals for the
    duration of the loop.  Any change to the semantics in
    :mod:`repro.cache.cache` must be mirrored here — the equivalence
    tests and the fuzzer both fail loudly if the two drift.
    """
    from repro.cache.stats import CacheStats

    addresses, writes, bypasses, kills = decoded
    honor_bypass = config.honor_bypass
    honor_kill = config.honor_kill
    line_words = config.line_words
    num_sets = config.num_sets
    policy = config.policy
    writethrough = config.write_policy == "writethrough"
    allocate_on_write = config.allocate_on_write
    kill_invalidates = config.kill_mode == "invalidate" and line_words == 1
    rng_choice = (
        random.Random(config.seed).choice if policy == "random" else None
    )
    # line := [tag, valid, dirty, stamp, inserted, dead]
    sets = [
        [[-1, False, False, 0, 0, False] for _ in range(config.associativity)]
        for _ in range(num_sets)
    ]
    clock = 0

    refs_total = reads = write_refs = 0
    refs_cached = refs_bypassed = 0
    hits = misses = evictions = writebacks = 0
    words_from_memory = words_to_memory = 0
    probe_hits = kill_count = dead_drops = dead_line_frees = 0
    bypass_read_hits = bypass_reads_from_memory = bypass_writes = 0

    one_word_lines = line_words == 1
    # Ignored annotation bits become flat zero streams so the hot loop
    # carries no honor_* branches.
    if not honor_bypass:
        bypasses = [0] * len(addresses)
    if not honor_kill:
        kills = [0] * len(addresses)

    for address, is_write, bypass, kill in zip(
        addresses, writes, bypasses, kills
    ):
        refs_total += 1
        if is_write:
            write_refs += 1
        else:
            reads += 1
        clock += 1
        block = address if one_word_lines else address // line_words
        lines = sets[block % num_sets]
        line = None
        for candidate in lines:
            if candidate[1] and candidate[0] == block:
                line = candidate
                break

        if bypass:
            refs_bypassed += 1
            if is_write:
                words_to_memory += 1
                bypass_writes += 1
                if line is not None:
                    probe_hits += 1
                    line[1] = False
                    line[2] = False
                continue
            if line is not None:
                probe_hits += 1
                bypass_read_hits += 1
                if line[2]:
                    if kill:
                        dead_drops += 1
                    else:
                        writebacks += 1
                        words_to_memory += line_words
                if kill:
                    kill_count += 1
                line[1] = False
                line[2] = False
                continue
            words_from_memory += 1
            bypass_reads_from_memory += 1
            if kill:
                kill_count += 1
            continue

        refs_cached += 1
        if is_write and writethrough:
            words_to_memory += 1
        if line is not None:
            hits += 1
            if is_write and not writethrough:
                line[2] = True
            line[3] = clock
            line[5] = False
            if kill:
                kill_count += 1
                if kill_invalidates:
                    if line[2]:
                        dead_drops += 1
                    line[1] = False
                    line[2] = False
                    dead_line_frees += 1
                else:
                    line[5] = True
            continue

        misses += 1
        if kill and not is_write:
            kill_count += 1
            words_from_memory += 1
            continue
        if is_write and not allocate_on_write:
            if not writethrough:
                words_to_memory += 1
            continue
        victim = None
        for candidate in lines:
            if not candidate[1]:
                victim = candidate
                break
        if victim is None:
            dead = [candidate for candidate in lines if candidate[5]]
            if dead:
                victim = min(dead, key=_stamp)
            elif policy == "lru":
                victim = min(lines, key=_stamp)
            elif policy == "fifo":
                victim = min(lines, key=_inserted)
            else:
                victim = rng_choice(lines)
        if victim[1]:
            evictions += 1
            if victim[2]:
                writebacks += 1
                words_to_memory += line_words
        victim[0] = block
        victim[1] = True
        victim[2] = bool(is_write and not writethrough)
        victim[3] = clock
        victim[4] = clock
        victim[5] = False
        if not (is_write and one_word_lines):
            words_from_memory += line_words
        if kill:
            kill_count += 1
            if kill_invalidates:
                if victim[2]:
                    dead_drops += 1
                victim[1] = False
                victim[2] = False
                dead_line_frees += 1
            else:
                victim[5] = True

    return CacheStats(
        refs_total=refs_total,
        reads=reads,
        writes=write_refs,
        refs_cached=refs_cached,
        refs_bypassed=refs_bypassed,
        hits=hits,
        misses=misses,
        evictions=evictions,
        writebacks=writebacks,
        words_from_memory=words_from_memory,
        words_to_memory=words_to_memory,
        probe_hits=probe_hits,
        kills=kill_count,
        dead_drops=dead_drops,
        dead_line_frees=dead_line_frees,
        bypass_read_hits=bypass_read_hits,
        bypass_reads_from_memory=bypass_reads_from_memory,
        bypass_writes=bypass_writes,
    )


def _stamp(line):
    return line[3]


def _inserted(line):
    return line[4]
