"""Replay recorded traces through cache models.

Two entry points:

* :func:`replay_trace` — the reference serial path: one trace, one
  configuration, driven event-by-event through the online
  :class:`Cache` (or the offline MIN simulator).  Every other replay
  implementation in the repository is defined as "bit-identical to
  this".
* :func:`replay_trace_multi` — the sweep core: one trace, N
  configurations, one decode.  The flag bytes are unpacked once and
  every configuration consumes the shared decoded stream through the
  canonical transfer function
  (:func:`repro.cache.semantics.replay_decoded`), fronted by the
  same-block run collapse wherever the configuration's allocation
  policy makes followers guaranteed hits; MIN slots (requested with
  :class:`MinConfig`) share one precomputed next-use index per
  ``(line_words, honor_bypass)`` combination.  The equivalence battery
  (``tests/test_parallel_equivalence.py``) and the fuzzer's
  differential loop both assert the two paths agree on every counter.
"""

from repro.cache.belady import next_use_index, simulate_min
from repro.cache.cache import Cache, CacheConfig
from repro.cache.semantics import (
    MinPolicy,
    collapse_runs,
    decode_trace,  # noqa: F401  (re-exported sweep helper)
    flag_presence,
    flavor_decode,
    replay_decoded,
)
from repro.vm.trace import FLAG_BYPASS, FLAG_KILL, FLAG_WRITE


class MinConfig:
    """Request Belady MIN replacement for one slot of a multi-replay.

    Wraps the :class:`CacheConfig` whose geometry and bypass/kill
    handling the MIN simulation shares (the wrapped ``policy`` field is
    ignored, exactly as in ``replay_trace(..., policy="min")``).
    """

    __slots__ = ("config",)

    def __init__(self, config=None, **kwargs):
        if config is None:
            config = CacheConfig(policy="lru", **kwargs)
        elif kwargs:
            raise ValueError(
                "MinConfig: pass either a CacheConfig or keyword "
                "arguments, not both (got config plus {!r})".format(
                    sorted(kwargs)
                )
            )
        self.config = config

    def __repr__(self):
        return "MinConfig({!r})".format(self.config)


def replay_trace(trace, config=None, **kwargs):
    """Run ``trace`` through a cache built from ``config``.

    ``config`` and keyword overrides are mutually exclusive: silently
    dropping kwargs next to an explicit config hid real mistakes, so
    that combination raises :class:`ValueError`.  Without a config,
    ``policy`` may also be ``"min"``, which dispatches to the offline
    Belady simulator.  Returns the resulting CacheStats.
    """
    if config is None:
        policy = kwargs.pop("policy", "lru")
        if policy == "min":
            return simulate_min(trace, **kwargs)
        config = CacheConfig(policy=policy, **kwargs)
    elif kwargs:
        raise ValueError(
            "replay_trace: pass either a CacheConfig or keyword "
            "arguments, not both (got config plus {!r})".format(
                sorted(kwargs)
            )
        )

    cache = Cache(config)
    access = cache.access
    for address, flags in trace:
        access(
            address,
            bool(flags & FLAG_WRITE),
            bool(flags & FLAG_BYPASS),
            bool(flags & FLAG_KILL),
        )
    return cache.stats


def replay_trace_multi(trace, configs, decoded=None):
    """Replay ``trace`` through every configuration of a sweep at once.

    ``configs`` is a sequence of :class:`CacheConfig` (online
    LRU/FIFO/Random) and/or :class:`MinConfig` (offline Belady)
    entries; the result is the list of :class:`CacheStats` in the same
    order, each bit-identical to what :func:`replay_trace` produces
    for that entry alone.  The trace is decoded once (pass ``decoded``
    to amortize even that across calls), the MIN next-use index is
    computed once per ``(line_words, honor_bypass)`` combination, and
    the same-block run collapse is computed once per effective flavor
    and set count, shared across every configuration that can use it.
    """
    if decoded is None:
        decoded = decode_trace(trace)
    next_use_cache = {}
    stream_cache = {}
    runs_cache = {}
    state = {"columns": None, "presence": None}

    def runs_for(config):
        """The run collapse for this config, or ``None`` if ineligible."""
        if not config.allocate_on_write:
            # A write-around head miss leaves its followers missing
            # too, so followers are not guaranteed hits.
            return None
        if state["columns"] is None:
            if not hasattr(trace, "to_columns"):
                return None
            state["columns"] = trace.to_columns()
            state["presence"] = flag_presence(state["columns"])
        has_bypass, has_kill = state["presence"]
        effective = (
            config.line_words,
            config.honor_bypass and has_bypass,
            config.honor_kill and has_kill,
        )
        runs_key = effective + (config.num_sets,)
        if runs_key in runs_cache:
            return runs_cache[runs_key]
        stream = stream_cache.get(effective)
        if stream is None:
            stream = flavor_decode(
                state["columns"], effective + (config.write_policy,)
            )
            stream_cache[effective] = stream
        blocks = (
            stream.blocks_np if stream.blocks_np is not None
            else stream.blocks_list
        )
        types = (
            stream.types_np if stream.types_np is not None
            else stream.types_list
        )
        runs = collapse_runs(blocks, types, config.num_sets)
        runs_cache[runs_key] = runs
        return runs

    results = []
    for spec in configs:
        if isinstance(spec, MinConfig):
            config = spec.config
            key = (config.line_words, config.honor_bypass)
            next_use = next_use_cache.get(key)
            if next_use is None:
                next_use = next_use_index(trace, *key)
                next_use_cache[key] = next_use
            results.append(
                replay_decoded(
                    decoded, config,
                    policy=MinPolicy(next_use),
                    runs=runs_for(config),
                )
            )
        else:
            results.append(
                replay_decoded(decoded, spec, runs=runs_for(spec))
            )
    return results
