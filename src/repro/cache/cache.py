"""The online cache simulator (LRU/FIFO/Random) with bypass and kill.

A performance model: it tracks tags, dirtiness and recency but not
data.  :class:`Cache` is a thin driver over the canonical transfer
function in :mod:`repro.cache.semantics` — the per-event bypass/kill
handling lives there, shared with the data-carrying functional twin,
the replay engines, and the sweep dispatchers.
"""

from dataclasses import dataclass

from repro.cache.semantics import UnifiedCache

#: Online replacement policies (Belady MIN lives in repro.cache.belady).
#: The last five are the predictive zoo (docs/POLICIES.md); ``ship``
#: and ``hawkeye`` consume precomputed trace columns, so drivers build
#: their policy objects via ``make_policy`` before replaying.
POLICIES = (
    "lru", "fifo", "random", "srrip", "brrip", "drrip", "ship", "hawkeye",
)

#: What a kill-marked reference does to the line (paper Section 3.2
#: offers both alternatives).
KILL_MODES = ("invalidate", "demote")

#: Store handling for the through-cache path.  ``writeback`` (default)
#: dirties the line and writes memory on eviction; ``writethrough``
#: (common in 1980s designs) sends every store to memory immediately
#: and never dirties lines — which also neuters the kill bit's
#: dead-dirty-drop benefit, a contrast worth measuring.
WRITE_POLICIES = ("writeback", "writethrough")


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and behaviour of one simulated data cache."""

    size_words: int = 256
    line_words: int = 1
    associativity: int = 4
    policy: str = "lru"
    honor_bypass: bool = True
    honor_kill: bool = True
    kill_mode: str = "invalidate"
    write_policy: str = "writeback"
    allocate_on_write: bool = True
    seed: int = 12345

    def __post_init__(self):
        if self.policy not in POLICIES:
            raise ValueError("unknown policy {!r}".format(self.policy))
        if self.kill_mode not in KILL_MODES:
            raise ValueError("unknown kill mode {!r}".format(self.kill_mode))
        if self.write_policy not in WRITE_POLICIES:
            raise ValueError(
                "unknown write policy {!r}".format(self.write_policy)
            )
        if self.size_words % (self.line_words * self.associativity):
            raise ValueError(
                "size_words must be a multiple of line_words*associativity"
            )

    @property
    def num_sets(self):
        return self.size_words // (self.line_words * self.associativity)


class Cache(UnifiedCache):
    """Set-associative cache honoring the unified model's annotations.

    All behaviour — ``access``, ``probe``, ``contents``, ``stats`` —
    comes from :class:`~repro.cache.semantics.UnifiedCache`; this
    subclass only adds the keyword-argument constructor convenience.
    """

    __slots__ = ()

    def __init__(self, config=None, policy=None, **kwargs):
        if config is None:
            config = CacheConfig(**kwargs)
        elif kwargs:
            raise TypeError("pass either a CacheConfig or keyword arguments")
        super().__init__(config, policy=policy)
