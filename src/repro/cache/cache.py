"""The online cache simulator (LRU/FIFO/Random) with bypass and kill.

A performance model: it tracks tags, dirtiness and recency but not
data.  The data-carrying twin in :mod:`repro.cache.functional`
implements the identical protocol and is used to prove functional
transparency; keep the two in sync.
"""

import random
from dataclasses import dataclass

from repro.cache.stats import CacheStats

#: Online replacement policies (Belady MIN lives in repro.cache.belady).
POLICIES = ("lru", "fifo", "random")

#: What a kill-marked reference does to the line (paper Section 3.2
#: offers both alternatives).
KILL_MODES = ("invalidate", "demote")

#: Store handling for the through-cache path.  ``writeback`` (default)
#: dirties the line and writes memory on eviction; ``writethrough``
#: (common in 1980s designs) sends every store to memory immediately
#: and never dirties lines — which also neuters the kill bit's
#: dead-dirty-drop benefit, a contrast worth measuring.
WRITE_POLICIES = ("writeback", "writethrough")


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and behaviour of one simulated data cache."""

    size_words: int = 256
    line_words: int = 1
    associativity: int = 4
    policy: str = "lru"
    honor_bypass: bool = True
    honor_kill: bool = True
    kill_mode: str = "invalidate"
    write_policy: str = "writeback"
    allocate_on_write: bool = True
    seed: int = 12345

    def __post_init__(self):
        if self.policy not in POLICIES:
            raise ValueError("unknown policy {!r}".format(self.policy))
        if self.kill_mode not in KILL_MODES:
            raise ValueError("unknown kill mode {!r}".format(self.kill_mode))
        if self.write_policy not in WRITE_POLICIES:
            raise ValueError(
                "unknown write policy {!r}".format(self.write_policy)
            )
        if self.size_words % (self.line_words * self.associativity):
            raise ValueError(
                "size_words must be a multiple of line_words*associativity"
            )

    @property
    def num_sets(self):
        return self.size_words // (self.line_words * self.associativity)


class _Line:
    __slots__ = ("tag", "valid", "dirty", "stamp", "inserted", "dead")

    def __init__(self):
        self.tag = -1
        self.valid = False
        self.dirty = False
        self.stamp = 0
        self.inserted = 0
        self.dead = False


class Cache:
    """Set-associative cache honoring the unified model's annotations."""

    def __init__(self, config=None, **kwargs):
        if config is None:
            config = CacheConfig(**kwargs)
        elif kwargs:
            raise TypeError("pass either a CacheConfig or keyword arguments")
        self.config = config
        self.stats = CacheStats()
        self._sets = [
            [_Line() for _ in range(config.associativity)]
            for _ in range(config.num_sets)
        ]
        self._clock = 0
        self._rng = random.Random(config.seed)

    # ------------------------------------------------------------------

    def access(self, address, is_write, bypass=False, kill=False):
        """Simulate one reference; returns "hit", "miss" or "bypass"."""
        stats = self.stats
        stats.refs_total += 1
        if is_write:
            stats.writes += 1
        else:
            stats.reads += 1
        config = self.config
        if not config.honor_bypass:
            bypass = False
        if not config.honor_kill:
            kill = False
        self._clock += 1
        block = address // config.line_words
        lines = self._sets[block % config.num_sets]

        if bypass:
            return self._access_bypass(lines, block, is_write, kill)
        return self._access_through(lines, block, is_write, kill)

    def probe(self, address):
        """Is the block holding ``address`` currently present?

        A pure coherence probe: no stats, no recency update, no state
        change.  Used by the static-analysis cross-validator to compare
        predicted against actual presence before each reference (for
        one-word lines presence is exactly the hit/miss outcome of a
        through-cache access, and the probe outcome of a bypass one).
        """
        block = address // self.config.line_words
        lines = self._sets[block % self.config.num_sets]
        return self._find(lines, block) is not None

    # ------------------------------------------------------------------

    def _find(self, lines, block):
        for line in lines:
            if line.valid and line.tag == block:
                return line
        return None

    def _access_bypass(self, lines, block, is_write, kill):
        """UmAm_LOAD / UmAm_STORE: the bypass path with coherence probe."""
        stats = self.stats
        config = self.config
        stats.refs_bypassed += 1
        line = self._find(lines, block)
        if is_write:
            # Write straight to memory; invalidate any stale copy.
            stats.words_to_memory += 1
            stats.bypass_writes += 1
            if line is not None:
                stats.probe_hits += 1
                line.valid = False
                line.dirty = False
            return "bypass"
        if line is not None:
            # The cache holds the authoritative copy: take it and free
            # the line (paper 4.3).  Dirty data must reach memory unless
            # the compiler proved the value dead (kill bit).
            stats.probe_hits += 1
            stats.bypass_read_hits += 1
            if line.dirty:
                if kill:
                    stats.dead_drops += 1
                else:
                    stats.writebacks += 1
                    stats.words_to_memory += config.line_words
            if kill:
                stats.kills += 1
            line.valid = False
            line.dirty = False
            return "bypass"
        stats.words_from_memory += 1
        stats.bypass_reads_from_memory += 1
        if kill:
            stats.kills += 1
        return "bypass"

    def _access_through(self, lines, block, is_write, kill):
        """Am_LOAD / AmSp_STORE: the normal cached path (write-back,
        write-allocate), with the dead-line modification."""
        stats = self.stats
        config = self.config
        stats.refs_cached += 1
        writethrough = config.write_policy == "writethrough"
        if is_write and writethrough:
            stats.words_to_memory += 1
        line = self._find(lines, block)
        if line is not None:
            stats.hits += 1
            if is_write and not writethrough:
                line.dirty = True
            line.stamp = self._clock
            line.dead = False
            if kill:
                self._kill_line(line)
            return "hit"

        stats.misses += 1
        if kill and not is_write:
            # Last use of a value not in cache: serve it via the bypass
            # path instead of installing a dead line (paper 3.2).
            stats.kills += 1
            stats.words_from_memory += 1
            return "miss"
        if is_write and not config.allocate_on_write:
            # Write-around: memory gets the word, the cache stays put.
            if not writethrough:
                stats.words_to_memory += 1
            return "miss"
        victim = self._choose_victim(lines)
        if victim.valid:
            stats.evictions += 1
            if victim.dirty:
                stats.writebacks += 1
                stats.words_to_memory += config.line_words
        victim.tag = block
        victim.valid = True
        victim.dirty = is_write and not writethrough
        victim.stamp = self._clock
        victim.inserted = self._clock
        victim.dead = False
        if not (is_write and config.line_words == 1):
            # A one-word write-allocate overwrites the whole line, so
            # no fill is fetched; wider lines must fetch-on-write.
            stats.words_from_memory += config.line_words
        if kill:
            self._kill_line(victim)
        return "miss"

    def _kill_line(self, line):
        """Apply the dead-line modification after the reference is done."""
        stats = self.stats
        stats.kills += 1
        if self.config.kill_mode == "invalidate" and self.config.line_words == 1:
            if line.dirty:
                stats.dead_drops += 1
            line.valid = False
            line.dirty = False
            stats.dead_line_frees += 1
        else:
            # Multi-word lines may hold live neighbours; only demote.
            line.dead = True

    def _choose_victim(self, lines):
        for line in lines:
            if not line.valid:
                return line
        dead = [line for line in lines if line.dead]
        if dead:
            return min(dead, key=lambda line: line.stamp)
        policy = self.config.policy
        if policy == "lru":
            return min(lines, key=lambda line: line.stamp)
        if policy == "fifo":
            return min(lines, key=lambda line: line.inserted)
        return self._rng.choice(lines)

    # ------------------------------------------------------------------

    def contents(self):
        """Valid blocks currently cached, for tests: {block: dirty}."""
        result = {}
        for lines in self._sets:
            for line in lines:
                if line.valid:
                    result[line.tag] = line.dirty
        return result
