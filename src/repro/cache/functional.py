"""A data-carrying cache: proves the unified protocol is transparent.

The performance simulator (:mod:`repro.cache.cache`) tracks tags only.
This twin drives the very same transfer function
(:class:`repro.cache.semantics.UnifiedCache` in data mode, which
actually stores each word in its line), so running a program against
it and comparing every output (and final memory) with a flat-memory
run demonstrates that bypass bits, kill bits, coherence probes and
dead-dirty drops never change program semantics — the property the
paper's hardware depends on.

Restricted to line size one, like the paper's data cache.
"""

from repro.cache.cache import CacheConfig
from repro.cache.semantics import UnifiedCache
from repro.vm.memory import MemorySystem


class DataCachedMemory(MemorySystem):
    """MemorySystem implementing the unified protocol *with data*.

    ``policy`` accepts a prebuilt :class:`ReplacementPolicy` for the
    trace-column-driven predictors (SHiP, Hawkeye): record the
    program's trace once, build the policy from its columns, and rerun
    the program against this twin — the access sequence is identical,
    so the internal event counter lines the predictor's columns up
    with the live accesses.
    """

    def __init__(self, config=None, policy=None, **kwargs):
        if config is None:
            config = CacheConfig(**kwargs)
        if config.line_words != 1:
            raise ValueError("the functional model requires line size 1")
        self.config = config
        self._core = UnifiedCache(config, policy=policy, data=True)
        self._index = 0

    @property
    def stats(self):
        return self._core.stats

    @property
    def main(self):
        return self._core.main

    # ------------------------------------------------------------------
    # Initialisation helpers (not traced).
    # ------------------------------------------------------------------

    def poke(self, address, value):
        self._core.main[address] = value

    def peek(self, address):
        """Coherent view: the cached copy wins over main memory."""
        return self._core.peek(address)

    # ------------------------------------------------------------------

    def read(self, address, ref):
        core = self._core
        index = self._index
        self._index = index + 1
        core.access(address, False, ref.bypass, ref.kill, index=index)
        return core.value

    def write(self, address, value, ref):
        index = self._index
        self._index = index + 1
        self._core.access(
            address, True, ref.bypass, ref.kill, value=value, index=index
        )

    def flush(self):
        """Write every dirty line back; used before final memory checks."""
        self._core.flush()
