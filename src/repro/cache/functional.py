"""A data-carrying cache: proves the unified protocol is transparent.

The performance simulator (:mod:`repro.cache.cache`) tracks tags only.
This twin actually stores the data in the simulated lines and applies
the identical protocol, so running a program against it and comparing
every output (and final memory) with a flat-memory run demonstrates
that bypass bits, kill bits, coherence probes and dead-dirty drops
never change program semantics — the property the paper's hardware
depends on.

Restricted to line size one, like the paper's data cache.
"""

from repro.cache.cache import CacheConfig
from repro.cache.stats import CacheStats
from repro.vm.memory import MemorySystem


class _DataLine:
    __slots__ = ("tag", "valid", "dirty", "stamp", "value")

    def __init__(self):
        self.tag = -1
        self.valid = False
        self.dirty = False
        self.stamp = 0
        self.value = 0


class DataCachedMemory(MemorySystem):
    """MemorySystem implementing the unified protocol *with data*."""

    def __init__(self, config=None, **kwargs):
        if config is None:
            config = CacheConfig(**kwargs)
        if config.line_words != 1:
            raise ValueError("the functional model requires line size 1")
        self.config = config
        self.stats = CacheStats()
        self.main = {}
        self._sets = [
            [_DataLine() for _ in range(config.associativity)]
            for _ in range(config.num_sets)
        ]
        self._clock = 0

    # ------------------------------------------------------------------
    # Initialisation helpers (not traced).
    # ------------------------------------------------------------------

    def poke(self, address, value):
        self.main[address] = value

    def peek(self, address):
        """Coherent view: the cached copy wins over main memory."""
        line = self._find(self._lines_for(address), address)
        if line is not None:
            return line.value
        return self.main.get(address, 0)

    # ------------------------------------------------------------------

    def _lines_for(self, address):
        return self._sets[address % self.config.num_sets]

    def _find(self, lines, tag):
        for line in lines:
            if line.valid and line.tag == tag:
                return line
        return None

    def _victim(self, lines):
        free = None
        for line in lines:
            if not line.valid:
                free = line
                break
        if free is not None:
            return free
        victim = min(lines, key=lambda line: line.stamp)  # LRU
        self.stats.evictions += 1
        if victim.dirty:
            self.stats.writebacks += 1
            self.stats.words_to_memory += 1
            self.main[victim.tag] = victim.value
        return victim

    # ------------------------------------------------------------------

    def read(self, address, ref):
        stats = self.stats
        stats.refs_total += 1
        stats.reads += 1
        self._clock += 1
        lines = self._lines_for(address)
        line = self._find(lines, address)

        if ref.bypass:
            stats.refs_bypassed += 1
            if line is not None:
                # UmAm_LOAD hit: take the authoritative copy, free the
                # line; write dirty data back unless the value is dead.
                stats.probe_hits += 1
                stats.bypass_read_hits += 1
                value = line.value
                if line.dirty:
                    if ref.kill:
                        stats.dead_drops += 1
                    else:
                        stats.writebacks += 1
                        stats.words_to_memory += 1
                        self.main[address] = value
                line.valid = False
                line.dirty = False
                if ref.kill:
                    stats.kills += 1
                return value
            stats.words_from_memory += 1
            stats.bypass_reads_from_memory += 1
            if ref.kill:
                stats.kills += 1
            return self.main.get(address, 0)

        stats.refs_cached += 1
        if line is not None:
            stats.hits += 1
            line.stamp = self._clock
            value = line.value
            if ref.kill:
                self._kill(line)
            return value
        stats.misses += 1
        value = self.main.get(address, 0)
        if ref.kill:
            # Dead value not in cache: serve via bypass, don't install.
            stats.kills += 1
            stats.words_from_memory += 1
            return value
        victim = self._victim(lines)
        victim.tag = address
        victim.valid = True
        victim.dirty = False
        victim.stamp = self._clock
        victim.value = value
        stats.words_from_memory += 1
        return value

    def write(self, address, value, ref):
        stats = self.stats
        stats.refs_total += 1
        stats.writes += 1
        self._clock += 1
        lines = self._lines_for(address)
        line = self._find(lines, address)

        if ref.bypass:
            # UmAm_STORE: straight to memory; invalidate stale copies.
            stats.refs_bypassed += 1
            stats.bypass_writes += 1
            stats.words_to_memory += 1
            self.main[address] = value
            if line is not None:
                stats.probe_hits += 1
                line.valid = False
                line.dirty = False
            return

        stats.refs_cached += 1
        if line is not None:
            stats.hits += 1
            line.value = value
            line.dirty = True
            line.stamp = self._clock
            if ref.kill:
                self._kill(line)
            return
        stats.misses += 1
        victim = self._victim(lines)
        victim.tag = address
        victim.valid = True
        victim.dirty = True
        victim.stamp = self._clock
        victim.value = value
        # Line size is one word: the write overwrites the whole line,
        # so write-allocate fetches nothing from memory.
        if ref.kill:
            self._kill(victim)

    def _kill(self, line):
        stats = self.stats
        stats.kills += 1
        if line.dirty:
            stats.dead_drops += 1
        line.valid = False
        line.dirty = False
        stats.dead_line_frees += 1

    # ------------------------------------------------------------------

    def flush(self):
        """Write every dirty line back; used before final memory checks."""
        for lines in self._sets:
            for line in lines:
                if line.valid and line.dirty:
                    self.main[line.tag] = line.value
                    line.dirty = False
