"""Multi-core shared-LLC contention over the unified semantics.

The paper scores one program against one private cache.  This layer
asks the question the ROADMAP flags: do compiler-provided kill bits
still pay off when the last-level cache is *shared and contended* —
and can they substitute for utility-based way partitioning?

The model: K benchmark traces are interleaved deterministically as
"cores" (:func:`interleave_traces` — a seeded burst schedule over the
counter RNG, so the same seed always yields the byte-identical merged
stream).  Each core owns a private first level driven with its own
bypass/kill stream; every reference the private level cannot serve
falls through to one shared :class:`~repro.cache.semantics.UnifiedCache`
whose tag space is partitioned per core (disjoint block offsets that
preserve each core's set mapping, so contention is for *ways*, exactly
the shared-LLC regime the partitioning literature studies).

Two capacity-management levers are modeled at the shared level:

* **Static way partitioning** (SWP): :class:`PartitionedLRUPolicy`
  gives each core a way quota per set and enforces it in the victim
  scan — an installing core at or over quota evicts the LRU line among
  its *own* lines; an under-quota core reclaims the LRU line of
  whichever core is over quota.  Dead-line preference (the paper's
  policy-independent kill reuse) applies within the allowed candidate
  set, so partition isolation survives the kill bits.
* **UMON utility monitoring**: per-core shadow-tag stack-distance
  counters (:func:`utility_curves`, reusing the
  :mod:`repro.cache.stackdist` profiler over each core's private-level
  demand stream) yield hits-versus-ways curves; :func:`utility_partition`
  converts them into quotas by greedy marginal utility (UCP-lite).

Kill bits default to the hierarchy core's rule (innermost level only),
but :func:`simulate_multicore` exposes ``shared_kill``: when set, kill
bits are also honored at the shared level — a killed reference that
falls through retires its shared copy too, and a kill served entirely
by the private level sends a tag probe that invalidates (dead-drops if
dirty) any stale shared copy.  That is the lever the E18 experiment
compares against way partitioning: compiler liveness freeing contended
shared ways directly.
"""

from array import array
from dataclasses import replace

from repro.cache.cache import Cache
from repro.cache.hierarchy import HierarchyError, filtered_trace
from repro.cache.semantics import (
    ENTRY_DEAD,
    ENTRY_DIRTY,
    LRUPolicy,
    _WAY_TAG,
    _WAY_VALID,
    _by_stamp,
    _mix64,
)
from repro.cache.stackdist import flavor_key, profile_pass
from repro.vm.trace import FLAG_BYPASS, FLAG_KILL, FLAG_WRITE, TraceBuffer

#: Way-list slot holding the installing core's id (the first slot past
#: the shared ``_WAY_INSERTED`` tail; the RRIP family's extra slots
#: start at the same index, but the partitioned policy is LRU-based
#: and never coexists with them in one policy object).
_PART_OWNER = 7


class MergedTrace:
    """A deterministic interleave of K per-core reference streams.

    Parallel arrays (``cores``/``addresses``/``flags``) plus the
    metadata the simulator needs: per-core event counts and the
    maximum address over every input stream (for disjoint per-core
    block offsets at the shared level).  Iteration yields
    ``(core, address, flags)``.
    """

    __slots__ = ("cores", "addresses", "flags", "counts", "max_address",
                 "seed", "chunk")

    def __init__(self, cores, addresses, flags, counts, max_address,
                 seed, chunk):
        self.cores = cores
        self.addresses = addresses
        self.flags = flags
        self.counts = counts
        self.max_address = max_address
        self.seed = seed
        self.chunk = chunk

    def __len__(self):
        return len(self.addresses)

    def __iter__(self):
        return zip(self.cores, self.addresses, self.flags)

    @property
    def num_cores(self):
        return len(self.counts)

    def tobytes(self):
        """The merged stream as one byte string (determinism checks)."""
        return (
            self.cores.tobytes()
            + self.addresses.tobytes()
            + self.flags.tobytes()
        )


def interleave_traces(traces, seed=0, chunk=8):
    """Merge per-core traces into one deterministic contention stream.

    At each step one non-exhausted core is drawn uniformly via the
    counter RNG (:func:`~repro.cache.semantics._mix64` keyed by
    ``seed`` and the draw ordinal — no shared RNG stream, so the
    schedule is a pure function of ``(lengths, seed, chunk)``) and
    contributes its next ``chunk`` events (a burst, the granularity at
    which real cores trade the shared cache).  Every input event
    appears exactly once, in its core's original order.
    """
    if not traces:
        raise HierarchyError("interleave_traces needs at least one trace")
    if chunk < 1:
        raise HierarchyError("interleave chunk must be >= 1")
    counts = tuple(len(trace) for trace in traces)
    cores = array("B")
    addresses = array("q")
    flags = array("B")
    if len(traces) > 255:
        raise HierarchyError("at most 255 cores")
    sources = [
        (trace.addresses, trace.flags) for trace in traces
    ]
    positions = [0] * len(traces)
    remaining = list(counts)
    live = [i for i, count in enumerate(counts) if count]
    draw = 0
    max_address = 0
    for trace in traces:
        if len(trace.addresses):
            max_address = max(max_address, max(trace.addresses))
    while live:
        choice = live[_mix64(seed, 0, draw) % len(live)]
        draw += 1
        take = min(chunk, remaining[choice])
        start = positions[choice]
        src_addresses, src_flags = sources[choice]
        addresses.extend(src_addresses[start:start + take])
        flags.extend(src_flags[start:start + take])
        cores.extend([choice] * take)
        positions[choice] = start + take
        remaining[choice] -= take
        if not remaining[choice]:
            live.remove(choice)
    return MergedTrace(cores, addresses, flags, counts, max_address,
                       seed, chunk)


class PartitionedLRUPolicy(LRUPolicy):
    """LRU with SWP-style per-core way quotas enforced in eviction.

    ``quotas[core]`` is the number of ways per set the core owns; the
    quotas must sum to the associativity.  The driver sets ``core``
    before each shared-level access (the simulation is serial).  Free
    ways fill normally — partitioning constrains only whose line a
    full set gives up: a core at/over its quota victimizes its own
    LRU line; an under-quota core reclaims the LRU line of an
    over-quota core.  Dead lines are preferred within the allowed
    candidate set (smallest stamp first), keeping the paper's
    policy-independent dead-line reuse without letting a kill breach
    the partition.
    """

    __slots__ = ("quotas", "core")
    name = "partitioned-lru"
    _extra_slots = 1

    def __init__(self, quotas):
        self.quotas = tuple(int(quota) for quota in quotas)
        if any(quota < 0 for quota in self.quotas):
            raise HierarchyError("way quotas must be non-negative")
        self.core = 0

    def reset(self, config):
        if sum(self.quotas) != config.associativity:
            raise HierarchyError(
                "way quotas {} must sum to the associativity {}".format(
                    self.quotas, config.associativity
                )
            )
        super().reset(config)

    def install(self, set_index, block, clock, index):
        line = super().install(set_index, block, clock, index)
        line[_PART_OWNER] = self.core
        return line

    def _candidates(self, lines):
        """The lines the installing core may victimize in a full set."""
        core = self.core
        owned = [line for line in lines if line[_PART_OWNER] == core]
        if owned and len(owned) >= self.quotas[core]:
            return owned
        occupancy = {}
        for line in lines:
            owner = line[_PART_OWNER]
            occupancy[owner] = occupancy.get(owner, 0) + 1
        over = [
            line for line in lines
            if occupancy[line[_PART_OWNER]] > self.quotas[line[_PART_OWNER]]
        ]
        if over:
            return over
        # Quotas exactly met everywhere yet this core is under quota:
        # only possible transiently (e.g. quota 0); fall back to any
        # other core's lines, then to the whole set.
        others = [line for line in lines if line[_PART_OWNER] != core]
        return others or lines

    def evict(self, set_index):
        lines = self._sets[set_index]
        candidates = self._candidates(lines)
        dead = [line for line in candidates if line[ENTRY_DEAD]]
        victim = min(dead or candidates, key=_by_stamp)
        victim[_WAY_VALID] = False
        return victim[_WAY_TAG], victim


def utility_curves(traces, l1_config, shared_config):
    """Per-core UMON curves: shared-level hits as a function of ways.

    Each core's private level is replayed once
    (:func:`~repro.cache.hierarchy.filtered_trace`) to obtain the
    demand stream that reaches the shared level; a shadow-tag
    stack-distance pass (:func:`~repro.cache.stackdist.profile_pass`
    at the shared geometry, kills and bypasses ignored — UMON monitors
    raw reuse) yields the aggregate distance histogram, whose prefix
    sums are exactly "hits this core would score with w ways".
    Returns ``curves[core][w]`` for ``w in 0..associativity``.
    """
    monitor_config = replace(
        shared_config, policy="lru", honor_bypass=False, honor_kill=False,
    )
    assoc = monitor_config.associativity
    curves = []
    for trace in traces:
        _l1_stats, demand = filtered_trace(trace, l1_config)
        columns = demand.to_columns()
        flavor = flavor_key(monitor_config, False, False)
        profile = profile_pass(
            columns, flavor, monitor_config.num_sets, assoc
        )
        histogram = profile.distance_histogram()
        curve = [0] * (assoc + 1)
        running = histogram[0]  # collapsed guaranteed-MRU hits
        for way in range(1, assoc + 1):
            running += histogram[way]
            curve[way] = running
        curve[0] = 0
        curves.append(curve)
    return curves


def utility_partition(curves, total_ways, min_ways=1):
    """Greedy marginal-utility way allocation (UCP-lite).

    Every core starts at ``min_ways``; the remaining ways go one at a
    time to the core with the largest marginal hit gain (ties to the
    lowest core index, so the allocation is deterministic).  Returns
    the per-core quota tuple, summing to ``total_ways``.
    """
    cores = len(curves)
    if cores * min_ways > total_ways:
        raise HierarchyError(
            "{} cores x {} minimum ways exceed the {} available".format(
                cores, min_ways, total_ways
            )
        )
    quotas = [min_ways] * cores
    for _ in range(total_ways - cores * min_ways):
        best = None
        best_gain = -1
        for core in range(cores):
            ways = quotas[core]
            if ways >= len(curves[core]) - 1:
                gain = 0
            else:
                gain = curves[core][ways + 1] - curves[core][ways]
            if gain > best_gain:
                best = core
                best_gain = gain
        quotas[best] += 1
    return tuple(quotas)


def even_partition(cores, total_ways):
    """Equal split of ``total_ways``, remainder to the lowest cores."""
    base, extra = divmod(total_ways, cores)
    return tuple(base + (1 if core < extra else 0) for core in range(cores))


class MulticoreResult:
    """Everything one multi-core simulation measured."""

    __slots__ = ("names", "l1_stats", "shared_stats", "shared_refs",
                 "shared_hits", "quotas", "events", "kill_probes",
                 "seed", "chunk")

    def __init__(self, names, l1_stats, shared_stats, shared_refs,
                 shared_hits, quotas, events, kill_probes, seed, chunk):
        self.names = names
        self.l1_stats = l1_stats
        self.shared_stats = shared_stats
        self.shared_refs = shared_refs
        self.shared_hits = shared_hits
        self.quotas = quotas
        self.events = events
        self.kill_probes = kill_probes
        self.seed = seed
        self.chunk = chunk

    @property
    def shared_hit_rate(self):
        """Hit ratio of the shared level's through-cache references."""
        return self.shared_stats.hit_rate

    @property
    def memory_bus_words(self):
        return self.shared_stats.bus_words

    def as_dict(self):
        row = {
            "cores": list(self.names),
            "events": self.events,
            "quotas": list(self.quotas) if self.quotas else None,
            "seed": self.seed,
            "chunk": self.chunk,
            "shared_hits": self.shared_stats.hits,
            "shared_misses": self.shared_stats.misses,
            "shared_hit_rate": round(self.shared_hit_rate, 4),
            "memory_bus_words": self.memory_bus_words,
            "shared_kill_probes": self.kill_probes,
        }
        for core, name in enumerate(self.names):
            prefix = "core{}".format(core)
            row[prefix + "_benchmark"] = name
            row[prefix + "_l1_miss_rate"] = round(
                self.l1_stats[core].miss_rate, 4
            )
            row[prefix + "_shared_refs"] = self.shared_refs[core]
            row[prefix + "_shared_hits"] = self.shared_hits[core]
        return row


def simulate_multicore(traces, l1_config, shared_config, quotas=None,
                       shared_kill=False, seed=0, chunk=8, names=None,
                       merged=None):
    """Replay K per-core traces against private L1s + one shared level.

    ``traces`` is a list of per-core :class:`TraceBuffer`\\ s (their
    bypass/kill streams are each core's own compiler annotations);
    ``l1_config`` is the private-level geometry (honor flags as
    given); ``shared_config`` the shared level's.  ``quotas`` turns on
    static way partitioning (:class:`PartitionedLRUPolicy`); ``None``
    leaves the shared level an unpartitioned free-for-all under
    ``shared_config.policy``.  ``shared_kill`` extends kill bits to
    the shared level (see the module docstring); bypass stays a
    first-level directive, the E16 answer.  ``merged`` short-circuits
    the interleave with a prebuilt :class:`MergedTrace` (the overhead
    benchmark reuses one merge across configurations).
    """
    cores = len(traces)
    if merged is None:
        merged = interleave_traces(traces, seed=seed, chunk=chunk)
    if names is None:
        names = ["core{}".format(index) for index in range(cores)]
    l1s = [Cache(l1_config) for _ in range(cores)]
    shared_effective = replace(
        shared_config,
        honor_bypass=False,
        honor_kill=bool(shared_kill and shared_config.honor_kill),
    )
    policy = None
    if quotas is not None:
        if len(quotas) != cores:
            raise HierarchyError(
                "need one way quota per core ({} cores, {} quotas)".format(
                    cores, len(quotas)
                )
            )
        policy = PartitionedLRUPolicy(quotas)
        shared = Cache(replace(shared_effective, policy="lru"),
                       policy=policy)
    else:
        shared = Cache(shared_effective)

    line_words = shared_effective.line_words
    num_sets = shared_effective.num_sets
    # Disjoint per-core block offsets that preserve each core's own
    # set mapping: contention is for ways, never a remapping artifact.
    max_block = merged.max_address // line_words
    stride_blocks = -(-(max_block + 1) // num_sets) * num_sets
    stride_words = stride_blocks * line_words

    probe_kills = bool(shared_kill and l1_config.honor_kill)
    shared_policy = shared.policy
    shared_stats = shared.stats
    kill_probes = 0
    shared_refs = [0] * cores
    shared_hits = [0] * cores
    l1_access = [cache.access for cache in l1s]
    shared_access = shared.access
    for core, address, flags in merged:
        is_write = bool(flags & FLAG_WRITE)
        bypass = bool(flags & FLAG_BYPASS)
        kill = bool(flags & FLAG_KILL)
        outcome = l1_access[core](address, is_write, bypass, kill)
        shifted = address + core * stride_words
        if outcome == "hit":
            if kill and probe_kills:
                # The private level retired the line; a stale shared
                # copy is dead too — free the way without a reference.
                block = shifted // line_words
                set_index = block % num_sets
                entry = shared_policy.lookup(set_index, block)
                if entry is not None:
                    if entry[ENTRY_DIRTY]:
                        shared_stats.dead_drops += 1
                    shared_policy.invalidate(set_index, block, entry)
                    shared_stats.dead_line_frees += 1
                    kill_probes += 1
            continue
        if policy is not None:
            policy.core = core
        shared_refs[core] += 1
        if shared_access(shifted, is_write, bypass, kill) == "hit":
            shared_hits[core] += 1
    return MulticoreResult(
        names=tuple(names),
        l1_stats=[cache.stats for cache in l1s],
        shared_stats=shared.stats,
        shared_refs=shared_refs,
        shared_hits=shared_hits,
        quotas=tuple(quotas) if quotas is not None else None,
        events=len(merged),
        kill_probes=kill_probes,
        seed=merged.seed,
        chunk=merged.chunk,
    )


#: The E18 configuration grid: the kill axis crossed with the
#: partitioning axis.  Bypass is honored at the private level in all
#: four (the E16 answer: bypass is a first-level directive).
MULTICORE_CONFIGS = ("shared", "partitioned", "kill", "kill+partitioned")


def multicore_grid(traces, l1_config, shared_config, quotas,
                   seed=0, chunk=8, names=None, configs=MULTICORE_CONFIGS):
    """Score the kill-vs-partitioning grid on one core pairing.

    Returns ``{config: MulticoreResult}`` over (a subset of)
    :data:`MULTICORE_CONFIGS`; the interleave is computed once and
    shared, so every configuration sees the identical contention
    schedule.  ``quotas`` applies to the two partitioned cells.
    """
    merged = interleave_traces(traces, seed=seed, chunk=chunk)
    no_kill = replace(l1_config, honor_kill=False)
    grid = {
        "shared": (no_kill, None, False),
        "partitioned": (no_kill, quotas, False),
        "kill": (l1_config, None, True),
        "kill+partitioned": (l1_config, quotas, True),
    }
    results = {}
    for config in configs:
        l1, cell_quotas, shared_kill = grid[config]
        results[config] = simulate_multicore(
            traces, l1, shared_config, quotas=cell_quotas,
            shared_kill=shared_kill, seed=seed, chunk=chunk,
            names=names, merged=merged,
        )
    return results
