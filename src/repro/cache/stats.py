"""Cache statistics and the traffic metrics the paper reports."""

from dataclasses import dataclass, field


@dataclass
class CacheStats:
    """Everything the experiment harness reads off a simulation.

    Traffic metric definitions:

    * ``refs_cached`` — processor references that go *through* the
      cache (the paper's "memory traffic in data cache"; Figure 5
      reports the reduction of this quantity).
    * ``refs_bypassed`` — references served by the bypass path.
    * ``words_from_memory`` / ``words_to_memory`` — bus traffic between
      cache/processor and main memory, in words.
    """

    refs_total: int = 0
    reads: int = 0
    writes: int = 0
    refs_cached: int = 0
    refs_bypassed: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0
    words_from_memory: int = 0
    words_to_memory: int = 0
    probe_hits: int = 0
    kills: int = 0
    dead_drops: int = 0
    dead_line_frees: int = 0
    # Bypass-path breakdown (refs_bypassed = the sum of these three).
    bypass_read_hits: int = 0
    bypass_reads_from_memory: int = 0
    bypass_writes: int = 0

    @property
    def miss_rate(self):
        """Miss rate of the references that used the cache."""
        if self.refs_cached == 0:
            return 0.0
        return self.misses / self.refs_cached

    @property
    def hit_rate(self):
        if self.refs_cached == 0:
            return 0.0
        return self.hits / self.refs_cached

    @property
    def bus_words(self):
        return self.words_from_memory + self.words_to_memory

    @property
    def percent_bypassed(self):
        if self.refs_total == 0:
            return 0.0
        return 100.0 * self.refs_bypassed / self.refs_total

    def cache_traffic_reduction_vs(self, baseline):
        """Percent reduction of through-cache reference traffic."""
        if baseline.refs_cached == 0:
            return 0.0
        return 100.0 * (1.0 - self.refs_cached / baseline.refs_cached)

    def bus_traffic_reduction_vs(self, baseline):
        """Percent reduction of cache<->memory bus words."""
        if baseline.bus_words == 0:
            return 0.0
        return 100.0 * (1.0 - self.bus_words / baseline.bus_words)

    def as_dict(self):
        return {
            "refs_total": self.refs_total,
            "reads": self.reads,
            "writes": self.writes,
            "refs_cached": self.refs_cached,
            "refs_bypassed": self.refs_bypassed,
            "hits": self.hits,
            "misses": self.misses,
            "miss_rate": round(self.miss_rate, 4),
            "evictions": self.evictions,
            "writebacks": self.writebacks,
            "words_from_memory": self.words_from_memory,
            "words_to_memory": self.words_to_memory,
            "bus_words": self.bus_words,
            "probe_hits": self.probe_hits,
            "kills": self.kills,
            "dead_drops": self.dead_drops,
            "dead_line_frees": self.dead_line_frees,
            "bypass_read_hits": self.bypass_read_hits,
            "bypass_reads_from_memory": self.bypass_reads_from_memory,
            "bypass_writes": self.bypass_writes,
        }


@dataclass
class ComparisonRow:
    """Unified-vs-conventional comparison for one workload."""

    name: str
    unified: CacheStats = field(default=None)
    conventional: CacheStats = field(default=None)

    @property
    def cache_traffic_reduction(self):
        return self.unified.cache_traffic_reduction_vs(self.conventional)

    @property
    def bus_traffic_reduction(self):
        return self.unified.bus_traffic_reduction_vs(self.conventional)
