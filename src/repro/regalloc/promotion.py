"""Scalar promotion (mem2reg) under alias-analysis control.

Only *register-worthy* scalars are ever promoted: locals and parameters
whose address is never observed, as decided by
:meth:`repro.analysis.alias.AliasAnalysis.symbol_is_register_worthy`.
Globals are never promoted — a callee may read or write them — so
every access to an unambiguous global remains a memory reference that
the unified model turns into a cache-bypassing ``UmAm`` operation.

Promotion levels model compiler generations:

* ``none`` — nothing promoted; every variable access is a memory
  reference (think -O0 code).
* ``modest`` — the ``budget`` most-referenced register-worthy scalars
  per function are promoted (Freiburghouse usage counts, loop-depth
  weighted); the 1989-era default used for the paper reproduction.
* ``aggressive`` — every register-worthy scalar is promoted and the
  graph-coloring allocator resolves the pressure (modern compilers).
"""

from enum import Enum, unique

from repro.analysis.usecounts import symbol_use_counts
from repro.ir.instructions import Load, Move, Store, SymMem
from repro.ir.loops import LoopInfo


@unique
class PromotionLevel(Enum):
    NONE = "none"
    MODEST = "modest"
    AGGRESSIVE = "aggressive"

    @classmethod
    def parse(cls, text):
        if isinstance(text, cls):
            return text
        return cls(text)


#: Per-function promotion budget at the MODEST level.
DEFAULT_MODEST_BUDGET = 6


def choose_promotable(function, alias_analysis, level, budget=DEFAULT_MODEST_BUDGET):
    """Pick the set of scalar symbols to promote for one function."""
    level = PromotionLevel.parse(level)
    if level is PromotionLevel.NONE:
        return set()
    worthy = [
        symbol
        for symbol in function.frame._offsets
        if alias_analysis.symbol_is_register_worthy(symbol)
    ]
    if level is PromotionLevel.AGGRESSIVE:
        return set(worthy)
    counts = symbol_use_counts(function, LoopInfo(function))
    worthy.sort(key=lambda symbol: (-counts.get(symbol, 0), symbol.id))
    return set(worthy[:budget])


def promote_scalars(function, symbols):
    """Rewrite loads/stores of ``symbols`` into register moves.

    Each promoted symbol gets one dedicated virtual register; the web
    renaming pass afterwards splits it into per-value webs.  Returns
    ``{symbol: vreg}``.
    """
    if not symbols:
        return {}
    home = {
        symbol: function.new_vreg(symbol.name)
        for symbol in sorted(symbols, key=lambda symbol: symbol.id)
    }
    for block in function.block_list():
        instructions = block.instructions
        for index, instruction in enumerate(instructions):
            if isinstance(instruction, Load) and isinstance(
                instruction.mem, SymMem
            ):
                register = home.get(instruction.mem.symbol)
                if register is not None:
                    instructions[index] = Move(instruction.dest, register)
            elif isinstance(instruction, Store) and isinstance(
                instruction.mem, SymMem
            ):
                register = home.get(instruction.mem.symbol)
                if register is not None:
                    instructions[index] = Move(register, instruction.src)
    return home
