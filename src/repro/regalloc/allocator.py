"""Allocation driver: promote, split into webs, color, spill, finish.

The driver also inserts callee-save/restore code for the callee-saved
registers a function actually uses; those saves are direct, unaliased
frame references — exactly the unambiguous spill-like traffic the paper
routes through the cache-managed path.
"""

from dataclasses import dataclass, field

from repro.analysis.du import rename_webs
from repro.ir.cfg import build_cfg
from repro.ir.instructions import (
    Load,
    PReg,
    RefInfo,
    RefOrigin,
    RegionKind,
    Ret,
    Store,
    SymMem,
)
from repro.ir.validate import verify_function
from repro.regalloc.chaitin import apply_assignment, color_graph
from repro.regalloc.interference import build_interference
from repro.regalloc.promotion import (
    DEFAULT_MODEST_BUDGET,
    PromotionLevel,
    choose_promotable,
    promote_scalars,
)
from repro.regalloc.spill import insert_spill_code

#: Hard cap on color/spill rounds; hitting it indicates a allocator bug.
MAX_ROUNDS = 32


@dataclass
class AllocationStats:
    """What allocation did to one function; consumed by reports/tests."""

    function_name: str
    promotion: PromotionLevel
    promoted_symbols: list = field(default_factory=list)
    rounds: int = 0
    spilled_webs: int = 0
    callee_saved_used: list = field(default_factory=list)
    colored_registers: int = 0


def allocate_function(
    function,
    alias_analysis,
    machine,
    promotion=PromotionLevel.MODEST,
    budget=DEFAULT_MODEST_BUDGET,
):
    """Run the full allocation pipeline on one function."""
    promotion = PromotionLevel.parse(promotion)
    stats = AllocationStats(function.name, promotion)

    promotable = choose_promotable(function, alias_analysis, promotion, budget)
    promote_scalars(function, promotable)
    stats.promoted_symbols = sorted(
        symbol.storage_name() for symbol in promotable
    )
    build_cfg(function)
    rename_webs(function)

    no_spill = set()
    result = None
    while True:
        stats.rounds += 1
        if stats.rounds > MAX_ROUNDS:
            raise AssertionError(
                "register allocation did not converge for {}".format(
                    function.name
                )
            )
        graph = build_interference(function, no_spill)
        result = color_graph(graph, machine)
        if result.success:
            break
        stats.spilled_webs += len(result.spilled)
        no_spill |= insert_spill_code(function, result.spilled)

    apply_assignment(function, result.assignment)
    _remove_identity_moves(function)
    stats.colored_registers = len(result.assignment)

    callee_saved = sorted(
        {
            color
            for color in result.assignment.values()
            if color in machine.callee_saved()
        }
    )
    stats.callee_saved_used = callee_saved
    _insert_callee_saves(function, callee_saved)
    verify_function(function, allocated=True, machine=machine)
    return stats


def _remove_identity_moves(function):
    """Drop ``rN = rN`` moves left behind by the coalescing bias."""
    from repro.ir.instructions import Move

    for block in function.block_list():
        block.instructions = [
            instruction
            for instruction in block.instructions
            if not (
                isinstance(instruction, Move)
                and instruction.dest is instruction.src
            )
        ]


def _insert_callee_saves(function, callee_saved):
    if not callee_saved:
        return
    slots = {
        index: function.new_spill_slot(
            "save_r{}".format(index), RefOrigin.CALLEE_SAVE
        )
        for index in callee_saved
    }

    def save_ref(slot):
        return RefInfo(
            access_path="save:{}".format(slot.storage_name()),
            region_kind=RegionKind.DIRECT,
            region_symbol=slot,
            origin=RefOrigin.CALLEE_SAVE,
        )

    entry = function.entry
    prologue = [
        Store(SymMem(slots[index]), PReg(index), save_ref(slots[index]))
        for index in callee_saved
    ]
    entry.instructions = prologue + entry.instructions

    for block in function.block_list():
        terminator = block.terminator
        if isinstance(terminator, Ret):
            restores = [
                Load(PReg(index), SymMem(slots[index]), save_ref(slots[index]))
                for index in callee_saved
            ]
            block.instructions = (
                block.instructions[:-1] + restores + [terminator]
            )


def allocate_module(
    module,
    alias_analysis,
    machine,
    promotion=PromotionLevel.MODEST,
    budget=DEFAULT_MODEST_BUDGET,
):
    """Allocate every function; returns ``{name: AllocationStats}``."""
    stats = {}
    for function in module.functions.values():
        stats[function.name] = allocate_function(
            function, alias_analysis, machine, promotion, budget
        )
    return stats
