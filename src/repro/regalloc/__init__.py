"""Register allocation: promotion, interference, coloring, spilling.

Two classic allocation policies are provided, matching the two schools
the paper reviews in Section 2.1.2:

* **Chaitin-style graph coloring** over webs (values, not variables),
  with Briggs optimistic spilling — used at promotion level
  ``aggressive``.
* **Freiburghouse usage counts** — promotion level ``modest`` promotes
  only the most-referenced scalars per function (loop-depth weighted),
  approximating 1980s-era allocators.

Spill code follows the unified model's Section 4.2 strategy: spilled
values are stored *through the cache* (``AmSp_STORE``) and the last
reload of a spilled value kills the cached copy.
"""

from repro.regalloc.promotion import PromotionLevel, promote_scalars
from repro.regalloc.interference import InterferenceGraph, build_interference
from repro.regalloc.chaitin import ColoringResult, color_graph
from repro.regalloc.spill import insert_spill_code
from repro.regalloc.allocator import AllocationStats, allocate_function, allocate_module

__all__ = [
    "PromotionLevel",
    "promote_scalars",
    "InterferenceGraph",
    "build_interference",
    "ColoringResult",
    "color_graph",
    "insert_spill_code",
    "AllocationStats",
    "allocate_function",
    "allocate_module",
]
