"""Spill-code insertion.

Spilling a web creates a compiler-private frame slot and the classic
store-after-def / reload-before-use code.  Under the unified model these
references become ``AmSp_STORE`` (through the cache — the paper argues
register spills are precisely what the data cache is *for*) and reloads
whose value is dead afterwards are kill-marked so the cache can free the
line; both annotations are applied later by the bypass pass, which sees
these references' ``RefOrigin.SPILL`` tag.
"""

from repro.ir.instructions import (
    Load,
    RefInfo,
    RefOrigin,
    RegionKind,
    Store,
    SymMem,
)


def _spill_ref(slot):
    return RefInfo(
        access_path="spill:{}".format(slot.storage_name()),
        region_kind=RegionKind.DIRECT,
        region_symbol=slot,
        origin=RefOrigin.SPILL,
    )


def insert_spill_code(function, spilled):
    """Spill each register in ``spilled`` to a fresh frame slot.

    Returns the set of short-range reload/store temporaries created;
    the caller marks them no-spill for subsequent coloring rounds.
    """
    slots = {
        register: function.new_spill_slot(
            "spl_{}".format(register.hint or register.id), RefOrigin.SPILL
        )
        for register in spilled
    }
    spilled_set = set(spilled)
    temps = set()

    for block in function.block_list():
        new_instructions = []
        for instruction in block.instructions:
            used = [
                register
                for register in set(instruction.uses())
                if register in spilled_set
            ]
            defined = [
                register
                for register in set(instruction.defs())
                if register in spilled_set
            ]
            if set(used) & set(defined):
                # rewrite_registers cannot tell use and def positions
                # apart, so this shape would corrupt the rewrite; the
                # IR builder never produces it.
                raise AssertionError(
                    "instruction uses and defines the same spilled register"
                )
            replacement = {}
            for register in used:
                temp = function.new_vreg("ld_" + (register.hint or "t"))
                temps.add(temp)
                replacement[register] = temp
                new_instructions.append(
                    Load(temp, SymMem(slots[register]), _spill_ref(slots[register]))
                )
            if replacement:
                instruction.rewrite_registers(
                    lambda register: replacement.get(register, register)
                )
            stores = []
            for register in defined:
                temp = function.new_vreg("st_" + (register.hint or "t"))
                temps.add(temp)
                replacement = {register: temp}
                instruction.rewrite_registers(
                    lambda register: replacement.get(register, register)
                )
                stores.append(
                    Store(SymMem(slots[register]), temp, _spill_ref(slots[register]))
                )
            new_instructions.append(instruction)
            new_instructions.extend(stores)
        block.instructions = new_instructions
    return temps
