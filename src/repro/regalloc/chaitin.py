"""Chaitin-style graph coloring with Briggs optimistic spilling.

Simplification removes any node with fewer than K still-present
neighbors; when none exists, the cheapest node by ``cost / degree`` is
pushed optimistically.  Color assignment walks the stack backwards,
preferring a move partner's color when legal; nodes that find no color
become actual spills and are reported to the driver for spill-code
insertion and another round.
"""

from repro.ir.instructions import PReg, VReg


class ColoringResult:
    def __init__(self, assignment, spilled):
        #: dict mapping VReg -> physical register index
        self.assignment = assignment
        #: list of VRegs that could not be colored this round
        self.spilled = spilled

    @property
    def success(self):
        return not self.spilled


def color_graph(graph, machine):
    """Color ``graph`` with the machine's registers.

    Returns a :class:`ColoringResult`; ``spilled`` is empty on success.
    """
    num_colors = machine.num_regs
    nodes = graph.vreg_nodes()
    remaining = set(nodes)

    # Degrees count both uncolored vregs still in the graph and
    # precolored physical registers (which never leave).
    def current_degree(node):
        degree = 0
        for neighbor in graph.neighbors(node):
            if isinstance(neighbor, PReg) or neighbor in remaining:
                degree += 1
        return degree

    stack = []
    ordered = sorted(nodes, key=lambda node: node.id)
    while remaining:
        candidate = None
        for node in ordered:
            if node in remaining and current_degree(node) < num_colors:
                candidate = node
                break
        if candidate is None:
            candidate = _pick_spill_candidate(graph, remaining, current_degree)
        stack.append(candidate)
        remaining.discard(candidate)

    assignment = {}
    spilled = []
    while stack:
        node = stack.pop()
        forbidden = set()
        for neighbor in graph.neighbors(node):
            if isinstance(neighbor, PReg):
                forbidden.add(neighbor.index)
            elif neighbor in assignment:
                forbidden.add(assignment[neighbor])
        color = _preferred_color(graph, node, assignment, forbidden, num_colors)
        if color is None:
            spilled.append(node)
        else:
            assignment[node] = color
    return ColoringResult(assignment, spilled)


def _pick_spill_candidate(graph, remaining, current_degree):
    best = None
    best_metric = None
    for node in sorted(remaining, key=lambda node: node.id):
        if node in graph.no_spill:
            continue
        degree = max(current_degree(node), 1)
        metric = graph.costs.get(node, 1) / degree
        if best_metric is None or metric < best_metric:
            best = node
            best_metric = metric
    if best is None:
        # Only no-spill nodes remain; pick the least harmful anyway and
        # hope optimistic coloring succeeds (it essentially always does
        # for the short-range temps we refuse to spill).
        best = min(
            remaining, key=lambda node: (graph.costs.get(node, 1), node.id)
        )
    return best


def _preferred_color(graph, node, assignment, forbidden, num_colors):
    partners = sorted(
        graph.move_pairs.get(node, ()),
        key=lambda reg: (isinstance(reg, VReg), getattr(reg, "index", 0),
                         getattr(reg, "id", 0)),
    )
    for partner in partners:  # Coalescing bias, precolored partners first.
        if isinstance(partner, PReg):
            color = partner.index
        else:
            color = assignment.get(partner)
        if color is not None and color < num_colors and color not in forbidden:
            return color
    for color in range(num_colors):
        if color not in forbidden:
            return color
    return None


def apply_assignment(function, assignment):
    """Rewrite every virtual register to its assigned physical register."""

    def mapping(register):
        if isinstance(register, VReg):
            return PReg(assignment[register])
        return register

    for block in function.block_list():
        for instruction in block.instructions:
            instruction.rewrite_registers(mapping)
