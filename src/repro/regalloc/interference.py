"""Live-range interference graph construction.

Nodes are virtual registers plus the precolored physical registers that
appear at ABI points.  The classic rules apply:

* at every definition, the defined register interferes with everything
  live after the instruction;
* for a register-to-register ``Move``, the source is exempted (the two
  may share a register), and the pair is recorded as move-related so
  the colorer can bias assignments toward coalescing.
"""

from repro.analysis.liveness import compute_liveness
from repro.ir.instructions import Move, PReg, VReg
from repro.ir.loops import LoopInfo


class InterferenceGraph:
    """Adjacency sets over VReg/PReg nodes, plus spill-cost estimates."""

    def __init__(self):
        self.adjacency = {}
        self.move_pairs = {}
        self.costs = {}
        #: Registers that must never be spilled (spill-code temps).
        self.no_spill = set()

    def ensure_node(self, register):
        self.adjacency.setdefault(register, set())

    def add_edge(self, a, b):
        if a is b:
            return
        self.ensure_node(a)
        self.ensure_node(b)
        self.adjacency[a].add(b)
        self.adjacency[b].add(a)

    def add_move(self, a, b):
        if a is b:
            return
        self.move_pairs.setdefault(a, set()).add(b)
        self.move_pairs.setdefault(b, set()).add(a)

    def neighbors(self, register):
        return self.adjacency.get(register, set())

    def vreg_nodes(self):
        return [node for node in self.adjacency if isinstance(node, VReg)]

    def degree(self, register):
        return len(self.adjacency.get(register, ()))


def build_interference(function, no_spill=()):
    """Build the interference graph of ``function``'s current code."""
    graph = InterferenceGraph()
    graph.no_spill = set(no_spill)
    liveness = compute_liveness(function)
    loop_info = LoopInfo(function)

    for block in function.block_list():
        weight = loop_info.weight_of(block.name)
        for _index, instruction, live_after in liveness.walk_block_backward(block):
            defs = instruction.defs()
            uses = instruction.uses()
            for register in defs:
                graph.ensure_node(register)
                graph.costs[register] = graph.costs.get(register, 0) + weight
            for register in uses:
                graph.ensure_node(register)
                graph.costs[register] = graph.costs.get(register, 0) + weight

            move_source = None
            if isinstance(instruction, Move) and isinstance(
                instruction.src, (VReg, PReg)
            ):
                move_source = instruction.src
                graph.add_move(instruction.dest, instruction.src)
            for defined in defs:
                for live in live_after:
                    if live is defined:
                        continue
                    if move_source is not None and live is move_source:
                        continue
                    graph.add_edge(defined, live)
    return graph
