"""Block-local register caching of unambiguous global scalars.

Locals get promoted outright (mem2reg), but a global scalar cannot live
in a register across calls — callees read and write globals.  Within a
basic block, though, the unified model's own alias information proves
much more: an *unambiguous* global (never address-taken, unreachable
through any pointer) can only be touched by this function's direct
references and by calls.  So between calls the value can sit in a
register: repeated loads collapse to register moves and intermediate
stores are deferred to the next barrier (call or block end).

This is the intraprocedural register management the paper assumes when
it claims bypass speeds up total memory access time — Section 4.2 sends
"unambiguous data values" to *register allocation* with cache bypass,
not to a reload-on-every-use code generator.  The pass is optional
(``CompilationOptions.cache_globals_in_blocks``) because the Figure 5
calibration deliberately models 1989-era codegen without it; the
access-time ablation measures what it buys.
"""

from repro.ir.instructions import (
    Call,
    Load,
    Move,
    RefInfo,
    RefOrigin,
    RegionKind,
    Store,
    SymMem,
)


def _is_cacheable_global(symbol, alias_analysis):
    from repro.ir.instructions import RefClass

    if not (symbol.is_global() and symbol.is_scalar()
            and not symbol.is_array()):
        return False
    # Reuse the classification oracle: only provably unambiguous
    # globals may live in a register between barriers.
    return alias_analysis.classify(_fresh_ref(symbol)) is (
        RefClass.UNAMBIGUOUS
    )


def _fresh_ref(symbol):
    return RefInfo(
        access_path=symbol.storage_name(),
        region_kind=RegionKind.DIRECT,
        region_symbol=symbol,
        origin=RefOrigin.USER,
    )


class _BlockState:
    """Register copies of globals within one block."""

    def __init__(self, function):
        self.function = function
        self.held = {}   # symbol -> vreg holding the current value
        self.dirty = {}  # symbol -> vreg whose value memory lacks

    def flush(self, out):
        """Emit the deferred stores, preserving a deterministic order."""
        for symbol, register in sorted(
            self.dirty.items(), key=lambda item: item[0].id
        ):
            out.append(Store(SymMem(symbol), register, _fresh_ref(symbol)))
        self.dirty.clear()

    def invalidate(self):
        self.held.clear()
        self.dirty.clear()


def cache_unambiguous_globals(function, alias_analysis):
    """Run the pass on one function; returns counts for reporting."""
    removed_loads = 0
    deferred_stores = 0
    for block in function.block_list():
        state = _BlockState(function)
        new_instructions = []
        for instruction in block.instructions:
            if isinstance(instruction, Load) and isinstance(
                instruction.mem, SymMem
            ):
                symbol = instruction.mem.symbol
                if _is_cacheable_global(symbol, alias_analysis):
                    held = state.held.get(symbol)
                    if held is not None:
                        new_instructions.append(Move(instruction.dest, held))
                        removed_loads += 1
                    else:
                        new_instructions.append(instruction)
                        state.held[symbol] = instruction.dest
                    continue
            elif isinstance(instruction, Store) and isinstance(
                instruction.mem, SymMem
            ):
                symbol = instruction.mem.symbol
                if _is_cacheable_global(symbol, alias_analysis):
                    # Copy into a fresh single-def register so later
                    # redefinitions of the source cannot corrupt the
                    # deferred store.
                    holder = function.new_vreg("g_" + symbol.name)
                    new_instructions.append(Move(holder, instruction.src))
                    state.held[symbol] = holder
                    if symbol in state.dirty:
                        deferred_stores += 1  # A store was coalesced.
                    state.dirty[symbol] = holder
                    continue
            elif isinstance(instruction, Call):
                # The callee may read or write any global: write ours
                # back first, forget everything afterwards.
                state.flush(new_instructions)
                new_instructions.append(instruction)
                state.invalidate()
                continue
            elif instruction.is_terminator:
                state.flush(new_instructions)
                new_instructions.append(instruction)
                continue
            new_instructions.append(instruction)
        block.instructions = new_instructions
    return {"removed_loads": removed_loads,
            "coalesced_stores": deferred_stores}


def cache_globals_module(module, alias_analysis):
    """Apply the pass to every function; returns per-function counts."""
    return {
        name: cache_unambiguous_globals(function, alias_analysis)
        for name, function in module.functions.items()
    }
