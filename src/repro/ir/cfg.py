"""Control-flow graph construction over the block-structured IR.

The builder already creates basic blocks; this module wires predecessor
and successor lists, prunes unreachable blocks, and provides traversal
orders used by the dataflow framework.
"""

from repro.lang.errors import IRError


def build_cfg(function):
    """(Re)compute ``preds``/``succs`` and drop unreachable blocks.

    Must be called after any pass that adds, removes, or re-targets
    blocks.  Returns the function for chaining.
    """
    blocks = function.blocks
    for block in blocks.values():
        block.preds = []
        block.succs = []
    for block in blocks.values():
        terminator = block.terminator
        if terminator is None:
            raise IRError(
                "block {} of {} lacks a terminator".format(
                    block.name, function.name
                )
            )
        for name in terminator.successors_names():
            successor = blocks.get(name)
            if successor is None:
                raise IRError(
                    "block {} branches to unknown block {}".format(
                        block.name, name
                    )
                )
            block.succs.append(successor)
            successor.preds.append(block)
    _prune_unreachable(function)
    return function


def _prune_unreachable(function):
    reachable = set()
    worklist = [function.entry]
    while worklist:
        block = worklist.pop()
        if block.name in reachable:
            continue
        reachable.add(block.name)
        worklist.extend(block.succs)
    dead = [name for name in function.blocks if name not in reachable]
    if not dead:
        return
    for name in dead:
        del function.blocks[name]
    for block in function.blocks.values():
        block.preds = [pred for pred in block.preds if pred.name in reachable]
        block.succs = [succ for succ in block.succs if succ.name in reachable]


def reverse_postorder(function):
    """Blocks in reverse postorder from the entry (good for forward DFA)."""
    visited = set()
    order = []

    entry = function.entry
    stack = [(entry, iter(entry.succs))]
    visited.add(entry.name)
    while stack:
        block, successors = stack[-1]
        advanced = False
        for successor in successors:
            if successor.name not in visited:
                visited.add(successor.name)
                stack.append((successor, iter(successor.succs)))
                advanced = True
                break
        if not advanced:
            order.append(block)
            stack.pop()
    order.reverse()
    return order


def postorder(function):
    """Blocks in postorder (good for backward dataflow)."""
    order = reverse_postorder(function)
    order.reverse()
    return order
