"""Human-readable IR dumps for debugging, examples, and golden tests."""


def format_instruction(instruction):
    return repr(instruction)


def format_block(block):
    lines = ["{}:".format(block.name)]
    for instruction in block.instructions:
        lines.append("    {}".format(format_instruction(instruction)))
    return "\n".join(lines)


def format_function(function):
    params = ", ".join(symbol.name for symbol in function.params)
    lines = [
        "func {}({}) frame={} words".format(
            function.name, params, function.frame.size
        )
    ]
    for block in function.blocks.values():
        lines.append(format_block(block))
    return "\n".join(lines)


def format_module(module):
    parts = []
    if module.globals:
        names = ", ".join(
            "{}@{}".format(symbol.storage_name(), symbol.global_address)
            for symbol in module.globals
        )
        parts.append("globals: {}".format(names))
    for function in module.functions.values():
        parts.append(format_function(function))
    return "\n\n".join(parts)
