"""IR operands, reference metadata, and instruction classes."""

import itertools
from dataclasses import dataclass
from enum import Enum, unique


# ----------------------------------------------------------------------
# Machine model.
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class MachineConfig:
    """A MIPS-flavoured load/store register machine.

    Sixteen one-word registers; ``r0``-``r3`` pass arguments and ``r0``
    returns the result.  ``r0``-``r7`` are caller-saved (clobbered by
    calls), ``r8``-``r15`` are callee-saved.
    """

    num_regs: int = 16
    num_arg_regs: int = 4
    ret_reg: int = 0
    num_caller_saved: int = 8

    def arg_regs(self):
        return tuple(range(self.num_arg_regs))

    def caller_saved(self):
        return tuple(range(self.num_caller_saved))

    def callee_saved(self):
        return tuple(range(self.num_caller_saved, self.num_regs))

    def all_regs(self):
        return tuple(range(self.num_regs))


#: The default machine used everywhere unless a pipeline overrides it.
MACHINE = MachineConfig()


# ----------------------------------------------------------------------
# Operands.
# ----------------------------------------------------------------------

_vreg_ids = itertools.count(1)


class VReg:
    """A virtual register; unbounded supply before allocation."""

    __slots__ = ("id", "hint")

    def __init__(self, hint=""):
        self.id = next(_vreg_ids)
        self.hint = hint

    def __repr__(self):
        if self.hint:
            return "v{}:{}".format(self.id, self.hint)
        return "v{}".format(self.id)

    def __hash__(self):
        return self.id

    def __eq__(self, other):
        return self is other


class PReg:
    """A physical machine register.  Interned: ``PReg(3) is PReg(3)``."""

    __slots__ = ("index",)
    _interned = {}

    def __new__(cls, index):
        reg = cls._interned.get(index)
        if reg is None:
            reg = super().__new__(cls)
            reg.index = index
            cls._interned[index] = reg
        return reg

    def __repr__(self):
        return "r{}".format(self.index)

    def __hash__(self):
        return hash(("preg", self.index))

    def __eq__(self, other):
        return self is other

    def __getnewargs__(self):
        return (self.index,)


@dataclass(frozen=True)
class Imm:
    """An immediate integer operand."""

    value: int

    def __repr__(self):
        return "#{}".format(self.value)


def is_reg(operand):
    """True when ``operand`` is a register (virtual or physical)."""
    return isinstance(operand, (VReg, PReg))


# ----------------------------------------------------------------------
# Memory operands.
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SymMem:
    """Direct access to a named scalar (frame slot or global word).

    The concrete address is resolved at run time from the frame pointer
    (locals/params/spills) or the global segment base.
    """

    symbol: object  # repro.lang.symbols.Symbol or repro.ir.function.SpillSlot

    def __repr__(self):
        return "[{}]".format(self.symbol.storage_name())


@dataclass(frozen=True)
class RegMem:
    """Access through a computed address held in a register."""

    addr: object  # VReg or PReg

    def __repr__(self):
        return "[{}]".format(self.addr)


# ----------------------------------------------------------------------
# Reference metadata (the paper's annotations live here).
# ----------------------------------------------------------------------


@unique
class RefClass(Enum):
    """Ambiguity classification of a memory reference (paper Section 4)."""

    UNKNOWN = "unknown"
    AMBIGUOUS = "ambiguous"
    UNAMBIGUOUS = "unambiguous"


@unique
class RefFlavor(Enum):
    """The four load/store flavors of the unified model (paper §4.3)."""

    AM_LOAD = "Am_LOAD"
    AMSP_STORE = "AmSp_STORE"
    UMAM_LOAD = "UmAm_LOAD"
    UMAM_STORE = "UmAm_STORE"


@unique
class RefOrigin(Enum):
    """Why this load/store exists; used for reporting, not semantics."""

    USER = "user"  # A source-level variable/array/pointer access.
    SPILL = "spill"  # Register-allocator spill store/reload.
    CALLEE_SAVE = "callee_save"  # Prologue/epilogue register save/restore.
    ARG_HOME = "arg_home"  # Incoming argument stored to its home slot.


@unique
class RegionKind(Enum):
    """What storage a reference may touch; input to the alias analysis."""

    DIRECT = "direct"  # A specific scalar symbol, accessed by name.
    ARRAY = "array"  # Some element of a specific array symbol.
    POINTER = "pointer"  # Whatever a named pointer symbol may target.
    UNKNOWN = "unknown"  # A computed pointer with no symbol attached.


@dataclass
class RefInfo:
    """Everything the unified model knows about one memory reference.

    ``region_kind``/``region_symbol`` say *what* may be touched (filled
    by the IR builder), ``ref_class`` says whether that is ambiguous
    (filled by the alias/classification pass), and ``flavor``/``bypass``
    /``kill`` are the hardware-visible annotations (filled by the bypass
    annotation pass).  In the conventional baseline the annotation pass
    is skipped and every reference goes through the cache.
    """

    access_path: str
    region_kind: RegionKind
    region_symbol: object = None
    origin: RefOrigin = RefOrigin.USER
    ref_class: RefClass = RefClass.UNKNOWN
    flavor: object = None  # RefFlavor once annotated.
    bypass: bool = False
    kill: bool = False

    def annotate(self, flavor, bypass, kill=False):
        self.flavor = flavor
        self.bypass = bypass
        self.kill = kill

    def describe(self):
        parts = [self.access_path, self.ref_class.value]
        if self.flavor is not None:
            parts.append(self.flavor.value)
        if self.bypass:
            parts.append("bypass")
        if self.kill:
            parts.append("kill")
        return " ".join(parts)


# ----------------------------------------------------------------------
# Instructions.
# ----------------------------------------------------------------------


class Instruction:
    """Base class.  Subclasses define ``uses``/``defs`` over registers."""

    __slots__ = ()
    is_terminator = False

    def uses(self):
        """Registers read by this instruction."""
        return []

    def defs(self):
        """Registers written by this instruction."""
        return []

    def rewrite_registers(self, mapping):
        """Replace register operands via ``mapping(reg) -> reg``."""

    def successors_names(self):
        """Block names this terminator may branch to."""
        return []


def _mapped(mapping, operand):
    if is_reg(operand):
        return mapping(operand)
    return operand


class Move(Instruction):
    """``dest = src`` where src is a register or immediate."""

    __slots__ = ("dest", "src")

    def __init__(self, dest, src):
        self.dest = dest
        self.src = src

    def uses(self):
        return [self.src] if is_reg(self.src) else []

    def defs(self):
        return [self.dest]

    def rewrite_registers(self, mapping):
        self.dest = mapping(self.dest)
        self.src = _mapped(mapping, self.src)

    def __repr__(self):
        return "{} = {}".format(self.dest, self.src)


#: Binary opcodes; all operate on one-word integers.
BINARY_OPS = ("add", "sub", "mul", "div", "mod",
              "eq", "ne", "lt", "le", "gt", "ge")


class BinOp(Instruction):
    __slots__ = ("dest", "op", "left", "right")

    def __init__(self, dest, op, left, right):
        assert op in BINARY_OPS, op
        self.dest = dest
        self.op = op
        self.left = left
        self.right = right

    def uses(self):
        return [operand for operand in (self.left, self.right) if is_reg(operand)]

    def defs(self):
        return [self.dest]

    def rewrite_registers(self, mapping):
        self.dest = mapping(self.dest)
        self.left = _mapped(mapping, self.left)
        self.right = _mapped(mapping, self.right)

    def __repr__(self):
        return "{} = {} {} {}".format(self.dest, self.left, self.op, self.right)


UNARY_OPS = ("neg", "not")


class UnOp(Instruction):
    __slots__ = ("dest", "op", "operand")

    def __init__(self, dest, op, operand):
        assert op in UNARY_OPS, op
        self.dest = dest
        self.op = op
        self.operand = operand

    def uses(self):
        return [self.operand] if is_reg(self.operand) else []

    def defs(self):
        return [self.dest]

    def rewrite_registers(self, mapping):
        self.dest = mapping(self.dest)
        self.operand = _mapped(mapping, self.operand)

    def __repr__(self):
        return "{} = {} {}".format(self.dest, self.op, self.operand)


class Load(Instruction):
    """``dest = MEM[mem]`` carrying the unified-model annotations."""

    __slots__ = ("dest", "mem", "ref")

    def __init__(self, dest, mem, ref):
        self.dest = dest
        self.mem = mem
        self.ref = ref

    def uses(self):
        if isinstance(self.mem, RegMem):
            return [self.mem.addr]
        return []

    def defs(self):
        return [self.dest]

    def rewrite_registers(self, mapping):
        self.dest = mapping(self.dest)
        if isinstance(self.mem, RegMem):
            self.mem = RegMem(mapping(self.mem.addr))

    def __repr__(self):
        return "{} = load {} ; {}".format(self.dest, self.mem, self.ref.describe())


class Store(Instruction):
    """``MEM[mem] = src`` carrying the unified-model annotations."""

    __slots__ = ("mem", "src", "ref")

    def __init__(self, mem, src, ref):
        self.mem = mem
        self.src = src
        self.ref = ref

    def uses(self):
        result = [self.src] if is_reg(self.src) else []
        if isinstance(self.mem, RegMem):
            result.append(self.mem.addr)
        return result

    def defs(self):
        return []

    def rewrite_registers(self, mapping):
        self.src = _mapped(mapping, self.src)
        if isinstance(self.mem, RegMem):
            self.mem = RegMem(mapping(self.mem.addr))

    def __repr__(self):
        return "store {} = {} ; {}".format(self.mem, self.src, self.ref.describe())


class AddrOfSym(Instruction):
    """``dest = &symbol`` — materialise a frame or global address."""

    __slots__ = ("dest", "symbol")

    def __init__(self, dest, symbol):
        self.dest = dest
        self.symbol = symbol

    def defs(self):
        return [self.dest]

    def rewrite_registers(self, mapping):
        self.dest = mapping(self.dest)

    def __repr__(self):
        return "{} = &{}".format(self.dest, self.symbol.storage_name())


class Call(Instruction):
    """A call after ABI lowering: arguments already sit in ``r0..rN-1``.

    The call reads the argument registers, clobbers every caller-saved
    register, and leaves any result in the return register.
    """

    __slots__ = ("callee", "num_args", "returns_value", "machine")

    def __init__(self, callee, num_args, returns_value, machine=MACHINE):
        self.callee = callee
        self.num_args = num_args
        self.returns_value = returns_value
        self.machine = machine

    def uses(self):
        return [PReg(i) for i in range(self.num_args)]

    def defs(self):
        return [PReg(i) for i in self.machine.caller_saved()]

    def __repr__(self):
        return "call {}/{}".format(self.callee, self.num_args)


class Print(Instruction):
    """The ``print`` intrinsic; writes one integer to the program output."""

    __slots__ = ("src",)

    def __init__(self, src):
        self.src = src

    def uses(self):
        return [self.src] if is_reg(self.src) else []

    def rewrite_registers(self, mapping):
        self.src = _mapped(mapping, self.src)

    def __repr__(self):
        return "print {}".format(self.src)


# ----------------------------------------------------------------------
# Terminators.
# ----------------------------------------------------------------------


class Jump(Instruction):
    __slots__ = ("target",)
    is_terminator = True

    def __init__(self, target):
        self.target = target  # block name

    def successors_names(self):
        return [self.target]

    def __repr__(self):
        return "jump {}".format(self.target)


class CJump(Instruction):
    """Branch to ``if_true`` when ``cond`` is non-zero, else ``if_false``."""

    __slots__ = ("cond", "if_true", "if_false")
    is_terminator = True

    def __init__(self, cond, if_true, if_false):
        self.cond = cond
        self.if_true = if_true
        self.if_false = if_false

    def uses(self):
        return [self.cond] if is_reg(self.cond) else []

    def rewrite_registers(self, mapping):
        self.cond = _mapped(mapping, self.cond)

    def successors_names(self):
        return [self.if_true, self.if_false]

    def __repr__(self):
        return "cjump {} ? {} : {}".format(self.cond, self.if_true, self.if_false)


class Ret(Instruction):
    """Return; a value-returning function has already moved into r0."""

    __slots__ = ("has_value", "machine")
    is_terminator = True

    def __init__(self, has_value, machine=MACHINE):
        self.has_value = has_value
        self.machine = machine

    def uses(self):
        if self.has_value:
            return [PReg(self.machine.ret_reg)]
        return []

    def __repr__(self):
        return "ret" + (" r0" if self.has_value else "")
