"""Three-address intermediate representation.

The IR is a conventional load/store TAC over an unbounded set of virtual
registers, organised into basic blocks with explicit terminators.
Physical registers (:class:`PReg`) appear in the instruction stream only
at ABI points (argument passing, return values, call clobbers) until the
register allocator rewrites everything to physical registers.

Every memory-touching instruction (:class:`Load` / :class:`Store`)
carries a :class:`RefInfo` describing *what* is referenced; the unified
management model of the paper is implemented as annotations on those
records (ambiguity class, load/store flavor, bypass and kill bits).
"""

from repro.ir.instructions import (
    MACHINE,
    AddrOfSym,
    BinOp,
    Call,
    CJump,
    Imm,
    Jump,
    Load,
    MachineConfig,
    Move,
    PReg,
    Print,
    RefClass,
    RefFlavor,
    RefInfo,
    RefOrigin,
    RegMem,
    Ret,
    Store,
    SymMem,
    UnOp,
    VReg,
)
from repro.ir.function import BasicBlock, FrameLayout, IRFunction, IRModule
from repro.ir.builder import build_module
from repro.ir.printer import format_function, format_instruction, format_module
from repro.ir.validate import verify_function, verify_module

__all__ = [
    "MACHINE",
    "MachineConfig",
    "VReg",
    "PReg",
    "Imm",
    "SymMem",
    "RegMem",
    "RefInfo",
    "RefClass",
    "RefFlavor",
    "RefOrigin",
    "Move",
    "BinOp",
    "UnOp",
    "Load",
    "Store",
    "AddrOfSym",
    "Call",
    "Print",
    "Jump",
    "CJump",
    "Ret",
    "BasicBlock",
    "IRFunction",
    "IRModule",
    "FrameLayout",
    "build_module",
    "format_module",
    "format_function",
    "format_instruction",
    "verify_module",
    "verify_function",
]
