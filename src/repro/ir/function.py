"""IR containers: basic blocks, frames, functions, modules."""

import itertools
from collections import OrderedDict

from repro.ir.instructions import VReg

#: Word address where the global data segment starts.  Addresses below
#: this are unmapped, which catches null-pointer dereferences.
GLOBAL_BASE = 1024

_spill_ids = itertools.count(1)


class SpillSlot:
    """A compiler-created frame slot (spill temporary or callee save).

    Duck-types the parts of :class:`repro.lang.symbols.Symbol` that the
    classification pass and the VM care about.
    """

    def __init__(self, name, origin):
        self.id = next(_spill_ids)
        self.name = name
        self.origin = origin
        self.address_taken = False
        self.escapes = False
        self.frame_slot = None
        self.global_address = None
        self.kind = None  # Not a source symbol.

    def is_array(self):
        return False

    def is_scalar(self):
        return True

    def is_global(self):
        return False

    def storage_name(self):
        return "{}#s{}".format(self.name, self.id)

    def __repr__(self):
        return "SpillSlot({})".format(self.storage_name())


class FrameLayout:
    """Word offsets of every frame-resident object of one function."""

    def __init__(self):
        self._offsets = {}
        self._sizes = {}
        self.size = 0

    def add(self, symbol, words=None):
        """Reserve ``words`` (default: the symbol's own size) for ``symbol``."""
        if symbol in self._offsets:
            return self._offsets[symbol]
        if words is None:
            if symbol.is_array():
                words = symbol.type.size_words()
            else:
                words = 1
        offset = self.size
        self._offsets[symbol] = offset
        self._sizes[symbol] = words
        self.size += words
        return offset

    def offset_of(self, symbol):
        return self._offsets[symbol]

    def contains(self, symbol):
        return symbol in self._offsets

    def items(self):
        return sorted(self._offsets.items(), key=lambda pair: pair[1])


class BasicBlock:
    """A straight-line instruction sequence ending in one terminator."""

    def __init__(self, name):
        self.name = name
        self.instructions = []
        # Filled by repro.ir.cfg.
        self.preds = []
        self.succs = []
        # Text-segment address of the first instruction; assigned by
        # the VM's code layout when instruction fetches are traced.
        self.code_address = 0

    @property
    def terminator(self):
        if self.instructions and self.instructions[-1].is_terminator:
            return self.instructions[-1]
        return None

    def body(self):
        """Instructions excluding the terminator."""
        if self.terminator is not None:
            return self.instructions[:-1]
        return list(self.instructions)

    def append(self, instruction):
        self.instructions.append(instruction)

    def __repr__(self):
        return "BasicBlock({}, {} insts)".format(self.name, len(self.instructions))


class IRFunction:
    """One function's IR: blocks, frame, and virtual-register factory."""

    def __init__(self, name, symbol, params, return_type):
        self.name = name
        self.symbol = symbol
        self.params = params  # list[Symbol] in declaration order
        self.return_type = return_type
        self.blocks = OrderedDict()
        self.entry_name = None
        self.frame = FrameLayout()
        self._block_ids = itertools.count(0)

    def new_vreg(self, hint=""):
        return VReg(hint)

    def new_block(self, prefix="L"):
        name = "{}{}".format(prefix, next(self._block_ids))
        block = BasicBlock(name)
        self.blocks[name] = block
        if self.entry_name is None:
            self.entry_name = name
        return block

    @property
    def entry(self):
        return self.blocks[self.entry_name]

    def block_list(self):
        return list(self.blocks.values())

    def instructions(self):
        """Iterate every instruction of the function, block by block."""
        for block in self.blocks.values():
            for instruction in block.instructions:
                yield instruction

    def new_spill_slot(self, name, origin):
        slot = SpillSlot(name, origin)
        self.frame.add(slot, words=1)
        return slot

    def __repr__(self):
        return "IRFunction({}, {} blocks)".format(self.name, len(self.blocks))


class IRModule:
    """A compiled translation unit: functions plus the global segment."""

    def __init__(self, analyzed):
        self.analyzed = analyzed
        self.functions = OrderedDict()
        self.globals = list(analyzed.globals)
        self.global_inits = {}
        self.global_size = 0
        self._layout_globals()

    def _layout_globals(self):
        address = GLOBAL_BASE
        for symbol in self.globals:
            symbol.global_address = address
            if symbol.is_array():
                address += symbol.type.size_words()
            else:
                address += 1
        self.global_size = address - GLOBAL_BASE

    def add_function(self, function):
        self.functions[function.name] = function

    def function(self, name):
        return self.functions[name]

    def __repr__(self):
        return "IRModule({} functions, {} global words)".format(
            len(self.functions), self.global_size
        )
