"""Natural-loop detection and per-block loop depth.

Loop depth drives the usage-count weights of the Freiburghouse allocator
and the spill-cost heuristic of the Chaitin allocator: a reference at
loop depth ``d`` is weighted ``10**d``, the classic approximation.
"""

from repro.ir.dominators import DominatorTree


class NaturalLoop:
    """One natural loop: a back edge's header plus its body blocks."""

    def __init__(self, header_name):
        self.header = header_name
        self.body = {header_name}

    def __repr__(self):
        return "NaturalLoop(header={}, blocks={})".format(
            self.header, len(self.body)
        )


class LoopInfo:
    """All natural loops of a function and the nesting depth per block."""

    def __init__(self, function):
        self.function = function
        self.loops = []
        self.depth = {name: 0 for name in function.blocks}
        self._compute()

    def _compute(self):
        dom = DominatorTree(self.function)
        loops_by_header = {}
        for block in self.function.blocks.values():
            for successor in block.succs:
                if dom.dominates(successor.name, block.name):
                    loop = loops_by_header.get(successor.name)
                    if loop is None:
                        loop = NaturalLoop(successor.name)
                        loops_by_header[successor.name] = loop
                        self.loops.append(loop)
                    self._collect(loop, block.name)
        for name in self.depth:
            self.depth[name] = sum(
                1 for loop in self.loops if name in loop.body
            )

    def _collect(self, loop, tail_name):
        """Add every block reaching ``tail_name`` without passing the header."""
        worklist = [tail_name]
        while worklist:
            name = worklist.pop()
            if name in loop.body:
                continue
            loop.body.add(name)
            block = self.function.blocks[name]
            worklist.extend(pred.name for pred in block.preds)

    def depth_of(self, block_name):
        return self.depth.get(block_name, 0)

    def weight_of(self, block_name, base=10):
        """Execution-frequency estimate for spill costs and usage counts."""
        return base ** min(self.depth_of(block_name), 6)
