"""Structural IR verification.

Run after construction and after every rewriting pass; catching a broken
invariant here is vastly cheaper than debugging a miscompiled benchmark
inside the VM.
"""

from repro.lang.errors import IRError
from repro.ir.instructions import (
    Load,
    PReg,
    RefClass,
    RefFlavor,
    RegMem,
    Store,
    SymMem,
    VReg,
)


def verify_function(function, allocated=False, machine=None):
    """Check block structure and operand sanity for one function.

    With ``allocated=True`` additionally require that no virtual
    registers remain and that every physical register index is valid.
    """
    if function.entry_name not in function.blocks:
        raise IRError("function {} lost its entry block".format(function.name))
    seen_names = set()
    for name, block in function.blocks.items():
        if name != block.name:
            raise IRError("block map key {} != block name {}".format(name, block.name))
        if name in seen_names:
            raise IRError("duplicate block name {}".format(name))
        seen_names.add(name)
        _verify_block(function, block, allocated, machine)


def _verify_block(function, block, allocated, machine):
    if not block.instructions:
        raise IRError(
            "empty block {} in {}".format(block.name, function.name)
        )
    for index, instruction in enumerate(block.instructions):
        is_last = index == len(block.instructions) - 1
        if instruction.is_terminator and not is_last:
            raise IRError(
                "terminator in the middle of block {} of {}".format(
                    block.name, function.name
                )
            )
        if is_last and not instruction.is_terminator:
            raise IRError(
                "block {} of {} does not end in a terminator".format(
                    block.name, function.name
                )
            )
        for name in instruction.successors_names():
            if name not in function.blocks:
                raise IRError(
                    "branch to unknown block {} from {}".format(name, block.name)
                )
        _verify_operands(function, instruction, allocated, machine)
        _verify_memory(function, instruction)


def _verify_operands(function, instruction, allocated, machine):
    registers = list(instruction.uses()) + list(instruction.defs())
    for register in registers:
        if isinstance(register, VReg):
            if allocated:
                raise IRError(
                    "virtual register {} survived allocation in {}".format(
                        register, function.name
                    )
                )
        elif isinstance(register, PReg):
            if machine is not None and register.index >= machine.num_regs:
                raise IRError(
                    "physical register {} out of range in {}".format(
                        register, function.name
                    )
                )
        else:
            raise IRError(
                "non-register in register position: {!r}".format(register)
            )


def _verify_memory(function, instruction):
    if not isinstance(instruction, (Load, Store)):
        return
    mem = instruction.mem
    if isinstance(mem, SymMem):
        symbol = mem.symbol
        if symbol.is_array():
            raise IRError(
                "direct SymMem access to array {}".format(symbol.storage_name())
            )
        if not symbol.is_global() and not function.frame.contains(symbol):
            raise IRError(
                "SymMem {} has no frame slot in {}".format(
                    symbol.storage_name(), function.name
                )
            )
    elif not isinstance(mem, RegMem):
        raise IRError("unknown memory operand {!r}".format(mem))
    if instruction.ref is None:
        raise IRError("memory instruction without RefInfo")


def verify_module(module, allocated=False, machine=None):
    for function in module.functions.values():
        verify_function(function, allocated, machine)


def verify_annotations(module):
    """Check the unified-model discipline after the bypass pass ran.

    Every reference must be classified and carry a flavor, and the
    flavor/bypass/kill triple must be internally coherent:

    * the ``UmAm_*`` flavors are exactly the bypassed references, the
      ``Am_*`` flavors exactly the through-cache ones;
    * loads carry load flavors and stores store flavors;
    * a bypassed reference must be unambiguous (bypassing an
      ambiguous word breaks coherence with its aliases);
    * kill bits appear only on direct scalar loads — a store
      creates a live value, an indirect reference has no stable
      location to declare dead, and a bypassed *store* has no line to
      kill.

    A deeper semantic audit (is every kill really a last use?) lives
    in :mod:`repro.staticcheck.linter`; this pass is the cheap
    structural gate the pipeline runs on every compile.
    """
    for function in module.functions.values():
        for instruction in function.instructions():
            if not isinstance(instruction, (Load, Store)):
                continue
            ref = instruction.ref

            def bad(message):
                return IRError(
                    "{} {} in {}".format(message, ref.access_path,
                                         function.name)
                )

            if ref.ref_class is RefClass.UNKNOWN:
                raise bad("unclassified reference")
            if ref.flavor is None:
                raise bad("flavor missing on reference")
            is_store = isinstance(instruction, Store)
            expected = {
                (False, False): RefFlavor.AM_LOAD,
                (False, True): RefFlavor.AMSP_STORE,
                (True, False): RefFlavor.UMAM_LOAD,
                (True, True): RefFlavor.UMAM_STORE,
            }[(bool(ref.bypass), is_store)]
            if ref.flavor is not expected:
                raise bad(
                    "flavor {} inconsistent with bypass={} on {}".format(
                        ref.flavor.value,
                        ref.bypass,
                        "store" if is_store else "load",
                    )
                )
            if ref.bypass and ref.ref_class is not RefClass.UNAMBIGUOUS:
                raise bad("bypass on ambiguous reference")
            if ref.kill:
                if is_store:
                    raise bad("kill bit on store")
                if not isinstance(instruction.mem, SymMem):
                    raise bad("kill bit on indirect load")
