"""AST-to-IR lowering.

The builder produces *memory-resident* code: every source-level variable
access becomes an explicit :class:`Load`/:class:`Store` against the
variable's home location (frame slot or global word), and expression
temporaries live in virtual registers.  This mirrors unoptimised
load/store-machine code; the promotion pass (:mod:`repro.regalloc`)
later rewrites register-worthy accesses, which is exactly the division
of labour the paper assumes (registers for unambiguous values, cache
for the rest).

ABI points are lowered here as well: incoming arguments are copied from
``r0..r3`` to home slots, call arguments are moved into ``r0..r3`` just
before the call, and return values travel through ``r0``.
"""

from repro.lang import ast_nodes as ast
from repro.lang.errors import IRError
from repro.ir.function import IRFunction, IRModule
from repro.ir.instructions import (
    MACHINE,
    AddrOfSym,
    BinOp,
    Call,
    CJump,
    Imm,
    Jump,
    Load,
    Move,
    PReg,
    Print,
    RefInfo,
    RefOrigin,
    RegionKind,
    RegMem,
    Ret,
    Store,
    SymMem,
    UnOp,
)

#: AST comparison/arithmetic operator -> IR opcode.
_BINOP_CODES = {
    "+": "add",
    "-": "sub",
    "*": "mul",
    "/": "div",
    "%": "mod",
    "==": "eq",
    "!=": "ne",
    "<": "lt",
    "<=": "le",
    ">": "gt",
    ">=": "ge",
}

_COMPARISONS = ("==", "!=", "<", "<=", ">", ">=")


def build_module(analyzed, machine=MACHINE):
    """Lower an :class:`AnalyzedProgram` into an :class:`IRModule`."""
    module = IRModule(analyzed)
    for decl in analyzed.program.globals():
        module.global_inits[decl.symbol] = getattr(decl, "const_init", 0)
    for func in analyzed.program.functions():
        builder = FunctionBuilder(module, func, machine)
        module.add_function(builder.build())
    return module


class _LoopContext:
    """Targets for ``break`` and ``continue`` inside one loop."""

    def __init__(self, break_name, continue_name):
        self.break_name = break_name
        self.continue_name = continue_name


class FunctionBuilder:
    """Lowers one function definition."""

    def __init__(self, module, func_def, machine=MACHINE):
        self.module = module
        self.func_def = func_def
        self.machine = machine
        params = [param.symbol for param in func_def.params]
        self.function = IRFunction(
            func_def.name, func_def.symbol, params, func_def.return_type
        )
        self.current = None
        self.loop_stack = []

    # ------------------------------------------------------------------
    # Emission helpers.
    # ------------------------------------------------------------------

    def emit(self, instruction):
        self.current.append(instruction)
        return instruction

    def terminate(self, instruction):
        if self.current.terminator is None:
            self.current.append(instruction)

    def start_block(self, block):
        self.current = block

    def new_block(self):
        return self.function.new_block()

    # ------------------------------------------------------------------
    # Reference metadata.
    # ------------------------------------------------------------------

    def _direct_ref(self, symbol, origin=RefOrigin.USER):
        return RefInfo(
            access_path=symbol.storage_name(),
            region_kind=RegionKind.DIRECT,
            region_symbol=symbol,
            origin=origin,
        )

    def _array_ref(self, symbol):
        return RefInfo(
            access_path="{}[*]".format(symbol.storage_name()),
            region_kind=RegionKind.ARRAY,
            region_symbol=symbol,
        )

    def _pointer_ref(self, pointer_symbol):
        if pointer_symbol is None:
            return RefInfo(
                access_path="*<computed>",
                region_kind=RegionKind.UNKNOWN,
            )
        return RefInfo(
            access_path="*{}".format(pointer_symbol.storage_name()),
            region_kind=RegionKind.POINTER,
            region_symbol=pointer_symbol,
        )

    @staticmethod
    def _pointer_root(expr):
        """The array or pointer symbol an address expression stems from.

        Returns ``None`` when the root cannot be pinned to one symbol;
        the reference is then classified fully ambiguous.
        """
        if isinstance(expr, ast.VarRef):
            if expr.type is not None and (
                expr.type.is_pointer() or expr.type.is_array()
            ):
                return expr.symbol
            return None
        if isinstance(expr, ast.Binary) and expr.op in ("+", "-"):
            left = FunctionBuilder._pointer_root(expr.left)
            if left is not None:
                return left
            return FunctionBuilder._pointer_root(expr.right)
        if isinstance(expr, ast.AddrOf) and isinstance(expr.operand, ast.VarRef):
            return expr.operand.symbol
        return None

    def _ref_for_address_expr(self, expr):
        """RefInfo for a load/store through the address of ``expr``."""
        root = self._pointer_root(expr)
        if root is not None and root.is_array():
            return self._array_ref(root)
        return self._pointer_ref(root)

    # ------------------------------------------------------------------
    # Entry point.
    # ------------------------------------------------------------------

    def build(self):
        entry = self.function.new_block("entry")
        self.start_block(entry)
        self._store_incoming_args()
        self._build_statement(self.func_def.body)
        self._finish_function()
        return self.function

    def _store_incoming_args(self):
        for index, symbol in enumerate(self.function.params):
            self.function.frame.add(symbol)
            temp = self.function.new_vreg("arg_" + symbol.name)
            self.emit(Move(temp, PReg(index)))
            ref = self._direct_ref(symbol, RefOrigin.ARG_HOME)
            self.emit(Store(SymMem(symbol), temp, ref))

    def _finish_function(self):
        for block in self.function.block_list():
            if block.terminator is None:
                saved = self.current
                self.current = block
                if self.function.return_type.is_void():
                    self.terminate(Ret(False, self.machine))
                else:
                    self.emit(Move(PReg(self.machine.ret_reg), Imm(0)))
                    self.terminate(Ret(True, self.machine))
                self.current = saved

    # ------------------------------------------------------------------
    # Statements.
    # ------------------------------------------------------------------

    def _build_statement(self, stmt):
        if self.current.terminator is not None:
            # Dead code after break/continue/return: keep it in an
            # unreachable block so later passes can prune it.
            self.start_block(self.new_block())
        if isinstance(stmt, ast.Block):
            for inner in stmt.statements:
                self._build_statement(inner)
        elif isinstance(stmt, ast.DeclStmt):
            for decl in stmt.decls:
                self._build_local_decl(decl)
        elif isinstance(stmt, ast.ExprStmt):
            self._build_expr(stmt.expr)
        elif isinstance(stmt, ast.If):
            self._build_if(stmt)
        elif isinstance(stmt, ast.While):
            self._build_while(stmt)
        elif isinstance(stmt, ast.DoWhile):
            self._build_do_while(stmt)
        elif isinstance(stmt, ast.For):
            self._build_for(stmt)
        elif isinstance(stmt, ast.Return):
            self._build_return(stmt)
        elif isinstance(stmt, ast.Break):
            self.terminate(Jump(self.loop_stack[-1].break_name))
        elif isinstance(stmt, ast.Continue):
            self.terminate(Jump(self.loop_stack[-1].continue_name))
        else:
            raise IRError(
                "cannot lower statement {}".format(type(stmt).__name__),
                stmt.location,
            )

    def _build_local_decl(self, decl):
        symbol = decl.symbol
        self.function.frame.add(symbol)
        if decl.init is not None:
            value = self._build_expr(decl.init)
            self.emit(Store(SymMem(symbol), value, self._direct_ref(symbol)))

    def _build_if(self, stmt):
        then_block = self.new_block()
        join_block = self.new_block()
        if stmt.else_branch is not None:
            else_block = self.new_block()
        else:
            else_block = join_block
        self._build_cond(stmt.cond, then_block.name, else_block.name)
        self.start_block(then_block)
        self._build_statement(stmt.then_branch)
        self.terminate(Jump(join_block.name))
        if stmt.else_branch is not None:
            self.start_block(else_block)
            self._build_statement(stmt.else_branch)
            self.terminate(Jump(join_block.name))
        self.start_block(join_block)

    def _build_while(self, stmt):
        head = self.new_block()
        body = self.new_block()
        exit_block = self.new_block()
        self.terminate(Jump(head.name))
        self.start_block(head)
        self._build_cond(stmt.cond, body.name, exit_block.name)
        self.loop_stack.append(_LoopContext(exit_block.name, head.name))
        self.start_block(body)
        self._build_statement(stmt.body)
        self.terminate(Jump(head.name))
        self.loop_stack.pop()
        self.start_block(exit_block)

    def _build_do_while(self, stmt):
        body = self.new_block()
        head = self.new_block()
        exit_block = self.new_block()
        self.terminate(Jump(body.name))
        self.loop_stack.append(_LoopContext(exit_block.name, head.name))
        self.start_block(body)
        self._build_statement(stmt.body)
        self.terminate(Jump(head.name))
        self.loop_stack.pop()
        self.start_block(head)
        self._build_cond(stmt.cond, body.name, exit_block.name)
        self.start_block(exit_block)

    def _build_for(self, stmt):
        if isinstance(stmt.init, ast.DeclStmt):
            for decl in stmt.init.decls:
                self._build_local_decl(decl)
        elif isinstance(stmt.init, ast.ExprStmt):
            self._build_expr(stmt.init.expr)
        head = self.new_block()
        body = self.new_block()
        update = self.new_block()
        exit_block = self.new_block()
        self.terminate(Jump(head.name))
        self.start_block(head)
        if stmt.cond is not None:
            self._build_cond(stmt.cond, body.name, exit_block.name)
        else:
            self.terminate(Jump(body.name))
        self.loop_stack.append(_LoopContext(exit_block.name, update.name))
        self.start_block(body)
        self._build_statement(stmt.body)
        self.terminate(Jump(update.name))
        self.loop_stack.pop()
        self.start_block(update)
        if stmt.update is not None:
            self._build_expr(stmt.update)
        self.terminate(Jump(head.name))
        self.start_block(exit_block)

    def _build_return(self, stmt):
        if stmt.value is not None:
            value = self._build_expr(stmt.value)
            self.emit(Move(PReg(self.machine.ret_reg), value))
            self.terminate(Ret(True, self.machine))
        else:
            self.terminate(Ret(False, self.machine))

    # ------------------------------------------------------------------
    # Conditions (control-flow translation of boolean expressions).
    # ------------------------------------------------------------------

    def _build_cond(self, expr, true_name, false_name):
        if isinstance(expr, ast.Binary) and expr.op == "&&":
            mid = self.new_block()
            self._build_cond(expr.left, mid.name, false_name)
            self.start_block(mid)
            self._build_cond(expr.right, true_name, false_name)
            return
        if isinstance(expr, ast.Binary) and expr.op == "||":
            mid = self.new_block()
            self._build_cond(expr.left, true_name, mid.name)
            self.start_block(mid)
            self._build_cond(expr.right, true_name, false_name)
            return
        if isinstance(expr, ast.Unary) and expr.op == "!":
            self._build_cond(expr.operand, false_name, true_name)
            return
        if isinstance(expr, ast.IntLit):
            target = true_name if expr.value != 0 else false_name
            self.terminate(Jump(target))
            return
        value = self._build_expr(expr)
        self.terminate(CJump(value, true_name, false_name))

    def _build_bool_value(self, expr):
        """Materialise a short-circuit expression as a 0/1 register."""
        result = self.function.new_vreg("bool")
        true_block = self.new_block()
        false_block = self.new_block()
        join = self.new_block()
        self._build_cond(expr, true_block.name, false_block.name)
        self.start_block(true_block)
        self.emit(Move(result, Imm(1)))
        self.terminate(Jump(join.name))
        self.start_block(false_block)
        self.emit(Move(result, Imm(0)))
        self.terminate(Jump(join.name))
        self.start_block(join)
        return result

    # ------------------------------------------------------------------
    # Expressions.
    # ------------------------------------------------------------------

    def _build_expr(self, expr):
        """Lower ``expr`` and return its value as a VReg or Imm."""
        if isinstance(expr, ast.IntLit):
            return Imm(expr.value)
        if isinstance(expr, ast.VarRef):
            return self._build_var_read(expr)
        if isinstance(expr, ast.Binary):
            return self._build_binary(expr)
        if isinstance(expr, ast.Unary):
            return self._build_unary(expr)
        if isinstance(expr, ast.Assign):
            return self._build_assign(expr)
        if isinstance(expr, ast.Index):
            return self._build_index_read(expr)
        if isinstance(expr, ast.Deref):
            return self._build_deref_read(expr)
        if isinstance(expr, ast.AddrOf):
            return self._build_addr_of(expr)
        if isinstance(expr, ast.Call):
            return self._build_call(expr)
        raise IRError(
            "cannot lower expression {}".format(type(expr).__name__),
            expr.location,
        )

    def _build_var_read(self, expr):
        symbol = expr.symbol
        if symbol.is_array():
            # Array-to-pointer decay: the value is the base address.
            dest = self.function.new_vreg(symbol.name)
            self._ensure_storage(symbol)
            self.emit(AddrOfSym(dest, symbol))
            return dest
        dest = self.function.new_vreg(symbol.name)
        self._ensure_storage(symbol)
        self.emit(Load(dest, SymMem(symbol), self._direct_ref(symbol)))
        return dest

    def _ensure_storage(self, symbol):
        if symbol.is_global():
            return
        self.function.frame.add(symbol)

    def _build_binary(self, expr):
        if expr.op in ("&&", "||"):
            return self._build_bool_value(expr)
        left = self._build_expr(expr.left)
        right = self._build_expr(expr.right)
        dest = self.function.new_vreg()
        self.emit(BinOp(dest, _BINOP_CODES[expr.op], left, right))
        return dest

    def _build_unary(self, expr):
        if expr.op == "!":
            operand = self._build_expr(expr.operand)
            dest = self.function.new_vreg()
            self.emit(UnOp(dest, "not", operand))
            return dest
        operand = self._build_expr(expr.operand)
        dest = self.function.new_vreg()
        self.emit(UnOp(dest, "neg", operand))
        return dest

    def _build_assign(self, expr):
        value = self._build_expr(expr.value)
        target = expr.target
        if isinstance(target, ast.VarRef):
            symbol = target.symbol
            self._ensure_storage(symbol)
            self.emit(Store(SymMem(symbol), value, self._direct_ref(symbol)))
            return value
        if isinstance(target, ast.Index):
            address, ref = self._build_element_address(target)
            self.emit(Store(RegMem(address), value, ref))
            return value
        if isinstance(target, ast.Deref):
            address = self._build_expr(target.pointer)
            ref = self._ref_for_address_expr(target.pointer)
            self.emit(Store(RegMem(address), value, ref))
            return value
        raise IRError("invalid assignment target", target.location)

    def _build_element_address(self, expr):
        """Address and RefInfo for ``base[index]``."""
        base_value = self._build_expr(expr.base)
        index_value = self._build_expr(expr.index)
        if isinstance(index_value, Imm) and index_value.value == 0:
            address = base_value
        else:
            address = self.function.new_vreg("addr")
            self.emit(BinOp(address, "add", base_value, index_value))
        if isinstance(address, Imm):
            # Constant-folded absolute address; wrap it in a register.
            wrapped = self.function.new_vreg("addr")
            self.emit(Move(wrapped, address))
            address = wrapped
        ref = self._ref_for_address_expr(expr.base)
        return address, ref

    def _build_index_read(self, expr):
        address, ref = self._build_element_address(expr)
        dest = self.function.new_vreg()
        self.emit(Load(dest, RegMem(address), ref))
        return dest

    def _build_deref_read(self, expr):
        address = self._build_expr(expr.pointer)
        if isinstance(address, Imm):
            wrapped = self.function.new_vreg("addr")
            self.emit(Move(wrapped, address))
            address = wrapped
        ref = self._ref_for_address_expr(expr.pointer)
        dest = self.function.new_vreg()
        self.emit(Load(dest, RegMem(address), ref))
        return dest

    def _build_addr_of(self, expr):
        operand = expr.operand
        if isinstance(operand, ast.VarRef):
            dest = self.function.new_vreg("addr")
            self._ensure_storage(operand.symbol)
            self.emit(AddrOfSym(dest, operand.symbol))
            return dest
        if isinstance(operand, ast.Index):
            address, _ref = self._build_element_address(operand)
            return address
        raise IRError("invalid operand of '&'", expr.location)

    def _build_call(self, expr):
        if expr.name == "print":
            value = self._build_expr(expr.args[0])
            self.emit(Print(value))
            return Imm(0)
        arg_values = [self._build_expr(arg) for arg in expr.args]
        for index, value in enumerate(arg_values):
            self.emit(Move(PReg(index), value))
        returns_value = not expr.symbol.return_type.is_void()
        self.emit(Call(expr.name, len(arg_values), returns_value, self.machine))
        if returns_value:
            dest = self.function.new_vreg(expr.name + "_ret")
            self.emit(Move(dest, PReg(self.machine.ret_reg)))
            return dest
        return Imm(0)
