"""Dominator computation (iterative Cooper-Harvey-Kennedy algorithm)."""

from repro.ir.cfg import reverse_postorder


class DominatorTree:
    """Immediate dominators for every reachable block of a function."""

    def __init__(self, function):
        self.function = function
        self.idom = {}  # block name -> immediate dominator block name
        self._rpo_index = {}
        self._compute()

    def _compute(self):
        order = reverse_postorder(self.function)
        for index, block in enumerate(order):
            self._rpo_index[block.name] = index
        entry = self.function.entry
        self.idom = {entry.name: entry.name}
        changed = True
        while changed:
            changed = False
            for block in order:
                if block is entry:
                    continue
                new_idom = None
                for pred in block.preds:
                    if pred.name not in self.idom:
                        continue
                    if new_idom is None:
                        new_idom = pred.name
                    else:
                        new_idom = self._intersect(pred.name, new_idom)
                if new_idom is not None and self.idom.get(block.name) != new_idom:
                    self.idom[block.name] = new_idom
                    changed = True

    def _intersect(self, name_a, name_b):
        index = self._rpo_index
        while name_a != name_b:
            while index[name_a] > index[name_b]:
                name_a = self.idom[name_a]
            while index[name_b] > index[name_a]:
                name_b = self.idom[name_b]
        return name_a

    def dominates(self, name_a, name_b):
        """True when block ``name_a`` dominates block ``name_b``."""
        entry = self.function.entry_name
        current = name_b
        while True:
            if current == name_a:
                return True
            if current == entry:
                return name_a == entry
            current = self.idom[current]

    def immediate_dominator(self, name):
        return self.idom[name]
