"""Bypass and kill-bit annotation (paper Sections 4.2/4.3).

The unified model assigns one of four load/store flavors to every data
reference:

================  =======================================================
``UmAm_LOAD``     unambiguous load: probe the cache; on a hit take the
                  datum and invalidate the line (write it back first if
                  dirty, unless the kill bit says the value is dead); on
                  a miss read main memory directly without allocating.
``UmAm_STORE``    unambiguous store: write main memory directly; a stale
                  cached copy, if any, is invalidated (coherence probe).
``Am_LOAD``       ambiguous load: normal through-cache read.
``AmSp_STORE``    ambiguous or spill store: normal through-cache write.
================  =======================================================

Protocol decisions beyond the paper's text (documented in DESIGN.md):

* A dirty line hit by a plain ``UmAm_LOAD`` is written back before
  invalidation; only a kill-marked reference may drop dirty data,
  because the compiler proved the value dead.  This keeps the model
  functionally transparent, which :mod:`repro.cache.functional`
  verifies by actually storing data in the simulated cache.
* Spill reloads that are *not* the last use stay ``Am_LOAD`` so the
  cached copy survives for the next reload; the final reload is a
  kill-marked ``UmAm_LOAD``.  This is the liveness-driven behaviour of
  Section 4.2 item [3].
"""

from repro.analysis.memliveness import MemoryLiveness
from repro.ir.instructions import (
    Load,
    RefClass,
    RefFlavor,
    RefOrigin,
    Store,
)

#: Origins whose stores were routed through the cache, so their loads
#: must treat the cache as a possible (and authoritative) source.
_CACHED_SOURCES = (RefOrigin.SPILL, RefOrigin.CALLEE_SAVE)


def annotate_unified(
    module,
    alias_analysis,
    kill_bits=True,
    spill_to_cache=True,
    bypass_user_refs=True,
):
    """Apply the unified model's flavors to every classified reference.

    ``kill_bits=False`` disables last-use marking (the Section 3.2
    ablation); ``spill_to_cache=False`` routes spill stores straight to
    memory instead of through the cache (the Section 4.2 ablation).

    ``bypass_user_refs=False`` selects the *hybrid* refinement: only
    compiler-created register-boundary traffic (spills, callee saves)
    uses the bypass/kill machinery, while source-level unambiguous
    references stay through-cache but still carry kill bits.  The
    paper's model implicitly assumes every unambiguous value is
    register-resident between its memory endpoints; when codegen
    cannot achieve that (call-dense code such as Towers, whose hot
    state is globals), bypassing a value that will be reloaded shortly
    trades a 1-cycle hit for a full memory access.  The hybrid keeps
    the liveness benefits without that trade.
    """
    for function in module.functions.values():
        liveness = MemoryLiveness(function, module, alias_analysis)
        last_use = set(map(id, liveness.last_use_loads()))
        for instruction in function.instructions():
            if isinstance(instruction, Load):
                _annotate_load(
                    instruction, last_use, kill_bits, spill_to_cache,
                    bypass_user_refs,
                )
            elif isinstance(instruction, Store):
                _annotate_store(instruction, spill_to_cache,
                                bypass_user_refs)


def _annotate_load(instruction, last_use, kill_bits, spill_to_cache,
                   bypass_user_refs):
    ref = instruction.ref
    is_last = kill_bits and id(instruction) in last_use
    if ref.ref_class is RefClass.AMBIGUOUS:
        ref.annotate(RefFlavor.AM_LOAD, bypass=False, kill=is_last)
        return
    if ref.origin in _CACHED_SOURCES and spill_to_cache:
        if is_last:
            ref.annotate(RefFlavor.UMAM_LOAD, bypass=True, kill=True)
        else:
            # Keep the cached copy alive for the next reload.
            ref.annotate(RefFlavor.AM_LOAD, bypass=False, kill=False)
        return
    if not bypass_user_refs and ref.origin not in _CACHED_SOURCES:
        # Hybrid: a value the allocator left memory-resident benefits
        # from the cache; liveness still frees the line at last use.
        ref.annotate(RefFlavor.AM_LOAD, bypass=False, kill=is_last)
        return
    ref.annotate(RefFlavor.UMAM_LOAD, bypass=True, kill=is_last)


def _annotate_store(instruction, spill_to_cache, bypass_user_refs):
    ref = instruction.ref
    if ref.ref_class is RefClass.AMBIGUOUS:
        ref.annotate(RefFlavor.AMSP_STORE, bypass=False)
        return
    if ref.origin in _CACHED_SOURCES and spill_to_cache:
        ref.annotate(RefFlavor.AMSP_STORE, bypass=False)
        return
    if not bypass_user_refs:
        ref.annotate(RefFlavor.AMSP_STORE, bypass=False)
        return
    ref.annotate(RefFlavor.UMAM_STORE, bypass=True)


def annotate_conventional(module):
    """Baseline: every reference goes through the cache, no kill bits."""
    for function in module.functions.values():
        for instruction in function.instructions():
            if isinstance(instruction, Load):
                instruction.ref.annotate(
                    RefFlavor.AM_LOAD, bypass=False, kill=False
                )
            elif isinstance(instruction, Store):
                instruction.ref.annotate(
                    RefFlavor.AMSP_STORE, bypass=False, kill=False
                )
