"""Reference classification: tag every Load/Store ambiguous/unambiguous.

Runs after register allocation so compiler-created references (spills,
callee saves) are classified too; the alias analysis computed on the
pre-promotion IR remains valid because promotion only *removes* memory
references and allocation only *adds* unaliased frame slots.
"""

from repro.ir.instructions import Load, Store


def classify_references(module, alias_analysis):
    """Set ``ref_class`` on every memory reference; returns counts."""
    counts = {"ambiguous": 0, "unambiguous": 0}
    from repro.ir.instructions import RefClass

    for function in module.functions.values():
        for instruction in function.instructions():
            if not isinstance(instruction, (Load, Store)):
                continue
            ref = instruction.ref
            ref.ref_class = alias_analysis.classify(ref)
            if ref.ref_class is RefClass.AMBIGUOUS:
                counts["ambiguous"] += 1
            else:
                counts["unambiguous"] += 1
    return counts
