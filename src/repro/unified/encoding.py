"""Transmitting the bypass bit to hardware (paper Section 4.4).

The paper surveys four mechanisms for getting the compiler's one bit
per reference into the cache controller:

1. a dedicated bit in every memory instruction (what our simulator
   models natively — ``RefInfo.bypass`` *is* that bit);
2. explicit cache-control instructions that set a bypass pattern for
   the next ``n`` references;
3. **address-bit stealing**: sacrifice the most significant usable
   address bit, as Intel suggested for the 80386 — bypass references
   use the aliased upper half of the address space;
4. a separate cache controller (dismissed as too much overhead).

This module implements mechanisms 2 and 3 concretely so their costs
can be measured:

* :func:`encode_address` / :func:`decode_address` — the address-bit
  scheme, with the halved address space made explicit;
* :class:`PatternControlEncoder` — the control-instruction scheme: a
  ``CACHECTL`` instruction carries a bitmask covering the next ``n``
  references, and the encoder reports how many extra instructions a
  trace would need.
"""

from dataclasses import dataclass

from repro.vm.trace import FLAG_BYPASS, FLAG_INSTRUCTION

#: Default position of the stolen bit: bit 31 of a 32-bit address.
DEFAULT_BYPASS_BIT = 31


def address_space_limit(bypass_bit=DEFAULT_BYPASS_BIT):
    """Largest usable address once the bypass bit is stolen."""
    return 1 << bypass_bit


def encode_address(address, bypass, bypass_bit=DEFAULT_BYPASS_BIT):
    """Fold the bypass bit into the address (Section 4.4, scheme 3).

    Raises ``ValueError`` when the address no longer fits — the "worst
    case, this effectively reduces the addressable space by 50%"
    caveat made concrete.
    """
    limit = address_space_limit(bypass_bit)
    if not 0 <= address < limit:
        raise ValueError(
            "address {} does not fit below the stolen bit {} "
            "(address space is halved)".format(address, bypass_bit)
        )
    if bypass:
        return address | (1 << bypass_bit)
    return address


def decode_address(encoded, bypass_bit=DEFAULT_BYPASS_BIT):
    """Recover ``(address, bypass)`` from an encoded address."""
    mask = 1 << bypass_bit
    return encoded & ~mask, bool(encoded & mask)


def encode_trace(trace, bypass_bit=DEFAULT_BYPASS_BIT):
    """Yield ``(encoded_address, flags)`` for a data trace.

    Demonstrates that the scheme is lossless for traces that fit the
    halved address space; the cache controller recovers the bit with
    :func:`decode_address` and needs no instruction-set change.
    """
    for address, flags in trace:
        bypass = bool(flags & FLAG_BYPASS)
        yield encode_address(address, bypass, bypass_bit), flags


@dataclass
class PatternCost:
    """Overhead of the control-instruction scheme for one trace."""

    references: int
    control_instructions: int
    pattern_width: int

    @property
    def overhead_ratio(self):
        """Extra instructions per memory reference."""
        if self.references == 0:
            return 0.0
        return self.control_instructions / self.references


class PatternControlEncoder:
    """Scheme 2: one ``CACHECTL`` instruction per ``width`` references.

    Each control instruction carries the bypass/cache pattern for the
    next ``width`` memory references ("somewhat less than the machine
    word length" — the paper's sizing).  The encoder is trivial: the
    cost is exactly ceil(refs / width) control instructions, which the
    paper predicts "would limit performance" — quantified here.
    """

    def __init__(self, pattern_width=24):
        if pattern_width < 1:
            raise ValueError("pattern width must be positive")
        self.pattern_width = pattern_width

    def cost(self, trace):
        references = sum(
            1 for _address, flags in trace
            if not flags & FLAG_INSTRUCTION
        )
        width = self.pattern_width
        control = (references + width - 1) // width
        return PatternCost(references, control, width)

    def patterns(self, trace):
        """Yield the actual bit patterns a compiler would emit."""
        pattern = 0
        filled = 0
        for _address, flags in trace:
            if flags & FLAG_INSTRUCTION:
                continue
            if flags & FLAG_BYPASS:
                pattern |= 1 << filled
            filled += 1
            if filled == self.pattern_width:
                yield pattern
                pattern = 0
                filled = 0
        if filled:
            yield pattern
