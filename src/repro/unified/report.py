"""Static classification reports (the Section 5 static measurement)."""

from dataclasses import dataclass, field

from repro.ir.instructions import Load, RefClass, Store


@dataclass
class StaticReport:
    """Static (per compiled instruction) reference classification."""

    total: int = 0
    loads: int = 0
    stores: int = 0
    unambiguous: int = 0
    ambiguous: int = 0
    bypassed: int = 0
    killed: int = 0
    by_origin: dict = field(default_factory=dict)
    by_function: dict = field(default_factory=dict)

    @property
    def percent_unambiguous(self):
        if self.total == 0:
            return 0.0
        return 100.0 * self.unambiguous / self.total

    @property
    def percent_bypassed(self):
        if self.total == 0:
            return 0.0
        return 100.0 * self.bypassed / self.total

    @property
    def miller_ratio(self):
        """Static unambiguous:ambiguous ratio (Miller's measurement)."""
        if self.ambiguous == 0:
            return float("inf")
        return self.unambiguous / self.ambiguous

    def rows(self):
        return [
            ("static data references", self.total),
            ("  loads", self.loads),
            ("  stores", self.stores),
            ("unambiguous", self.unambiguous),
            ("ambiguous", self.ambiguous),
            ("% unambiguous", round(self.percent_unambiguous, 1)),
            ("% bypass-annotated", round(self.percent_bypassed, 1)),
        ]


def static_report(module):
    """Build a :class:`StaticReport` from an annotated module."""
    report = StaticReport()
    for function in module.functions.values():
        fn_total = 0
        fn_unambiguous = 0
        for instruction in function.instructions():
            if isinstance(instruction, Load):
                report.loads += 1
            elif isinstance(instruction, Store):
                report.stores += 1
            else:
                continue
            ref = instruction.ref
            report.total += 1
            fn_total += 1
            if ref.ref_class is RefClass.UNAMBIGUOUS:
                report.unambiguous += 1
                fn_unambiguous += 1
            else:
                report.ambiguous += 1
            if ref.bypass:
                report.bypassed += 1
            if ref.kill:
                report.killed += 1
            origin = ref.origin.value
            report.by_origin[origin] = report.by_origin.get(origin, 0) + 1
        if fn_total:
            report.by_function[function.name] = {
                "total": fn_total,
                "unambiguous": fn_unambiguous,
                "percent_unambiguous": 100.0 * fn_unambiguous / fn_total,
            }
    return report
