"""The unified registers/cache management model (the paper's Section 4).

:func:`compile_source` is the main entry point of the whole library: it
runs the complete pipeline (frontend, IR, alias analysis, promotion,
register allocation, classification, bypass/kill annotation) and
returns a :class:`CompiledProgram` ready to execute on the VM against
any cache model.
"""

from repro.unified.classify import classify_references
from repro.unified.bypass import annotate_conventional, annotate_unified
from repro.unified.pipeline import (
    CompilationOptions,
    CompiledProgram,
    Scheme,
    compile_source,
)
from repro.unified.report import StaticReport, static_report

__all__ = [
    "classify_references",
    "annotate_unified",
    "annotate_conventional",
    "CompilationOptions",
    "CompiledProgram",
    "Scheme",
    "compile_source",
    "StaticReport",
    "static_report",
]
