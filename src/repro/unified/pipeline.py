"""The end-to-end compilation pipeline.

``compile_source`` runs, in order:

1. frontend (lex, parse, type-check);
2. IR lowering to memory-resident TAC + CFG construction;
3. interprocedural alias analysis (points-to + alias sets);
4. promotion and register allocation (policy per options);
5. reference classification against the alias facts;
6. bypass/kill annotation — unified model or conventional baseline.

The result can be executed directly (:meth:`CompiledProgram.run`) with
any memory system.
"""

from dataclasses import dataclass
from enum import Enum, unique

from repro.analysis.alias import analyze_aliases
from repro.errors import pipeline_stage
from repro.ir.builder import build_module
from repro.ir.cfg import build_cfg
from repro.ir.instructions import MACHINE
from repro.ir.validate import verify_annotations, verify_module
from repro.lang.parser import parse_program
from repro.lang.sema import analyze
from repro.regalloc.allocator import allocate_module
from repro.regalloc.promotion import DEFAULT_MODEST_BUDGET, PromotionLevel
from repro.unified.bypass import annotate_conventional, annotate_unified
from repro.unified.classify import classify_references
from repro.unified.report import static_report
from repro.vm.machine import Machine


@unique
class Scheme(Enum):
    """Which management model the emitted code targets."""

    UNIFIED = "unified"
    CONVENTIONAL = "conventional"

    @classmethod
    def parse(cls, value):
        if isinstance(value, cls):
            return value
        return cls(value)


@dataclass
class CompilationOptions:
    """Everything that varies between pipeline configurations."""

    scheme: object = Scheme.UNIFIED
    promotion: object = PromotionLevel.MODEST
    promotion_budget: int = DEFAULT_MODEST_BUDGET
    machine: object = MACHINE
    kill_bits: bool = True
    spill_to_cache: bool = True
    refine_points_to: bool = False
    #: Keep unambiguous global scalars in registers between calls
    #: within each basic block (repro.regalloc.blockopt).  Off by
    #: default: the Figure 5 calibration models era codegen without it.
    cache_globals_in_blocks: bool = False
    #: False selects the hybrid refinement: only spill/callee-save
    #: traffic bypasses; source-level unambiguous references stay
    #: through-cache but keep their kill bits.
    bypass_user_refs: bool = True
    #: Apply Definition 1 user-name merging: rewrite dereferences of
    #: single-target pointers into direct references, letting refined
    #: classification recover the target as unambiguous.
    merge_true_aliases: bool = False

    def normalized(self):
        return CompilationOptions(
            scheme=Scheme.parse(self.scheme),
            promotion=PromotionLevel.parse(self.promotion),
            promotion_budget=self.promotion_budget,
            machine=self.machine,
            kill_bits=self.kill_bits,
            spill_to_cache=self.spill_to_cache,
            refine_points_to=self.refine_points_to,
            cache_globals_in_blocks=self.cache_globals_in_blocks,
            bypass_user_refs=self.bypass_user_refs,
            merge_true_aliases=self.merge_true_aliases,
        )


class CompiledProgram:
    """A fully compiled, annotated, executable module."""

    def __init__(self, module, alias_analysis, allocation_stats, options):
        self.module = module
        self.alias = alias_analysis
        self.allocation_stats = allocation_stats
        self.options = options
        self.static = static_report(module)

    def machine(self, memory=None, **kwargs):
        """A fresh VM for this program."""
        return Machine(
            self.module, memory=memory, machine=self.options.machine, **kwargs
        )

    def run(self, entry="main", memory=None, globals_init=None, **kwargs):
        """Execute ``entry`` and return the :class:`ExecutionResult`."""
        vm = self.machine(memory=memory, **kwargs)
        if globals_init:
            for name, value in globals_init.items():
                if isinstance(value, (list, tuple)):
                    for index, element in enumerate(value):
                        vm.set_global(name, element, index)
                else:
                    vm.set_global(name, value)
        return vm.run(entry)

    def alias_sets(self):
        return self.alias.alias_sets()


def compile_source(source, options=None, filename="<minic>"):
    """Compile MiniC ``source`` under ``options``; see module docstring."""
    options = (options or CompilationOptions()).normalized()

    with pipeline_stage("frontend"):
        analyzed = analyze(parse_program(source, filename))
    with pipeline_stage("lower"):
        module = build_module(analyzed, options.machine)
        for function in module.functions.values():
            build_cfg(function)
        verify_module(module)

    with pipeline_stage("alias"):
        alias_analysis = analyze_aliases(module, options.refine_points_to)
        if options.merge_true_aliases:
            from repro.analysis.deref_merge import merge_true_aliases

            merge_true_aliases(module, alias_analysis)
    if options.cache_globals_in_blocks:
        with pipeline_stage("blockopt"):
            from repro.regalloc.blockopt import cache_globals_module

            cache_globals_module(module, alias_analysis)
            for function in module.functions.values():
                build_cfg(function)
    with pipeline_stage("regalloc"):
        allocation_stats = allocate_module(
            module,
            alias_analysis,
            options.machine,
            promotion=options.promotion,
            budget=options.promotion_budget,
        )
    with pipeline_stage("classify"):
        classify_references(module, alias_analysis)
    with pipeline_stage("annotate"):
        if options.scheme is Scheme.UNIFIED:
            annotate_unified(
                module,
                alias_analysis,
                kill_bits=options.kill_bits,
                spill_to_cache=options.spill_to_cache,
                bypass_user_refs=options.bypass_user_refs,
            )
        else:
            annotate_conventional(module)
    with pipeline_stage("verify"):
        verify_annotations(module)
        verify_module(module, allocated=True, machine=options.machine)
    return CompiledProgram(module, alias_analysis, allocation_stats, options)
