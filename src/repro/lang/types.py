"""MiniC's tiny type system.

The machine is word addressed: an ``int`` occupies one word, and pointer
arithmetic moves by whole words, so ``a[i]`` lives at address ``a + i``.
This matches the paper's line-size-one data-cache model where every datum
is one word.
"""


class Type:
    """Base class for MiniC types.  Instances are immutable and hashable."""

    def is_int(self):
        return isinstance(self, IntType)

    def is_pointer(self):
        return isinstance(self, PointerType)

    def is_array(self):
        return isinstance(self, ArrayType)

    def is_void(self):
        return isinstance(self, VoidType)

    def is_scalar(self):
        """True for values that fit in one machine register."""
        return self.is_int() or self.is_pointer()

    def decayed(self):
        """Array-to-pointer decay; identity for everything else."""
        if isinstance(self, ArrayType):
            return PointerType(self.element)
        return self


class IntType(Type):
    """The one-word signed integer type."""

    def __repr__(self):
        return "int"

    def __eq__(self, other):
        return isinstance(other, IntType)

    def __hash__(self):
        return hash("int")


class VoidType(Type):
    """Return type of procedures that produce no value."""

    def __repr__(self):
        return "void"

    def __eq__(self, other):
        return isinstance(other, VoidType)

    def __hash__(self):
        return hash("void")


class PointerType(Type):
    """Pointer to ``element`` (always ``int`` in MiniC today)."""

    def __init__(self, element):
        self.element = element

    def __repr__(self):
        return "{}*".format(self.element)

    def __eq__(self, other):
        return isinstance(other, PointerType) and self.element == other.element

    def __hash__(self):
        return hash(("ptr", self.element))


class ArrayType(Type):
    """Fixed-size array of ``length`` elements of type ``element``.

    ``length`` may be ``None`` for array-typed parameters (``int a[]``),
    which decay to pointers.
    """

    def __init__(self, element, length):
        self.element = element
        self.length = length

    def __repr__(self):
        if self.length is None:
            return "{}[]".format(self.element)
        return "{}[{}]".format(self.element, self.length)

    def __eq__(self, other):
        return (
            isinstance(other, ArrayType)
            and self.element == other.element
            and self.length == other.length
        )

    def __hash__(self):
        return hash(("array", self.element, self.length))

    def size_words(self):
        """Storage footprint in machine words."""
        if self.length is None:
            raise ValueError("unsized array has no storage footprint")
        return self.length


#: Shared singletons for the common cases.
INT = IntType()
VOID = VoidType()
INT_PTR = PointerType(INT)
