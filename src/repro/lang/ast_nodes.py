"""Abstract syntax tree for MiniC.

Nodes are plain classes with positional constructors.  The semantic
analyzer decorates expression nodes with a ``type`` attribute and name
references with a ``symbol`` attribute; the IR builder consumes the
decorated tree.
"""

from repro.lang.errors import UNKNOWN_LOCATION


class Node:
    """Base class for all AST nodes."""

    def __init__(self, location=None):
        self.location = location or UNKNOWN_LOCATION

    def children(self):
        """Child nodes, used by generic walkers; override in subclasses."""
        return []

    def __repr__(self):
        return "{}".format(type(self).__name__)


def walk(node):
    """Yield ``node`` and every descendant in pre-order."""
    yield node
    for child in node.children():
        if child is not None:
            for descendant in walk(child):
                yield descendant


# ----------------------------------------------------------------------
# Top level.
# ----------------------------------------------------------------------


class Program(Node):
    """A whole translation unit: globals and function definitions."""

    def __init__(self, items, location=None):
        super().__init__(location)
        self.items = items

    def children(self):
        return list(self.items)

    def functions(self):
        return [item for item in self.items if isinstance(item, FuncDef)]

    def globals(self):
        return [item for item in self.items if isinstance(item, VarDecl)]


class VarDecl(Node):
    """A variable declaration (global, or local inside a DeclStmt).

    ``init`` is an optional initializing expression for scalars; arrays
    may not be initialized in MiniC.
    """

    def __init__(self, name, var_type, init=None, location=None):
        super().__init__(location)
        self.name = name
        self.var_type = var_type
        self.init = init
        self.symbol = None  # Filled by the semantic analyzer.

    def children(self):
        return [self.init] if self.init is not None else []

    def __repr__(self):
        return "VarDecl({}: {})".format(self.name, self.var_type)


class Param(Node):
    """A function parameter.  Array parameters decay to pointers."""

    def __init__(self, name, param_type, location=None):
        super().__init__(location)
        self.name = name
        self.param_type = param_type
        self.symbol = None

    def __repr__(self):
        return "Param({}: {})".format(self.name, self.param_type)


class FuncDef(Node):
    """A function definition with its body."""

    def __init__(self, name, return_type, params, body, location=None):
        super().__init__(location)
        self.name = name
        self.return_type = return_type
        self.params = params
        self.body = body
        self.symbol = None

    def children(self):
        return list(self.params) + [self.body]

    def __repr__(self):
        return "FuncDef({})".format(self.name)


# ----------------------------------------------------------------------
# Statements.
# ----------------------------------------------------------------------


class Stmt(Node):
    """Base class for statements."""


class Block(Stmt):
    def __init__(self, statements, location=None):
        super().__init__(location)
        self.statements = statements

    def children(self):
        return list(self.statements)


class DeclStmt(Stmt):
    """One or more local declarations introduced by a single ``int`` line."""

    def __init__(self, decls, location=None):
        super().__init__(location)
        self.decls = decls

    def children(self):
        return list(self.decls)


class ExprStmt(Stmt):
    def __init__(self, expr, location=None):
        super().__init__(location)
        self.expr = expr

    def children(self):
        return [self.expr]


class If(Stmt):
    def __init__(self, cond, then_branch, else_branch=None, location=None):
        super().__init__(location)
        self.cond = cond
        self.then_branch = then_branch
        self.else_branch = else_branch

    def children(self):
        return [self.cond, self.then_branch, self.else_branch]


class While(Stmt):
    def __init__(self, cond, body, location=None):
        super().__init__(location)
        self.cond = cond
        self.body = body

    def children(self):
        return [self.cond, self.body]


class DoWhile(Stmt):
    def __init__(self, body, cond, location=None):
        super().__init__(location)
        self.body = body
        self.cond = cond

    def children(self):
        return [self.body, self.cond]


class For(Stmt):
    """C-style for; any of init/cond/update may be ``None``.

    ``init`` is either an expression or a :class:`DeclStmt`.
    """

    def __init__(self, init, cond, update, body, location=None):
        super().__init__(location)
        self.init = init
        self.cond = cond
        self.update = update
        self.body = body

    def children(self):
        return [self.init, self.cond, self.update, self.body]


class Return(Stmt):
    def __init__(self, value=None, location=None):
        super().__init__(location)
        self.value = value

    def children(self):
        return [self.value] if self.value is not None else []


class Break(Stmt):
    pass


class Continue(Stmt):
    pass


# ----------------------------------------------------------------------
# Expressions.
# ----------------------------------------------------------------------


class Expr(Node):
    """Base class for expressions; ``type`` is filled in by sema."""

    def __init__(self, location=None):
        super().__init__(location)
        self.type = None


class IntLit(Expr):
    def __init__(self, value, location=None):
        super().__init__(location)
        self.value = value

    def __repr__(self):
        return "IntLit({})".format(self.value)


class VarRef(Expr):
    def __init__(self, name, location=None):
        super().__init__(location)
        self.name = name
        self.symbol = None

    def __repr__(self):
        return "VarRef({})".format(self.name)


class Binary(Expr):
    """Binary operators, including short-circuit ``&&`` and ``||``."""

    def __init__(self, op, left, right, location=None):
        super().__init__(location)
        self.op = op
        self.left = left
        self.right = right

    def children(self):
        return [self.left, self.right]

    def __repr__(self):
        return "Binary({})".format(self.op)


class Unary(Expr):
    """Unary ``-`` and ``!``."""

    def __init__(self, op, operand, location=None):
        super().__init__(location)
        self.op = op
        self.operand = operand

    def children(self):
        return [self.operand]

    def __repr__(self):
        return "Unary({})".format(self.op)


class Assign(Expr):
    """Assignment; ``target`` is a VarRef, Index or Deref lvalue."""

    def __init__(self, target, value, location=None):
        super().__init__(location)
        self.target = target
        self.value = value

    def children(self):
        return [self.target, self.value]


class Index(Expr):
    """``base[index]`` where base is an array or pointer."""

    def __init__(self, base, index, location=None):
        super().__init__(location)
        self.base = base
        self.index = index

    def children(self):
        return [self.base, self.index]


class Deref(Expr):
    """``*pointer``."""

    def __init__(self, pointer, location=None):
        super().__init__(location)
        self.pointer = pointer

    def children(self):
        return [self.pointer]


class AddrOf(Expr):
    """``&lvalue`` where lvalue is a VarRef or Index."""

    def __init__(self, operand, location=None):
        super().__init__(location)
        self.operand = operand

    def children(self):
        return [self.operand]


class Call(Expr):
    """A function call or intrinsic (``print``)."""

    def __init__(self, name, args, location=None):
        super().__init__(location)
        self.name = name
        self.args = args
        self.symbol = None

    def children(self):
        return list(self.args)

    def __repr__(self):
        return "Call({})".format(self.name)
