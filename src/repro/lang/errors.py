"""Error types and source locations shared by the whole frontend."""

from dataclasses import dataclass


@dataclass(frozen=True)
class SourceLocation:
    """A (line, column) position within a named source buffer.

    Lines and columns are 1-based, matching what editors display.
    """

    line: int = 0
    column: int = 0
    filename: str = "<minic>"

    def __str__(self):
        return "{}:{}:{}".format(self.filename, self.line, self.column)


#: Location used for synthesized nodes with no source counterpart.
UNKNOWN_LOCATION = SourceLocation(0, 0, "<synthesized>")


class CompileError(Exception):
    """Base class for every error raised by the MiniC pipeline."""

    def __init__(self, message, location=None):
        self.message = message
        self.location = location or UNKNOWN_LOCATION
        super().__init__("{}: {}".format(self.location, message))


class LexError(CompileError):
    """Raised for malformed input at the character level."""


class ParseError(CompileError):
    """Raised for token sequences that do not form a valid program."""


class SemanticError(CompileError):
    """Raised for well-formed programs that violate typing/scoping rules."""


class IRError(CompileError):
    """Raised when IR construction or verification fails."""


class VMError(CompileError):
    """Raised by the register-machine interpreter at run time."""
