"""Error types and source locations shared by the whole frontend.

All of these derive from :class:`repro.errors.ReproError`, carry a
``stage`` tag naming the pipeline layer, and keep a structured
:class:`SourceLocation` so tooling can point at the offending source.
"""

from dataclasses import dataclass

from repro.errors import ReproError
from repro.errors import ResourceExhausted as _ResourceExhausted


@dataclass(frozen=True)
class SourceLocation:
    """A (line, column) position within a named source buffer.

    Lines and columns are 1-based, matching what editors display.
    """

    line: int = 0
    column: int = 0
    filename: str = "<minic>"

    def __str__(self):
        return "{}:{}:{}".format(self.filename, self.line, self.column)


#: Location used for synthesized nodes with no source counterpart.
UNKNOWN_LOCATION = SourceLocation(0, 0, "<synthesized>")


class CompileError(ReproError):
    """Base class for every error raised by the MiniC pipeline."""

    stage = "compile"

    def __init__(self, message, location=None):
        self.message = message
        self.location = location or UNKNOWN_LOCATION
        if self.location is UNKNOWN_LOCATION:
            Exception.__init__(self, message)
        else:
            Exception.__init__(self, "{}: {}".format(self.location, message))


class LexError(CompileError):
    """Raised for malformed input at the character level."""

    stage = "lex"


class ParseError(CompileError):
    """Raised for token sequences that do not form a valid program."""

    stage = "parse"


class SemanticError(CompileError):
    """Raised for well-formed programs that violate typing/scoping rules."""

    stage = "sema"


class IRError(CompileError):
    """Raised when IR construction or verification fails."""

    stage = "ir"


class VMError(CompileError):
    """Raised by the register-machine interpreter at run time."""

    stage = "vm"


class ResourceExhausted(_ResourceExhausted, VMError):
    """An execution budget ran out inside the VM or its trace buffers.

    Doubly rooted: it is the canonical
    :class:`repro.errors.ResourceExhausted` *and* a :class:`VMError`,
    so both ``except ResourceExhausted`` and legacy ``except VMError``
    handlers see it.
    """

    stage = "limits"

    def __init__(self, message, location=None):
        CompileError.__init__(self, message, location)
