"""Symbols and lexical scopes for MiniC."""

import itertools
from enum import Enum, unique

from repro.lang.errors import SemanticError

_symbol_ids = itertools.count(1)


@unique
class SymbolKind(Enum):
    GLOBAL = "global"
    LOCAL = "local"
    PARAM = "param"
    FUNCTION = "function"


class Symbol:
    """A named program entity.

    The flags ``address_taken`` and ``escapes`` are filled in by the
    semantic analyzer and consumed by the alias analysis:

    * ``address_taken`` — a scalar whose address is observed via ``&``;
      such a scalar can be reached through pointers and is therefore
      *ambiguously aliased* in the paper's taxonomy.
    * ``escapes`` — an array whose base address flows into a pointer
      value (argument passing, pointer assignment, pointer arithmetic),
      so its elements may be reached under a different name.
    """

    def __init__(self, name, symbol_type, kind, location=None):
        self.id = next(_symbol_ids)
        self.name = name
        self.type = symbol_type
        self.kind = kind
        self.location = location
        self.address_taken = False
        self.escapes = False
        # Filled by the IR builder: storage assignment.
        self.frame_slot = None
        self.global_address = None
        # Filled for FUNCTION symbols.
        self.return_type = None
        self.param_types = ()

    def is_array(self):
        return self.type is not None and self.type.is_array()

    def is_scalar(self):
        return self.type is not None and self.type.is_scalar()

    def is_global(self):
        return self.kind is SymbolKind.GLOBAL

    def storage_name(self):
        """A unique, human-readable name for diagnostics and traces."""
        return "{}#{}".format(self.name, self.id)

    def __repr__(self):
        return "Symbol({}, {}, {})".format(self.name, self.type, self.kind.value)


class Scope:
    """One lexical scope level; chains to an enclosing scope."""

    def __init__(self, parent=None):
        self.parent = parent
        self.names = {}

    def declare(self, symbol):
        if symbol.name in self.names:
            raise SemanticError(
                "redeclaration of '{}'".format(symbol.name), symbol.location
            )
        self.names[symbol.name] = symbol
        return symbol

    def lookup(self, name):
        scope = self
        while scope is not None:
            symbol = scope.names.get(name)
            if symbol is not None:
                return symbol
            scope = scope.parent
        return None
