"""Token definitions for the MiniC lexer."""

from dataclasses import dataclass
from enum import Enum, unique

from repro.lang.errors import SourceLocation


@unique
class TokenKind(Enum):
    """Every distinct lexeme class MiniC recognises."""

    # Literals and identifiers.
    INT_LITERAL = "int_literal"
    IDENT = "ident"

    # Keywords.
    KW_INT = "int"
    KW_VOID = "void"
    KW_IF = "if"
    KW_ELSE = "else"
    KW_WHILE = "while"
    KW_FOR = "for"
    KW_RETURN = "return"
    KW_BREAK = "break"
    KW_CONTINUE = "continue"
    KW_DO = "do"

    # Punctuation and operators.
    LPAREN = "("
    RPAREN = ")"
    LBRACE = "{"
    RBRACE = "}"
    LBRACKET = "["
    RBRACKET = "]"
    COMMA = ","
    SEMICOLON = ";"
    ASSIGN = "="
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    PERCENT = "%"
    AMP = "&"
    BANG = "!"
    EQ = "=="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    AND_AND = "&&"
    OR_OR = "||"
    PLUS_PLUS = "++"
    MINUS_MINUS = "--"
    PLUS_ASSIGN = "+="
    MINUS_ASSIGN = "-="

    # End of input.
    EOF = "eof"


#: Reserved words mapped to their keyword token kinds.
KEYWORDS = {
    "int": TokenKind.KW_INT,
    "void": TokenKind.KW_VOID,
    "if": TokenKind.KW_IF,
    "else": TokenKind.KW_ELSE,
    "while": TokenKind.KW_WHILE,
    "for": TokenKind.KW_FOR,
    "return": TokenKind.KW_RETURN,
    "break": TokenKind.KW_BREAK,
    "continue": TokenKind.KW_CONTINUE,
    "do": TokenKind.KW_DO,
}

#: Multi-character operators, longest first so the lexer can try them greedily.
MULTI_CHAR_OPERATORS = [
    ("==", TokenKind.EQ),
    ("!=", TokenKind.NE),
    ("<=", TokenKind.LE),
    (">=", TokenKind.GE),
    ("&&", TokenKind.AND_AND),
    ("||", TokenKind.OR_OR),
    ("++", TokenKind.PLUS_PLUS),
    ("--", TokenKind.MINUS_MINUS),
    ("+=", TokenKind.PLUS_ASSIGN),
    ("-=", TokenKind.MINUS_ASSIGN),
]

#: Single-character operators and punctuation.
SINGLE_CHAR_OPERATORS = {
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    "{": TokenKind.LBRACE,
    "}": TokenKind.RBRACE,
    "[": TokenKind.LBRACKET,
    "]": TokenKind.RBRACKET,
    ",": TokenKind.COMMA,
    ";": TokenKind.SEMICOLON,
    "=": TokenKind.ASSIGN,
    "+": TokenKind.PLUS,
    "-": TokenKind.MINUS,
    "*": TokenKind.STAR,
    "/": TokenKind.SLASH,
    "%": TokenKind.PERCENT,
    "&": TokenKind.AMP,
    "!": TokenKind.BANG,
    "<": TokenKind.LT,
    ">": TokenKind.GT,
}


@dataclass(frozen=True)
class Token:
    """A single lexeme with its source location.

    ``value`` carries the integer value for INT_LITERAL tokens and the
    identifier text for IDENT tokens; it is ``None`` otherwise.
    """

    kind: TokenKind
    text: str
    location: SourceLocation
    value: object = None

    def __str__(self):
        if self.kind is TokenKind.INT_LITERAL:
            return "INT({})".format(self.value)
        if self.kind is TokenKind.IDENT:
            return "IDENT({})".format(self.text)
        return self.kind.name
