"""Hand-written lexer for MiniC.

The lexer is a straightforward single-pass scanner.  It supports ``//``
line comments and ``/* ... */`` block comments, decimal and ``0x`` hex
integer literals, and the operator set listed in
:mod:`repro.lang.tokens`.
"""

from repro.lang.errors import LexError, SourceLocation
from repro.lang.tokens import (
    KEYWORDS,
    MULTI_CHAR_OPERATORS,
    SINGLE_CHAR_OPERATORS,
    Token,
    TokenKind,
)


class Lexer:
    """Converts MiniC source text into a list of :class:`Token`."""

    def __init__(self, source, filename="<minic>"):
        self.source = source
        self.filename = filename
        self.pos = 0
        self.line = 1
        self.column = 1

    def location(self):
        """Current position as a :class:`SourceLocation`."""
        return SourceLocation(self.line, self.column, self.filename)

    def tokens(self):
        """Scan the whole buffer and return the token list (EOF last)."""
        result = []
        while True:
            token = self.next_token()
            result.append(token)
            if token.kind is TokenKind.EOF:
                return result

    # ------------------------------------------------------------------
    # Scanning helpers.
    # ------------------------------------------------------------------

    def _peek(self, offset=0):
        index = self.pos + offset
        if index < len(self.source):
            return self.source[index]
        return ""

    def _advance(self, count=1):
        for _ in range(count):
            if self.pos >= len(self.source):
                return
            if self.source[self.pos] == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
            self.pos += 1

    def _skip_whitespace_and_comments(self):
        while self.pos < len(self.source):
            char = self._peek()
            if char in " \t\r\n":
                self._advance()
            elif char == "/" and self._peek(1) == "/":
                while self.pos < len(self.source) and self._peek() != "\n":
                    self._advance()
            elif char == "/" and self._peek(1) == "*":
                start = self.location()
                self._advance(2)
                while not (self._peek() == "*" and self._peek(1) == "/"):
                    if self.pos >= len(self.source):
                        raise LexError("unterminated block comment", start)
                    self._advance()
                self._advance(2)
            else:
                return

    # ------------------------------------------------------------------
    # Token production.
    # ------------------------------------------------------------------

    def next_token(self):
        """Produce the next token, or EOF when input is exhausted."""
        self._skip_whitespace_and_comments()
        loc = self.location()
        if self.pos >= len(self.source):
            return Token(TokenKind.EOF, "", loc)

        char = self._peek()
        if char.isdigit():
            return self._lex_number(loc)
        if char.isalpha() or char == "_":
            return self._lex_ident_or_keyword(loc)
        return self._lex_operator(loc)

    def _lex_number(self, loc):
        start = self.pos
        if self._peek() == "0" and self._peek(1) in ("x", "X"):
            self._advance(2)
            if not self._is_hex_digit(self._peek()):
                raise LexError("malformed hex literal", loc)
            while self._is_hex_digit(self._peek()):
                self._advance()
            text = self.source[start:self.pos]
            value = int(text, 16)
        else:
            while self._peek().isdigit():
                self._advance()
            text = self.source[start:self.pos]
            value = int(text, 10)
        if self._peek().isalpha() or self._peek() == "_":
            raise LexError(
                "identifier characters may not follow a number", self.location()
            )
        return Token(TokenKind.INT_LITERAL, text, loc, value)

    @staticmethod
    def _is_hex_digit(char):
        return bool(char) and char in "0123456789abcdefABCDEF"

    def _lex_ident_or_keyword(self, loc):
        start = self.pos
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        text = self.source[start:self.pos]
        keyword = KEYWORDS.get(text)
        if keyword is not None:
            return Token(keyword, text, loc)
        return Token(TokenKind.IDENT, text, loc, text)

    def _lex_operator(self, loc):
        for text, kind in MULTI_CHAR_OPERATORS:
            if self.source.startswith(text, self.pos):
                self._advance(len(text))
                return Token(kind, text, loc)
        char = self._peek()
        kind = SINGLE_CHAR_OPERATORS.get(char)
        if kind is None:
            raise LexError("unexpected character {!r}".format(char), loc)
        self._advance()
        return Token(kind, char, loc)


def tokenize(source, filename="<minic>"):
    """Tokenize ``source`` and return a list of tokens ending with EOF."""
    return Lexer(source, filename).tokens()
