"""MiniC language frontend.

MiniC is a small C subset rich enough to express the six DARPA/Stanford
benchmarks used in the paper's evaluation: ``int`` scalars, one-dimensional
``int`` arrays, pointers to ``int``, functions with recursion, and the
usual C control flow.

The public entry points are :func:`tokenize`, :func:`parse_program` and
:func:`analyze`, plus :func:`compile_source` in :mod:`repro.unified`
which drives the whole pipeline.
"""

from repro.lang.errors import (
    CompileError,
    LexError,
    ParseError,
    SemanticError,
    SourceLocation,
)
from repro.lang.lexer import Lexer, tokenize
from repro.lang.parser import Parser, parse_program
from repro.lang.sema import SemanticAnalyzer, analyze
from repro.lang.types import (
    ArrayType,
    IntType,
    PointerType,
    Type,
    VoidType,
    INT,
    VOID,
    INT_PTR,
)

__all__ = [
    "CompileError",
    "LexError",
    "ParseError",
    "SemanticError",
    "SourceLocation",
    "Lexer",
    "tokenize",
    "Parser",
    "parse_program",
    "SemanticAnalyzer",
    "analyze",
    "Type",
    "IntType",
    "PointerType",
    "ArrayType",
    "VoidType",
    "INT",
    "VOID",
    "INT_PTR",
]
