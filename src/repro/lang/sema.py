"""Semantic analysis for MiniC.

Responsibilities:

* build scopes and resolve every name to a :class:`Symbol`;
* type-check every expression and statement, decorating nodes;
* enforce the 4-register argument convention (at most 4 parameters);
* record the facts the alias analysis needs (``address_taken`` on
  scalars, ``escapes`` on arrays).
"""

from repro.lang import ast_nodes as ast
from repro.lang.errors import SemanticError
from repro.lang.symbols import Scope, Symbol, SymbolKind
from repro.lang.types import INT, VOID, PointerType

#: Maximum arguments supported by the register calling convention (r0-r3).
MAX_CALL_ARGS = 4

#: Intrinsics available without declaration: name -> (param types, result).
INTRINSICS = {
    "print": ((INT,), VOID),
}


class AnalyzedProgram:
    """The result of semantic analysis: decorated AST plus symbol tables."""

    def __init__(self, program, globals_, functions):
        self.program = program
        self.globals = globals_  # list[Symbol] in declaration order
        self.functions = functions  # dict[name, FuncDef]

    def function(self, name):
        return self.functions[name]


class SemanticAnalyzer:
    """Single-pass type checker and name resolver."""

    def __init__(self, program):
        self.program = program
        self.global_scope = Scope()
        self.globals = []
        self.functions = {}
        self.current_function = None
        self.loop_depth = 0

    # ------------------------------------------------------------------
    # Entry point.
    # ------------------------------------------------------------------

    def analyze(self):
        # Declare all functions first so forward references work.
        for item in self.program.items:
            if isinstance(item, ast.FuncDef):
                self._declare_function(item)
        for item in self.program.items:
            if isinstance(item, ast.VarDecl):
                self._declare_global(item)
            else:
                self._check_function(item)
        return AnalyzedProgram(self.program, self.globals, self.functions)

    # ------------------------------------------------------------------
    # Declarations.
    # ------------------------------------------------------------------

    def _declare_function(self, func):
        if func.name in INTRINSICS:
            raise SemanticError(
                "'{}' is a builtin and cannot be redefined".format(func.name),
                func.location,
            )
        if len(func.params) > MAX_CALL_ARGS:
            raise SemanticError(
                "functions may take at most {} arguments "
                "(register calling convention)".format(MAX_CALL_ARGS),
                func.location,
            )
        symbol = Symbol(func.name, None, SymbolKind.FUNCTION, func.location)
        symbol.return_type = func.return_type
        symbol.param_types = tuple(p.param_type.decayed() for p in func.params)
        self.global_scope.declare(symbol)
        func.symbol = symbol
        self.functions[func.name] = func

    def _declare_global(self, decl):
        if decl.init is not None and decl.var_type.is_array():
            raise SemanticError(
                "arrays may not be initialized", decl.location
            )
        if decl.init is not None:
            value = self._constant_value(decl.init)
            if decl.var_type.is_pointer() and value != 0:
                raise SemanticError(
                    "pointer globals may only be initialized to 0", decl.location
                )
            decl.init.type = INT
            decl.const_init = value
        else:
            decl.const_init = 0
        symbol = Symbol(decl.name, decl.var_type, SymbolKind.GLOBAL, decl.location)
        self.global_scope.declare(symbol)
        decl.symbol = symbol
        self.globals.append(symbol)

    def _constant_value(self, expr):
        if isinstance(expr, ast.IntLit):
            return expr.value
        if isinstance(expr, ast.Unary) and expr.op == "-":
            return -self._constant_value(expr.operand)
        raise SemanticError(
            "global initializers must be integer constants", expr.location
        )

    # ------------------------------------------------------------------
    # Functions and statements.
    # ------------------------------------------------------------------

    def _check_function(self, func):
        self.current_function = func
        scope = Scope(self.global_scope)
        for param in func.params:
            symbol = Symbol(
                param.name, param.param_type.decayed(), SymbolKind.PARAM,
                param.location,
            )
            scope.declare(symbol)
            param.symbol = symbol
        self._check_block(func.body, scope)
        self.current_function = None

    def _check_block(self, block, parent_scope):
        scope = Scope(parent_scope)
        for stmt in block.statements:
            self._check_statement(stmt, scope)

    def _check_statement(self, stmt, scope):
        if isinstance(stmt, ast.Block):
            self._check_block(stmt, scope)
        elif isinstance(stmt, ast.DeclStmt):
            for decl in stmt.decls:
                self._check_local_decl(decl, scope)
        elif isinstance(stmt, ast.ExprStmt):
            self._check_expr(stmt.expr, scope)
        elif isinstance(stmt, ast.If):
            self._require_scalar(self._check_expr(stmt.cond, scope), stmt.cond)
            self._check_statement(stmt.then_branch, scope)
            if stmt.else_branch is not None:
                self._check_statement(stmt.else_branch, scope)
        elif isinstance(stmt, ast.While):
            self._require_scalar(self._check_expr(stmt.cond, scope), stmt.cond)
            self._in_loop(stmt.body, scope)
        elif isinstance(stmt, ast.DoWhile):
            self._in_loop(stmt.body, scope)
            self._require_scalar(self._check_expr(stmt.cond, scope), stmt.cond)
        elif isinstance(stmt, ast.For):
            inner = Scope(scope)
            if isinstance(stmt.init, ast.DeclStmt):
                for decl in stmt.init.decls:
                    self._check_local_decl(decl, inner)
            elif isinstance(stmt.init, ast.ExprStmt):
                self._check_expr(stmt.init.expr, inner)
            if stmt.cond is not None:
                self._require_scalar(self._check_expr(stmt.cond, inner), stmt.cond)
            if stmt.update is not None:
                self._check_expr(stmt.update, inner)
            self._in_loop(stmt.body, inner)
        elif isinstance(stmt, ast.Return):
            self._check_return(stmt, scope)
        elif isinstance(stmt, (ast.Break, ast.Continue)):
            if self.loop_depth == 0:
                raise SemanticError(
                    "break/continue outside of a loop", stmt.location
                )
        else:
            raise SemanticError(
                "unhandled statement {}".format(type(stmt).__name__), stmt.location
            )

    def _in_loop(self, body, scope):
        self.loop_depth += 1
        self._check_statement(body, scope)
        self.loop_depth -= 1

    def _check_local_decl(self, decl, scope):
        symbol = Symbol(decl.name, decl.var_type, SymbolKind.LOCAL, decl.location)
        if decl.init is not None:
            if decl.var_type.is_array():
                raise SemanticError(
                    "array locals may not be initialized", decl.location
                )
            init_type = self._check_expr(decl.init, scope)
            self._note_decay_escape(decl.init, init_type)
            self._check_assignable(decl.var_type, init_type, decl.init)
        scope.declare(symbol)
        decl.symbol = symbol

    def _check_return(self, stmt, scope):
        expected = self.current_function.return_type
        if stmt.value is None:
            if not expected.is_void():
                raise SemanticError(
                    "non-void function must return a value", stmt.location
                )
            return
        if expected.is_void():
            raise SemanticError(
                "void function may not return a value", stmt.location
            )
        actual = self._check_expr(stmt.value, scope)
        self._note_decay_escape(stmt.value, actual)
        self._check_assignable(expected, actual, stmt.value)

    # ------------------------------------------------------------------
    # Expressions.
    # ------------------------------------------------------------------

    def _check_expr(self, expr, scope):
        checker = _EXPR_CHECKERS.get(type(expr))
        if checker is None:
            raise SemanticError(
                "unhandled expression {}".format(type(expr).__name__),
                expr.location,
            )
        expr.type = checker(self, expr, scope)
        return expr.type

    def _check_int_lit(self, expr, scope):
        return INT

    def _check_var_ref(self, expr, scope):
        symbol = scope.lookup(expr.name)
        if symbol is None:
            raise SemanticError(
                "use of undeclared name '{}'".format(expr.name), expr.location
            )
        if symbol.kind is SymbolKind.FUNCTION:
            raise SemanticError(
                "function '{}' used as a value".format(expr.name), expr.location
            )
        expr.symbol = symbol
        return symbol.type

    def _check_binary(self, expr, scope):
        left = self._check_expr(expr.left, scope)
        right = self._check_expr(expr.right, scope)
        op = expr.op
        if op in ("&&", "||"):
            self._require_scalar(left, expr.left)
            self._require_scalar(right, expr.right)
            return INT
        if op in ("==", "!=", "<", "<=", ">", ">="):
            self._require_comparable(left, right, expr)
            return INT
        left_d = left.decayed()
        right_d = right.decayed()
        self._note_decay_escape(expr.left, left)
        self._note_decay_escape(expr.right, right)
        if op == "+":
            if left_d.is_pointer() and right_d.is_int():
                return left_d
            if left_d.is_int() and right_d.is_pointer():
                return right_d
        if op == "-":
            if left_d.is_pointer() and right_d.is_int():
                return left_d
            if left_d.is_pointer() and right_d.is_pointer():
                return INT
        if left_d.is_int() and right_d.is_int():
            return INT
        raise SemanticError(
            "invalid operands to '{}': {} and {}".format(op, left, right),
            expr.location,
        )

    def _check_unary(self, expr, scope):
        operand = self._check_expr(expr.operand, scope)
        if expr.op in ("-", "!"):
            if not operand.decayed().is_int():
                raise SemanticError(
                    "operand of '{}' must be int, got {}".format(expr.op, operand),
                    expr.location,
                )
            return INT
        raise SemanticError("unknown unary '{}'".format(expr.op), expr.location)

    def _check_assign(self, expr, scope):
        target_type = self._check_lvalue(expr.target, scope)
        value_type = self._check_expr(expr.value, scope)
        self._note_decay_escape(expr.value, value_type)
        self._check_assignable(target_type, value_type, expr.value)
        return target_type

    def _check_lvalue(self, target, scope):
        if isinstance(target, ast.VarRef):
            target_type = self._check_expr(target, scope)
            if target_type.is_array():
                raise SemanticError(
                    "cannot assign to array '{}'".format(target.name),
                    target.location,
                )
            return target_type
        if isinstance(target, ast.Index):
            return self._check_expr(target, scope)
        if isinstance(target, ast.Deref):
            return self._check_expr(target, scope)
        raise SemanticError("expression is not assignable", target.location)

    def _check_index(self, expr, scope):
        base = self._check_expr(expr.base, scope)
        index = self._check_expr(expr.index, scope)
        if not index.decayed().is_int():
            raise SemanticError("array index must be int", expr.index.location)
        if base.is_array():
            return base.element
        if base.is_pointer():
            return base.element
        raise SemanticError(
            "subscripted value is neither array nor pointer", expr.location
        )

    def _check_deref(self, expr, scope):
        pointer = self._check_expr(expr.pointer, scope)
        decayed = pointer.decayed()
        self._note_decay_escape(expr.pointer, pointer)
        if not decayed.is_pointer():
            raise SemanticError(
                "cannot dereference non-pointer {}".format(pointer), expr.location
            )
        return decayed.element

    def _check_addr_of(self, expr, scope):
        operand = expr.operand
        if isinstance(operand, ast.VarRef):
            operand_type = self._check_expr(operand, scope)
            if operand_type.is_array():
                # &a is the same word address as a itself in MiniC.
                operand.symbol.escapes = True
                return PointerType(operand_type.element)
            operand.symbol.address_taken = True
            if operand_type.is_pointer():
                raise SemanticError(
                    "MiniC has no pointer-to-pointer type", expr.location
                )
            return PointerType(operand_type)
        if isinstance(operand, ast.Index):
            element = self._check_expr(operand, scope)
            self._note_decay_escape(operand.base, operand.base.type)
            return PointerType(element)
        raise SemanticError(
            "'&' requires a variable or array element", expr.location
        )

    def _check_call(self, expr, scope):
        intrinsic = INTRINSICS.get(expr.name)
        if intrinsic is not None:
            param_types, result = intrinsic
        else:
            symbol = self.global_scope.lookup(expr.name)
            if symbol is None or symbol.kind is not SymbolKind.FUNCTION:
                raise SemanticError(
                    "call to undeclared function '{}'".format(expr.name),
                    expr.location,
                )
            expr.symbol = symbol
            param_types, result = symbol.param_types, symbol.return_type
        if len(expr.args) != len(param_types):
            raise SemanticError(
                "'{}' expects {} arguments, got {}".format(
                    expr.name, len(param_types), len(expr.args)
                ),
                expr.location,
            )
        for arg, expected in zip(expr.args, param_types):
            actual = self._check_expr(arg, scope)
            self._note_decay_escape(arg, actual)
            self._check_assignable(expected, actual, arg)
        return result

    # ------------------------------------------------------------------
    # Type rules.
    # ------------------------------------------------------------------

    def _check_assignable(self, target, value, node):
        value_d = value.decayed()
        if target.is_int() and value_d.is_int():
            return
        if target.is_pointer() and value_d.is_pointer():
            if target == value_d:
                return
        if target.is_pointer() and isinstance(node, ast.IntLit) and node.value == 0:
            return  # Null pointer constant.
        raise SemanticError(
            "cannot assign {} to {}".format(value, target),
            getattr(node, "location", None),
        )

    def _require_scalar(self, found, node):
        if not found.decayed().is_scalar():
            raise SemanticError(
                "expected a scalar value, got {}".format(found), node.location
            )

    def _require_comparable(self, left, right, expr):
        left_d = left.decayed()
        right_d = right.decayed()
        self._note_decay_escape(expr.left, left)
        self._note_decay_escape(expr.right, right)
        if left_d.is_int() and right_d.is_int():
            return
        if left_d.is_pointer() and right_d.is_pointer():
            return
        if left_d.is_pointer() and isinstance(expr.right, ast.IntLit):
            return
        if right_d.is_pointer() and isinstance(expr.left, ast.IntLit):
            return
        raise SemanticError(
            "cannot compare {} with {}".format(left, right), expr.location
        )

    def _note_decay_escape(self, node, node_type):
        """Record that an array's base address leaked into pointer context."""
        if (
            node_type is not None
            and node_type.is_array()
            and isinstance(node, ast.VarRef)
            and node.symbol is not None
        ):
            node.symbol.escapes = True


_EXPR_CHECKERS = {
    ast.IntLit: SemanticAnalyzer._check_int_lit,
    ast.VarRef: SemanticAnalyzer._check_var_ref,
    ast.Binary: SemanticAnalyzer._check_binary,
    ast.Unary: SemanticAnalyzer._check_unary,
    ast.Assign: SemanticAnalyzer._check_assign,
    ast.Index: SemanticAnalyzer._check_index,
    ast.Deref: SemanticAnalyzer._check_deref,
    ast.AddrOf: SemanticAnalyzer._check_addr_of,
    ast.Call: SemanticAnalyzer._check_call,
}


def analyze(program):
    """Type-check and resolve ``program``; returns :class:`AnalyzedProgram`."""
    return SemanticAnalyzer(program).analyze()
