"""Recursive-descent parser for MiniC.

The grammar is a conventional C subset.  ``++``, ``--``, ``+=`` and
``-=`` are accepted as syntactic sugar and desugared to plain
assignments during parsing; both prefix and postfix ``++``/``--``
evaluate to the *new* value, so they should only appear where the value
is discarded (statements and ``for`` updates), which is how every
shipped benchmark uses them.
"""

from repro.lang import ast_nodes as ast
from repro.lang.errors import ParseError
from repro.lang.lexer import tokenize
from repro.lang.tokens import TokenKind
from repro.lang.types import INT, VOID, ArrayType, PointerType

#: Binary operator precedence tiers, weakest first.
_BINARY_TIERS = [
    [(TokenKind.OR_OR, "||")],
    [(TokenKind.AND_AND, "&&")],
    [(TokenKind.EQ, "=="), (TokenKind.NE, "!=")],
    [
        (TokenKind.LT, "<"),
        (TokenKind.LE, "<="),
        (TokenKind.GT, ">"),
        (TokenKind.GE, ">="),
    ],
    [(TokenKind.PLUS, "+"), (TokenKind.MINUS, "-")],
    [(TokenKind.STAR, "*"), (TokenKind.SLASH, "/"), (TokenKind.PERCENT, "%")],
]


class Parser:
    """Parses a token stream into a :class:`repro.lang.ast_nodes.Program`."""

    def __init__(self, tokens):
        self.tokens = tokens
        self.index = 0

    # ------------------------------------------------------------------
    # Token stream helpers.
    # ------------------------------------------------------------------

    def _peek(self, offset=0):
        index = min(self.index + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def _at(self, kind):
        return self._peek().kind is kind

    def _accept(self, kind):
        if self._at(kind):
            token = self._peek()
            self.index += 1
            return token
        return None

    def _expect(self, kind, what=None):
        token = self._accept(kind)
        if token is None:
            found = self._peek()
            wanted = what or kind.value
            raise ParseError(
                "expected {} but found {}".format(wanted, found),
                found.location,
            )
        return token

    # ------------------------------------------------------------------
    # Top level.
    # ------------------------------------------------------------------

    def parse_program(self):
        items = []
        while not self._at(TokenKind.EOF):
            items.extend(self._parse_top_level_item())
        return ast.Program(items)

    def _parse_top_level_item(self):
        loc = self._peek().location
        if self._accept(TokenKind.KW_VOID):
            return [self._parse_function(VOID, loc)]
        self._expect(TokenKind.KW_INT, "'int' or 'void'")
        # Distinguish `int f(...)` / `int *f(...)` from `int x...;` by
        # looking past the optional '*' and the identifier.
        offset = 1 if self._at(TokenKind.STAR) else 0
        if (
            self._peek(offset).kind is TokenKind.IDENT
            and self._peek(offset + 1).kind is TokenKind.LPAREN
        ):
            if offset:
                self._expect(TokenKind.STAR)
                return [self._parse_function(PointerType(INT), loc)]
            return [self._parse_function(INT, loc)]
        decls = self._parse_declarator_list(loc)
        self._expect(TokenKind.SEMICOLON)
        return decls

    def _parse_function(self, return_type, loc):
        name = self._expect(TokenKind.IDENT).text
        self._expect(TokenKind.LPAREN)
        params = []
        if not self._at(TokenKind.RPAREN):
            params.append(self._parse_param())
            while self._accept(TokenKind.COMMA):
                params.append(self._parse_param())
        self._expect(TokenKind.RPAREN)
        body = self._parse_block()
        return ast.FuncDef(name, return_type, params, body, loc)

    def _parse_param(self):
        loc = self._peek().location
        self._expect(TokenKind.KW_INT)
        if self._accept(TokenKind.STAR):
            name = self._expect(TokenKind.IDENT).text
            return ast.Param(name, PointerType(INT), loc)
        name = self._expect(TokenKind.IDENT).text
        if self._accept(TokenKind.LBRACKET):
            self._expect(TokenKind.RBRACKET)
            return ast.Param(name, ArrayType(INT, None), loc)
        return ast.Param(name, INT, loc)

    def _parse_declarator_list(self, loc):
        """Parse ``declarator (, declarator)*`` after an ``int`` keyword."""
        decls = [self._parse_declarator(loc)]
        while self._accept(TokenKind.COMMA):
            decls.append(self._parse_declarator(self._peek().location))
        return decls

    def _parse_declarator(self, loc):
        if self._accept(TokenKind.STAR):
            name = self._expect(TokenKind.IDENT).text
            init = None
            if self._accept(TokenKind.ASSIGN):
                init = self._parse_expr()
            return ast.VarDecl(name, PointerType(INT), init, loc)
        name = self._expect(TokenKind.IDENT).text
        if self._accept(TokenKind.LBRACKET):
            size_token = self._expect(TokenKind.INT_LITERAL, "array size")
            self._expect(TokenKind.RBRACKET)
            init = None
            if self._accept(TokenKind.ASSIGN):
                # Parsed so the semantic analyzer can give a better error.
                init = self._parse_expr()
            return ast.VarDecl(name, ArrayType(INT, size_token.value), init, loc)
        init = None
        if self._accept(TokenKind.ASSIGN):
            init = self._parse_expr()
        return ast.VarDecl(name, INT, init, loc)

    # ------------------------------------------------------------------
    # Statements.
    # ------------------------------------------------------------------

    def _parse_block(self):
        loc = self._expect(TokenKind.LBRACE).location
        statements = []
        while not self._at(TokenKind.RBRACE):
            statements.append(self._parse_statement())
        self._expect(TokenKind.RBRACE)
        return ast.Block(statements, loc)

    def _parse_statement(self):
        token = self._peek()
        kind = token.kind
        if kind is TokenKind.LBRACE:
            return self._parse_block()
        if kind is TokenKind.KW_INT:
            return self._parse_decl_stmt()
        if kind is TokenKind.KW_IF:
            return self._parse_if()
        if kind is TokenKind.KW_WHILE:
            return self._parse_while()
        if kind is TokenKind.KW_DO:
            return self._parse_do_while()
        if kind is TokenKind.KW_FOR:
            return self._parse_for()
        if kind is TokenKind.KW_RETURN:
            return self._parse_return()
        if kind is TokenKind.KW_BREAK:
            self.index += 1
            self._expect(TokenKind.SEMICOLON)
            return ast.Break(token.location)
        if kind is TokenKind.KW_CONTINUE:
            self.index += 1
            self._expect(TokenKind.SEMICOLON)
            return ast.Continue(token.location)
        if self._accept(TokenKind.SEMICOLON):
            return ast.Block([], token.location)
        expr = self._parse_expr()
        self._expect(TokenKind.SEMICOLON)
        return ast.ExprStmt(expr, token.location)

    def _parse_decl_stmt(self):
        loc = self._expect(TokenKind.KW_INT).location
        decls = self._parse_declarator_list(loc)
        self._expect(TokenKind.SEMICOLON)
        return ast.DeclStmt(decls, loc)

    def _parse_if(self):
        loc = self._expect(TokenKind.KW_IF).location
        self._expect(TokenKind.LPAREN)
        cond = self._parse_expr()
        self._expect(TokenKind.RPAREN)
        then_branch = self._parse_statement()
        else_branch = None
        if self._accept(TokenKind.KW_ELSE):
            else_branch = self._parse_statement()
        return ast.If(cond, then_branch, else_branch, loc)

    def _parse_while(self):
        loc = self._expect(TokenKind.KW_WHILE).location
        self._expect(TokenKind.LPAREN)
        cond = self._parse_expr()
        self._expect(TokenKind.RPAREN)
        body = self._parse_statement()
        return ast.While(cond, body, loc)

    def _parse_do_while(self):
        loc = self._expect(TokenKind.KW_DO).location
        body = self._parse_statement()
        self._expect(TokenKind.KW_WHILE)
        self._expect(TokenKind.LPAREN)
        cond = self._parse_expr()
        self._expect(TokenKind.RPAREN)
        self._expect(TokenKind.SEMICOLON)
        return ast.DoWhile(body, cond, loc)

    def _parse_for(self):
        loc = self._expect(TokenKind.KW_FOR).location
        self._expect(TokenKind.LPAREN)
        init = None
        if self._at(TokenKind.KW_INT):
            init = self._parse_decl_stmt()
        elif not self._accept(TokenKind.SEMICOLON):
            init = ast.ExprStmt(self._parse_expr(), loc)
            self._expect(TokenKind.SEMICOLON)
        cond = None
        if not self._at(TokenKind.SEMICOLON):
            cond = self._parse_expr()
        self._expect(TokenKind.SEMICOLON)
        update = None
        if not self._at(TokenKind.RPAREN):
            update = self._parse_expr()
        self._expect(TokenKind.RPAREN)
        body = self._parse_statement()
        return ast.For(init, cond, update, body, loc)

    def _parse_return(self):
        loc = self._expect(TokenKind.KW_RETURN).location
        value = None
        if not self._at(TokenKind.SEMICOLON):
            value = self._parse_expr()
        self._expect(TokenKind.SEMICOLON)
        return ast.Return(value, loc)

    # ------------------------------------------------------------------
    # Expressions.
    # ------------------------------------------------------------------

    def _parse_expr(self):
        return self._parse_assignment()

    def _parse_assignment(self):
        left = self._parse_binary(0)
        loc = self._peek().location
        if self._accept(TokenKind.ASSIGN):
            value = self._parse_assignment()
            return ast.Assign(left, value, loc)
        if self._accept(TokenKind.PLUS_ASSIGN):
            value = self._parse_assignment()
            return ast.Assign(left, ast.Binary("+", left, value, loc), loc)
        if self._accept(TokenKind.MINUS_ASSIGN):
            value = self._parse_assignment()
            return ast.Assign(left, ast.Binary("-", left, value, loc), loc)
        return left

    def _parse_binary(self, tier):
        if tier >= len(_BINARY_TIERS):
            return self._parse_unary()
        left = self._parse_binary(tier + 1)
        while True:
            matched = False
            for kind, op in _BINARY_TIERS[tier]:
                token = self._accept(kind)
                if token is not None:
                    right = self._parse_binary(tier + 1)
                    left = ast.Binary(op, left, right, token.location)
                    matched = True
                    break
            if not matched:
                return left

    def _parse_unary(self):
        token = self._peek()
        if self._accept(TokenKind.MINUS):
            return ast.Unary("-", self._parse_unary(), token.location)
        if self._accept(TokenKind.BANG):
            return ast.Unary("!", self._parse_unary(), token.location)
        if self._accept(TokenKind.STAR):
            return ast.Deref(self._parse_unary(), token.location)
        if self._accept(TokenKind.AMP):
            return ast.AddrOf(self._parse_unary(), token.location)
        if self._accept(TokenKind.PLUS_PLUS):
            target = self._parse_unary()
            one = ast.IntLit(1, token.location)
            return ast.Assign(
                target, ast.Binary("+", target, one, token.location), token.location
            )
        if self._accept(TokenKind.MINUS_MINUS):
            target = self._parse_unary()
            one = ast.IntLit(1, token.location)
            return ast.Assign(
                target, ast.Binary("-", target, one, token.location), token.location
            )
        return self._parse_postfix()

    def _parse_postfix(self):
        expr = self._parse_primary()
        while True:
            token = self._peek()
            if self._accept(TokenKind.LBRACKET):
                index = self._parse_expr()
                self._expect(TokenKind.RBRACKET)
                expr = ast.Index(expr, index, token.location)
            elif self._accept(TokenKind.PLUS_PLUS):
                one = ast.IntLit(1, token.location)
                expr = ast.Assign(
                    expr, ast.Binary("+", expr, one, token.location), token.location
                )
            elif self._accept(TokenKind.MINUS_MINUS):
                one = ast.IntLit(1, token.location)
                expr = ast.Assign(
                    expr, ast.Binary("-", expr, one, token.location), token.location
                )
            else:
                return expr

    def _parse_primary(self):
        token = self._peek()
        if self._accept(TokenKind.INT_LITERAL):
            return ast.IntLit(token.value, token.location)
        if self._at(TokenKind.IDENT):
            if self._peek(1).kind is TokenKind.LPAREN:
                return self._parse_call()
            self.index += 1
            return ast.VarRef(token.text, token.location)
        if self._accept(TokenKind.LPAREN):
            expr = self._parse_expr()
            self._expect(TokenKind.RPAREN)
            return expr
        raise ParseError(
            "expected an expression but found {}".format(token), token.location
        )

    def _parse_call(self):
        name_token = self._expect(TokenKind.IDENT)
        self._expect(TokenKind.LPAREN)
        args = []
        if not self._at(TokenKind.RPAREN):
            args.append(self._parse_expr())
            while self._accept(TokenKind.COMMA):
                args.append(self._parse_expr())
        self._expect(TokenKind.RPAREN)
        return ast.Call(name_token.text, args, name_token.location)


def parse_program(source, filename="<minic>"):
    """Parse MiniC ``source`` into an undecorated AST."""
    return Parser(tokenize(source, filename)).parse_program()
