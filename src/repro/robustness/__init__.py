"""Robustness machinery: fuzzing, reduction, hardened execution.

The differential claim at the heart of this reproduction — unified and
conventional annotations execute step-identical programs, and the
tag-only cache, the Belady MIN and the data-carrying functional cache
agree on the same reference stream — is only as strong as the inputs
it has been checked on.  This package manufactures those inputs:

* :mod:`repro.robustness.generator` — a seeded random MiniC program
  generator (scalars, arrays, pointers, ``&x``, calls, loops) paired
  with an independent Python model that predicts the exact output;
* :mod:`repro.robustness.differential` — one program, every pipeline
  configuration and cache model, every agreement assertion;
* :mod:`repro.robustness.reducer` — delta-debugging reduction of a
  failing program to a minimal reproducer;
* :mod:`repro.robustness.driver` — the ``repro-fuzz`` CLI: fuzz,
  shrink, and save crashes with stage/seed/traceback metadata.
"""

from repro.robustness.differential import DifferentialError, check_source
from repro.robustness.generator import GeneratedProgram, generate_program
from repro.robustness.reducer import reduce_source

__all__ = [
    "DifferentialError",
    "GeneratedProgram",
    "check_source",
    "generate_program",
    "reduce_source",
]
