"""Differential execution: one program, every configuration.

A fuzzed program is only interesting evidence if we extract every
agreement the design promises.  :func:`check_source` compiles one
MiniC program under the full cross-product of annotation scheme and
promotion level (plus the hybrid and alias-merging refinements) and
asserts:

* **Functional equivalence** — every configuration prints the same
  output and returns the same value (and matches the generator's
  Python model when one is supplied).  Register promotion and
  bypass/kill annotation must never change observable semantics.
* **Event-stream agreement** — at equal promotion, the unified and
  conventional schemes execute the *same instructions*: identical step
  counts, identical data-address streams, identical read/write
  pattern.  Only the bypass/kill bits may differ, because annotation
  is metadata, not code motion.
* **Cache-model agreement** — on the unified/aggressive trace, the
  data-carrying functional cache produces the same program output,
  the same final memory as flat memory, and *exactly* the same
  statistics as the tag-only simulator replaying the recorded trace.
* **Multi-replay agreement** — the single-pass multi-configuration
  replay core (:func:`repro.cache.replay.replay_trace_multi`) produces
  bit-identical statistics to the serial replays for the unified, the
  annotation-blind, and the MIN configuration of the same trace; every
  fuzzed program thereby exercises the parallel engine's fast path
  against the reference path.
* **Sweep-engine agreement** — the one-pass sweep dispatcher
  (:func:`repro.cache.stackdist.replay_trace_sweep`) reconstructs the
  same configurations bit-identically: LRU through the hole-stack
  automaton's per-set distance histograms, FIFO and MIN through the
  single-pass set-count stackers, and a second pass under the forced
  ``vectorized`` engine holds the set-major array kernels
  (:mod:`repro.cache.vectorized`) to the same answers — so every
  fuzzed trace cross-examines all one-pass engines against the
  reference simulator.
* **Superinstruction agreement** — the fused closure VM
  (:meth:`repro.vm.machine.Machine._fuse_block`) re-runs the heaviest
  configuration through the per-step
  :class:`~repro.vm.reference.ReferenceMachine` and must match it on
  output, return value, step count, and the full annotated reference
  trace; every fuzzed program thereby exercises the superinstruction
  compiler's run detection, jump threading, and fuel accounting.
* **Hierarchy agreement** — the offline non-inclusive L1/L2 scorer
  (:func:`repro.cache.hierarchy.hierarchy_stats`) is bit-identical to
  the online chained :class:`~repro.cache.hierarchy.HierarchyCache`
  for both bypass levels, and the inclusive discipline's derived
  local counters stay within their invariants.
* **MIN sanity** — Belady MIN on the same trace agrees with LRU on
  every policy-independent counter and never misses more than LRU.
* **Static-analysis agreement** — the :mod:`repro.staticcheck`
  must/may classifier is sound on this program: the annotation linter
  reports no violations, and replaying representative configurations
  under two cache geometries contradicts no *always-hit*/*always-miss*
  claim.  Every fuzzed program thereby validates the static analysis.

Violations raise :class:`DifferentialError` with a ``kind`` tag so the
fuzz driver can bucket failures; static-analysis failures raise
:class:`repro.staticcheck.StaticCheckError` (stage ``staticcheck``)
so reduced reproducers distinguish analysis unsoundness from pipeline
bugs.
"""

from repro.cache.belady import simulate_min
from repro.cache.cache import CacheConfig
from repro.cache.functional import DataCachedMemory
from repro.cache.hierarchy import (
    HierarchyCache,
    hierarchy_stats,
    parse_hierarchy,
)
from repro.cache.replay import MinConfig, replay_trace, replay_trace_multi
from repro.cache.stackdist import replay_trace_sweep
from repro.errors import ReproError
from repro.regalloc.promotion import PromotionLevel
from repro.unified.pipeline import CompilationOptions, Scheme, compile_source
from repro.vm.memory import RecordingMemory
from repro.vm.trace import FLAG_BYPASS, FLAG_KILL, FLAG_WRITE

#: Fuel budget for each fuzzed run; generated programs are tiny, so a
#: run that gets anywhere near this is itself a bug.
DEFAULT_FUZZ_MAX_STEPS = 5_000_000

#: Counters that depend only on the reference stream's flags, never on
#: the replacement policy — MIN and LRU must agree on all of them.
POLICY_INDEPENDENT_COUNTERS = (
    "refs_total",
    "reads",
    "writes",
    "refs_cached",
    "refs_bypassed",
    "bypass_writes",
    "kills",
)


class DifferentialError(ReproError):
    """Two configurations (or models) disagreed about one program."""

    stage = "differential"

    def __init__(self, kind, message):
        self.kind = kind
        super().__init__("[{}] {}".format(kind, message))


def _configs():
    """(name, options) pairs covering the scheme/promotion matrix."""
    pairs = []
    for promotion in (
        PromotionLevel.NONE,
        PromotionLevel.MODEST,
        PromotionLevel.AGGRESSIVE,
    ):
        for scheme in (Scheme.UNIFIED, Scheme.CONVENTIONAL):
            name = "{}/{}".format(scheme.value, promotion.value)
            pairs.append(
                (
                    name,
                    CompilationOptions(scheme=scheme, promotion=promotion),
                )
            )
    pairs.append(
        (
            "hybrid/aggressive",
            CompilationOptions(
                scheme=Scheme.UNIFIED,
                promotion=PromotionLevel.AGGRESSIVE,
                bypass_user_refs=False,
            ),
        )
    )
    pairs.append(
        (
            "merged/aggressive",
            CompilationOptions(
                scheme=Scheme.UNIFIED,
                promotion=PromotionLevel.AGGRESSIVE,
                refine_points_to=True,
                merge_true_aliases=True,
            ),
        )
    )
    return pairs


class _Run:
    __slots__ = ("name", "options", "program", "result", "trace", "words")

    def __init__(self, name, options, program, result, memory):
        self.name = name
        self.options = options
        self.program = program
        self.result = result
        self.trace = memory.buffer
        self.words = memory.flat.words


def _write_pattern(trace):
    return [flags & FLAG_WRITE for flags in trace.flags]


def check_source(
    source,
    expected_output=None,
    expected_return=None,
    max_steps=DEFAULT_FUZZ_MAX_STEPS,
    cache_words=16,
    associativity=2,
):
    """Run every differential assertion over ``source``.

    Returns a summary dict (config count, trace length) on success;
    raises :class:`DifferentialError` on any disagreement.  Compile
    and VM errors propagate unchanged, already stage-tagged.
    """
    runs = []
    for name, options in _configs():
        program = compile_source(source, options)
        memory = RecordingMemory()
        result = program.run(memory=memory, max_steps=max_steps)
        runs.append(_Run(name, options, program, result, memory))

    baseline = runs[0]
    if expected_output is not None:
        if baseline.result.output != list(expected_output):
            raise DifferentialError(
                "model-output",
                "{} printed {!r}, model predicted {!r}".format(
                    baseline.name, baseline.result.output, list(expected_output)
                ),
            )
    if expected_return is not None:
        if baseline.result.return_value != expected_return:
            raise DifferentialError(
                "model-return",
                "{} returned {!r}, model predicted {!r}".format(
                    baseline.name, baseline.result.return_value, expected_return
                ),
            )

    for run in runs[1:]:
        if run.result.output != baseline.result.output:
            raise DifferentialError(
                "output-mismatch",
                "{} printed {!r} but {} printed {!r}".format(
                    run.name,
                    run.result.output,
                    baseline.name,
                    baseline.result.output,
                ),
            )
        if run.result.return_value != baseline.result.return_value:
            raise DifferentialError(
                "return-mismatch",
                "{} returned {!r} but {} returned {!r}".format(
                    run.name,
                    run.result.return_value,
                    baseline.name,
                    baseline.result.return_value,
                ),
            )

    by_name = {run.name: run for run in runs}
    stream_pairs = [
        ("unified/{}".format(level), "conventional/{}".format(level))
        for level in ("none", "modest", "aggressive")
    ]
    stream_pairs.append(("unified/aggressive", "hybrid/aggressive"))
    for left_name, right_name in stream_pairs:
        left, right = by_name[left_name], by_name[right_name]
        if left.result.steps != right.result.steps:
            raise DifferentialError(
                "step-mismatch",
                "{} took {} steps, {} took {}".format(
                    left_name,
                    left.result.steps,
                    right_name,
                    right.result.steps,
                ),
            )
        if left.trace.addresses != right.trace.addresses:
            raise DifferentialError(
                "address-stream",
                "{} and {} disagree on the data-address stream "
                "({} vs {} events)".format(
                    left_name, right_name, len(left.trace), len(right.trace)
                ),
            )
        if _write_pattern(left.trace) != _write_pattern(right.trace):
            raise DifferentialError(
                "write-pattern",
                "{} and {} disagree on which references are writes".format(
                    left_name, right_name
                ),
            )

    _check_cache_models(
        by_name["unified/aggressive"], baseline, cache_words, associativity
    )
    _check_superinstructions(by_name["unified/aggressive"], max_steps)
    static_events = _check_static_analysis(
        runs, by_name, cache_words, associativity
    )
    return {
        "configs": len(runs),
        "trace_events": len(by_name["unified/aggressive"].trace),
        "steps": baseline.result.steps,
        "static_checked_events": static_events,
    }


#: Configurations whose programs get the static must/may treatment in
#: every fuzz iteration: full memory traffic (none), the heaviest
#: annotation mix (aggressive), the conventional baseline (exercises
#: the must analysis), and the points-to-refined variant (exercises
#: the refined classification the linter leans on).
STATIC_CHECKED_CONFIGS = (
    "unified/none",
    "unified/aggressive",
    "conventional/none",
    "merged/aggressive",
)


def _check_static_analysis(runs, by_name, cache_words, associativity):
    """Lint every configuration; cross-validate representative ones
    under two geometries.  Raises ``StaticCheckError`` on failure."""
    from repro.staticcheck import StaticCheckError, cross_validate, lint_module

    for run in runs:
        violations = lint_module(run.program.module, run.program.alias)
        if violations:
            raise StaticCheckError(
                "lint",
                "{}: {} annotation violation(s); first: {}".format(
                    run.name, len(violations), violations[0]
                ),
            )

    geometries = (
        CacheConfig(
            size_words=cache_words,
            line_words=1,
            associativity=associativity,
            policy="lru",
        ),
        CacheConfig(size_words=256, line_words=1, associativity=4,
                    policy="lru"),
    )
    checked = 0
    for name in STATIC_CHECKED_CONFIGS:
        run = by_name[name]
        for index, geometry in enumerate(geometries):
            # The exact refinement runs on the first (fuzz-chosen)
            # geometry with a small budget: every exact-hit/-miss/
            # -persistent verdict it mints on generator programs gets
            # audited per event by the same validator, and budget
            # exhaustion must degrade gracefully rather than fail.
            report = cross_validate(
                run.program,
                geometry,
                max_steps=run.result.steps + 1,
                raise_on_mismatch=True,
                exact=index == 0,
                exact_budget=20_000,
            )
            checked += report.events_classified
    return checked


def _check_cache_models(run, baseline, cache_words, associativity):
    config = CacheConfig(
        size_words=cache_words,
        line_words=1,
        associativity=associativity,
        policy="lru",
    )

    functional = DataCachedMemory(config)
    result = run.program.run(
        memory=functional, max_steps=run.result.steps + 1
    )
    if result.output != baseline.result.output:
        raise DifferentialError(
            "functional-output",
            "data cache printed {!r}, flat memory printed {!r}".format(
                result.output, baseline.result.output
            ),
        )
    if result.return_value != baseline.result.return_value:
        raise DifferentialError(
            "functional-return",
            "data cache returned {!r}, flat memory returned {!r}".format(
                result.return_value, baseline.result.return_value
            ),
        )

    functional.flush()
    for address in set(run.words) | set(functional.main):
        flat_value = run.words.get(address, 0)
        cached_value = functional.main.get(address, 0)
        if flat_value != cached_value:
            raise DifferentialError(
                "functional-memory",
                "after flush, address {} holds {} under the data cache "
                "but {} under flat memory".format(
                    address, cached_value, flat_value
                ),
            )

    replayed = replay_trace(run.trace, config)
    if functional.stats.as_dict() != replayed.as_dict():
        diff = {
            key: (functional.stats.as_dict()[key], replayed.as_dict()[key])
            for key in functional.stats.as_dict()
            if functional.stats.as_dict()[key] != replayed.as_dict().get(key)
        }
        raise DifferentialError(
            "stats-mismatch",
            "functional cache and tag-only replay disagree: {!r}".format(diff),
        )

    min_stats = simulate_min(run.trace, config)
    lru = replayed.as_dict()
    minimum = min_stats.as_dict()
    for counter in POLICY_INDEPENDENT_COUNTERS:
        if minimum[counter] != lru[counter]:
            raise DifferentialError(
                "min-counter",
                "MIN and LRU disagree on policy-independent counter "
                "{}: {} vs {}".format(counter, minimum[counter], lru[counter]),
            )
    if min_stats.misses > replayed.misses:
        raise DifferentialError(
            "min-not-optimal",
            "MIN missed {} times, LRU only {}".format(
                min_stats.misses, replayed.misses
            ),
        )

    blind = CacheConfig(
        size_words=cache_words,
        line_words=1,
        associativity=associativity,
        policy="lru",
        honor_bypass=False,
        honor_kill=False,
    )
    fifo = CacheConfig(
        size_words=cache_words,
        line_words=1,
        associativity=associativity,
        policy="fifo",
    )
    serial = {
        "unified": lru,
        "conventional": replay_trace(run.trace, blind).as_dict(),
        "min": minimum,
        "fifo": replay_trace(run.trace, fifo).as_dict(),
    }
    labels = ("unified", "conventional", "min", "fifo")
    battery = [config, blind, MinConfig(config), fifo]
    # The predictive-policy axis: random plus the whole zoo, each
    # replayed serially and held to the batch engines below.
    for zoo_policy in ("random", "srrip", "brrip", "drrip", "ship",
                       "hawkeye"):
        zoo_config = CacheConfig(
            size_words=cache_words,
            line_words=1,
            associativity=associativity,
            policy=zoo_policy,
        )
        serial[zoo_policy] = replay_trace(run.trace, zoo_config).as_dict()
        labels = labels + (zoo_policy,)
        battery.append(zoo_config)
    multi = replay_trace_multi(run.trace, battery)
    for label, stats in zip(labels, multi):
        if stats.as_dict() != serial[label]:
            diff = {
                key: (stats.as_dict()[key], serial[label][key])
                for key in serial[label]
                if stats.as_dict().get(key) != serial[label][key]
            }
            raise DifferentialError(
                "multi-replay",
                "multi-config replay and serial replay disagree on the "
                "{} configuration: {!r}".format(label, diff),
            )

    # engine="auto" routes LRU through the hole-stack profiler and
    # FIFO/MIN through the single-pass set-count stackers; the forced
    # "vectorized" pass sends the profiled groups through the set-major
    # array kernels instead.  Every fuzzed trace holds all one-pass
    # engines to the serial path.
    for engine in ("auto", "vectorized"):
        swept = replay_trace_sweep(run.trace, battery, engine=engine)
        for label, stats in zip(labels, swept):
            if stats.as_dict() != serial[label]:
                diff = {
                    key: (stats.as_dict()[key], serial[label][key])
                    for key in serial[label]
                    if stats.as_dict().get(key) != serial[label][key]
                }
                raise DifferentialError(
                    "stackdist" if engine == "auto" else "vectorized",
                    "one-pass sweep ({}) and serial replay disagree on "
                    "the {} configuration: {!r}".format(
                        engine, label, diff
                    ),
                )

    _check_hierarchy(run, cache_words, associativity)


def _check_superinstructions(run, max_steps):
    """The fused closure VM versus the per-step reference oracle.

    ``run`` already executed through :class:`~repro.vm.machine.Machine`
    with superinstruction fusion on; re-running its module through
    :class:`~repro.vm.reference.ReferenceMachine` must reproduce the
    printed output, return value, step count, and the entire annotated
    reference trace bit for bit.
    """
    from repro.vm.reference import ReferenceMachine

    memory = RecordingMemory()
    vm = ReferenceMachine(
        run.program.module,
        memory=memory,
        machine=run.program.options.machine,
    )
    result = vm.run(max_steps=max_steps)
    if (
        result.output != run.result.output
        or result.return_value != run.result.return_value
        or result.steps != run.result.steps
    ):
        raise DifferentialError(
            "superinstruction",
            "fused VM and reference interpreter disagree on {}: "
            "output {!r}/{!r}, return {!r}/{!r}, steps {}/{}".format(
                run.name,
                run.result.output, result.output,
                run.result.return_value, result.return_value,
                run.result.steps, result.steps,
            ),
        )
    if (
        memory.buffer.addresses != run.trace.addresses
        or list(memory.buffer.flags) != list(run.trace.flags)
    ):
        raise DifferentialError(
            "superinstruction-trace",
            "fused VM and reference interpreter disagree on the "
            "reference trace of {} ({} vs {} events)".format(
                run.name, len(run.trace), len(memory.buffer)
            ),
        )


def _check_hierarchy(run, cache_words, associativity):
    """The L1/L2 scorers agree with the online chained model."""
    spec_text = "L1:{}x{},L2:{}x{}".format(
        cache_words, associativity, cache_words * 8, associativity * 2
    )
    for bypass_level in ("l1", "both"):
        spec = parse_hierarchy(spec_text, bypass_level=bypass_level)
        offline = hierarchy_stats(run.trace, spec)
        online = HierarchyCache(spec)
        for address, flags in run.trace:
            online.access(
                address,
                bool(flags & FLAG_WRITE),
                bool(flags & FLAG_BYPASS),
                bool(flags & FLAG_KILL),
            )
        online_stats = online.stats()
        for name, stats in offline.levels:
            if stats.as_dict() != online_stats[name].as_dict():
                diff = {
                    key: (stats.as_dict()[key],
                          online_stats[name].as_dict()[key])
                    for key in stats.as_dict()
                    if stats.as_dict()[key]
                    != online_stats[name].as_dict().get(key)
                }
                raise DifferentialError(
                    "hierarchy",
                    "offline non-inclusive scorer and online chained "
                    "hierarchy disagree at {} (bypass_level={}): "
                    "{!r}".format(name, bypass_level, diff),
                )

        inclusive = hierarchy_stats(
            run.trace,
            parse_hierarchy(
                spec_text, inclusion="inclusive", bypass_level=bypass_level
            ),
        )
        if inclusive.levels[0][1] != offline.levels[0][1]:
            raise DifferentialError(
                "hierarchy-l1",
                "the L1 score must not depend on the inclusion "
                "discipline (bypass_level={})".format(bypass_level),
            )
        row = inclusive.as_dict()
        if row["l2_local_hits"] < 0:
            raise DifferentialError(
                "hierarchy-inclusion",
                "inclusive L2 served fewer references than L1 "
                "(local hits {}), violating inclusion".format(
                    row["l2_local_hits"]
                ),
            )
        if not 0.0 <= row["l2_local_miss_rate"] <= 1.0:
            raise DifferentialError(
                "hierarchy-inclusion",
                "inclusive L2 local miss rate {} out of range".format(
                    row["l2_local_miss_rate"]
                ),
            )
