"""The ``repro-fuzz`` driver: generate, check, shrink, archive.

For each seed the driver generates a random MiniC program with its
model-predicted output (:mod:`repro.robustness.generator`), runs the
whole differential battery over it
(:mod:`repro.robustness.differential`), and — when something breaks —
delta-debugs the program down to a minimal reproducer
(:mod:`repro.robustness.reducer`) and archives original, reduction and
stage/seed/traceback metadata under a ``crashes/`` corpus.

``--inject REGEX`` wires in a synthetic failure (any generated program
matching the pattern "fails") so the shrink-and-archive machinery is
itself testable end to end.
"""

import argparse
import json
import os
import re
import sys
import traceback

from repro.errors import ReproError, error_signature
from repro.robustness.differential import (
    DEFAULT_FUZZ_MAX_STEPS,
    check_source,
)
from repro.robustness.generator import generate_program
from repro.robustness.reducer import reduce_source
from repro.unified.pipeline import compile_source


class InjectedFailure(ReproError):
    """A synthetic failure planted by ``--inject`` (testing the driver)."""

    stage = "injected"


#: Pipeline stages that belong to the static-analysis layer rather
#: than the compile→simulate pipeline proper.  Crash metadata carries
#: the resulting family tag so a triager reading a reduced reproducer
#: knows immediately whether the bug is analysis unsoundness (a wrong
#: always-hit/always-miss claim, a lint defect) or a pipeline bug.
STATIC_ANALYSIS_STAGES = frozenset({"staticcheck"})

#: Stages produced by :mod:`repro.faultinject` and the supervised
#: pool's quarantine path.  A crash carrying one of these is the chaos
#: schedule at work (or a hardening gap), never a compiler bug — the
#: family tag keeps injected faults out of real-bug triage queues.
FAULT_INJECTION_STAGES = frozenset({"faultinject", "quarantine"})


def _stage_family(stage):
    if stage in STATIC_ANALYSIS_STAGES:
        return "static-analysis"
    if stage in FAULT_INJECTION_STAGES:
        return "fault-injection"
    return "pipeline"


def _check_one(source, expected_output, expected_return, max_steps, inject):
    if inject is not None and inject.search(source):
        # The reproducer must still be a real program, so reduction
        # cannot cheat by keeping the pattern in unparsable fragments.
        compile_source(source)
        raise InjectedFailure(
            "injected failure: pattern {!r} present".format(inject.pattern)
        )
    check_source(
        source,
        expected_output=expected_output,
        expected_return=expected_return,
        max_steps=max_steps,
    )


def _reduce_failure(source, signature, max_steps, inject, max_evals):
    """Shrink ``source`` to a minimal program with the same signature.

    Model-prediction mismatches cannot be re-checked on candidate
    subsets (the model belongs to the original program), so those come
    back unreduced.
    """
    kind = signature[2]
    if kind is not None and str(kind).startswith("model-"):
        return source

    def predicate(candidate):
        try:
            _check_one(candidate, None, None, max_steps, inject)
        except Exception as error:  # noqa: BLE001 - signature decides
            return error_signature(error) == signature
        return False

    return reduce_source(source, predicate, max_evals=max_evals)


def _save_crash(crashes_dir, record):
    name = "seed{}-{}".format(record["seed"], record["error_type"].lower())
    crash_dir = os.path.join(crashes_dir, name)
    os.makedirs(crash_dir, exist_ok=True)
    with open(os.path.join(crash_dir, "original.mc"), "w") as handle:
        handle.write(record["source"])
    with open(os.path.join(crash_dir, "reduced.mc"), "w") as handle:
        handle.write(record["reduced"])
    meta = {key: record[key] for key in record if key not in ("source", "reduced")}
    with open(os.path.join(crash_dir, "meta.json"), "w") as handle:
        json.dump(meta, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return crash_dir


def run_fuzz(
    programs=500,
    seed=0,
    crashes_dir="crashes",
    max_steps=DEFAULT_FUZZ_MAX_STEPS,
    inject=None,
    reduce_evals=1500,
    log=None,
):
    """Fuzz ``programs`` seeds starting at ``seed``; return failures.

    Every failure is shrunk and archived under ``crashes_dir``.  The
    returned list holds one metadata dict per failing seed.
    """
    inject_re = re.compile(inject) if isinstance(inject, str) else inject
    failures = []
    for index in range(programs):
        program_seed = seed + index
        generated = generate_program(program_seed)
        try:
            _check_one(
                generated.source,
                generated.expected_output,
                generated.expected_return,
                max_steps,
                inject_re,
            )
        except Exception as error:  # noqa: BLE001 - archived, re-reported
            signature = error_signature(error)
            reduced = _reduce_failure(
                generated.source, signature, max_steps, inject_re, reduce_evals
            )
            record = {
                "seed": program_seed,
                "index": index,
                "error_type": signature[0],
                "stage": signature[1],
                "stage_family": _stage_family(signature[1]),
                "kind": signature[2],
                "original_type": signature[3],
                "message": str(error),
                "traceback": traceback.format_exc(),
                "original_lines": generated.line_count,
                "reduced_lines": len(reduced.strip().splitlines()),
                "source": generated.source,
                "reduced": reduced,
            }
            crash_dir = _save_crash(crashes_dir, record)
            record["crash_dir"] = crash_dir
            failures.append(record)
            if log:
                log(
                    "FAIL seed={} {} at stage {}: {} "
                    "(reduced {} -> {} lines, saved to {})".format(
                        program_seed,
                        record["error_type"],
                        record["stage"],
                        record["message"],
                        record["original_lines"],
                        record["reduced_lines"],
                        crash_dir,
                    )
                )
        else:
            if log and (index + 1) % 50 == 0:
                log("ok: {}/{} programs".format(index + 1, programs))
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="repro-fuzz",
        description=(
            "Differential fuzzing of the compile->simulate pipeline: "
            "random MiniC programs, every scheme/promotion/cache-model "
            "combination, failures shrunk and archived."
        ),
    )
    parser.add_argument(
        "--programs",
        type=int,
        default=500,
        help="number of programs to generate (default 500)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="first generator seed (default 0)"
    )
    parser.add_argument(
        "--max-steps",
        type=int,
        default=DEFAULT_FUZZ_MAX_STEPS,
        help="VM fuel budget per run (default {})".format(
            DEFAULT_FUZZ_MAX_STEPS
        ),
    )
    parser.add_argument(
        "--crashes",
        default="crashes",
        help="directory for the crash corpus (default ./crashes)",
    )
    parser.add_argument(
        "--inject",
        default=None,
        help=(
            "regex: treat any generated program matching it as a "
            "synthetic failure (exercises the reducer and corpus)"
        ),
    )
    parser.add_argument(
        "--reduce-evals",
        type=int,
        default=1500,
        help="delta-debugging evaluation budget per failure",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress progress output"
    )
    options = parser.parse_args(argv)

    log = None if options.quiet else lambda message: print(message, flush=True)
    failures = run_fuzz(
        programs=options.programs,
        seed=options.seed,
        crashes_dir=options.crashes,
        max_steps=options.max_steps,
        inject=options.inject,
        reduce_evals=options.reduce_evals,
        log=log,
    )
    total = options.programs
    if failures:
        print(
            "{} of {} programs failed; reproducers in {}".format(
                len(failures), total, options.crashes
            )
        )
        by_kind = {}
        for record in failures:
            key = (record["error_type"], record["stage"], record["kind"])
            by_kind[key] = by_kind.get(key, 0) + 1
        for (error_type, stage, kind), count in sorted(by_kind.items()):
            label = "{}/{}".format(error_type, stage)
            if kind:
                label += "/{}".format(kind)
            print("  {:4d}  {}".format(count, label))
        return 1
    print("all {} programs passed the differential battery".format(total))
    return 0


if __name__ == "__main__":
    sys.exit(main())
