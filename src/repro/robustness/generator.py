"""Seeded random MiniC program generator with a built-in oracle.

Every generated program is paired, construct by construct, with a
Python closure that evaluates it, so the generator knows the exact
expected output without running the compiler.  Programs are total by
construction: every loop is bounded, every division is by a nonzero
constant, every array index is provably in range, and every pointer
dereference targets an object that is live for the whole of ``main``.

The construct mix is deliberately biased toward what stresses the
alias/classification machinery: address-taken scalars (``&x``),
pointers retargeted under branches, array elements reached both by
name and through pointers, and helper functions that mutate globals
behind the caller's back.
"""

import random
from dataclasses import dataclass

#: Abort generation when any intermediate value grows past this bound;
#: the generator retries with a derived seed.  Keeps multiplications
#: inside nested loops from producing astronomic bignums.
VALUE_LIMIT = 1 << 45

#: How many derived seeds to try before giving up on one request.
MAX_ATTEMPTS = 50


class _Overflow(Exception):
    """Model-side: a value exceeded VALUE_LIMIT; regenerate."""


class _Break(Exception):
    pass


class _Continue(Exception):
    pass


class _Return(Exception):
    def __init__(self, value):
        self.value = value


def _c_div(a, b):
    q = abs(a) // abs(b)
    if (a < 0) != (b < 0):
        q = -q
    return q


def _c_mod(a, b):
    return a - _c_div(a, b) * b


def _ck(value):
    if value > VALUE_LIMIT or value < -VALUE_LIMIT:
        raise _Overflow()
    return value


_BINOPS = {
    "+": lambda a, b: _ck(a + b),
    "-": lambda a, b: _ck(a - b),
    "*": lambda a, b: _ck(a * b),
    "/": _c_div,
    "%": _c_mod,
    "==": lambda a, b: 1 if a == b else 0,
    "!=": lambda a, b: 1 if a != b else 0,
    "<": lambda a, b: 1 if a < b else 0,
    "<=": lambda a, b: 1 if a <= b else 0,
    ">": lambda a, b: 1 if a > b else 0,
    ">=": lambda a, b: 1 if a >= b else 0,
    "&&": lambda a, b: 1 if (a != 0 and b != 0) else 0,
    "||": lambda a, b: 1 if (a != 0 or b != 0) else 0,
}


def _store(scope, env, genv):
    return genv if scope == "g" else env


def _deref(ptr, env, genv):
    """Resolve a model pointer value to (container, key)."""
    if ptr[0] == "s":
        _, scope, name = ptr
        return _store(scope, env, genv), name
    _, scope, name, index = ptr
    return _store(scope, env, genv)[name], index


@dataclass(frozen=True)
class GeneratedProgram:
    """One generated MiniC program plus its model-predicted behaviour."""

    seed: int
    source: str
    expected_output: tuple
    expected_return: int

    @property
    def line_count(self):
        return len(self.source.splitlines())


class _Helper:
    """A generated helper function plus its model."""

    def __init__(self, name, params, pure, body_fns, ret_fn, lines):
        self.name = name
        self.params = params
        self.pure = pure
        self.body_fns = body_fns
        self.ret_fn = ret_fn
        self.lines = lines

    def call(self, args, genv, out):
        env = dict(zip(self.params, args))
        try:
            for fn in self.body_fns:
                fn(env, genv, out)
        except _Return as ret:
            return ret.value
        return self.ret_fn(env, genv)


class _Ctx:
    """What is in scope while generating one function body."""

    def __init__(self, scalars, arrays, pointers, helpers, loop_pool):
        self.scalars = list(scalars)  # [(name, scope)]
        self.arrays = list(arrays)  # [(name, scope, size)]
        self.pointers = list(pointers)  # [name] (main only)
        self.helpers = list(helpers)
        self.loop_pool = list(loop_pool)  # unused loop-var names
        self.loop_vars = []  # [(name, bound)] currently in scope
        self.in_for = 0
        self.allow_return = False
        self.allow_print = True


class _Generator:
    def __init__(self, seed):
        self.rng = random.Random(seed)
        self.seed = seed

    # ------------------------------------------------------------------
    # Expressions: every method returns (text, fn(env, genv) -> int).
    # ------------------------------------------------------------------

    def _literal(self):
        value = self.rng.randint(-30, 30)
        text = str(value) if value >= 0 else "(0 - {})".format(-value)
        return text, (lambda env, genv, v=value: v)

    def _safe_index(self, ctx, size):
        """(text, fn) guaranteed to evaluate inside [0, size)."""
        usable = [(n, b) for n, b in ctx.loop_vars if b <= size]
        if usable and self.rng.random() < 0.6:
            name, bound = self.rng.choice(usable)
            slack = size - bound
            if slack > 0 and self.rng.random() < 0.4:
                offset = self.rng.randint(0, slack)
                return (
                    "({} + {})".format(name, offset),
                    lambda env, genv, n=name, o=offset: env[n] + o,
                )
            return name, (lambda env, genv, n=name: env[n])
        index = self.rng.randint(0, size - 1)
        return str(index), (lambda env, genv, i=index: i)

    def _expr(self, ctx, depth=0):
        rng = self.rng
        choices = ["literal"]
        if ctx.scalars or ctx.loop_vars:
            choices += ["scalar"] * 4
        if ctx.arrays:
            choices += ["array"] * 2
        if ctx.pointers:
            choices += ["deref"] * 2
        pure = [h for h in ctx.helpers if h.pure]
        if pure and depth == 0:
            choices += ["call"]
        if depth < 3:
            choices += ["binary"] * 4 + ["unary"]
        kind = rng.choice(choices)

        if kind == "scalar":
            pool = [(n, s) for n, s in ctx.scalars]
            pool += [(n, "l") for n, _ in ctx.loop_vars]
            name, scope = rng.choice(pool)
            return name, (
                lambda env, genv, n=name, s=scope: _store(s, env, genv)[n]
            )
        if kind == "array":
            name, scope, size = rng.choice(ctx.arrays)
            idx_text, idx_fn = self._safe_index(ctx, size)
            return (
                "{}[{}]".format(name, idx_text),
                lambda env, genv, n=name, s=scope, f=idx_fn: _store(
                    s, env, genv
                )[n][f(env, genv)],
            )
        if kind == "deref":
            name = rng.choice(ctx.pointers)

            def read(env, genv, n=name):
                container, key = _deref(env[n], env, genv)
                return container[key]

            return "*{}".format(name), read
        if kind == "call":
            helper = rng.choice(pure)
            args = [self._expr(ctx, depth + 2) for _ in helper.params]
            text = "{}({})".format(helper.name, ", ".join(a[0] for a in args))

            def call(env, genv, h=helper, fns=tuple(a[1] for a in args)):
                return h.call([fn(env, genv) for fn in fns], genv, None)

            return text, call
        if kind == "unary":
            op = rng.choice(["-", "!"])
            inner_text, inner_fn = self._expr(ctx, depth + 1)
            if op == "-":
                return (
                    "(-{})".format(inner_text),
                    lambda env, genv, f=inner_fn: -f(env, genv),
                )
            return (
                "(!{})".format(inner_text),
                lambda env, genv, f=inner_fn: 1 if f(env, genv) == 0 else 0,
            )
        if kind == "binary":
            op = rng.choice(
                ["+", "+", "-", "-", "*", "/", "%", "==", "!=", "<", "<=",
                 ">", ">=", "&&", "||"]
            )
            left_text, left_fn = self._expr(ctx, depth + 1)
            if op in ("/", "%"):
                # Keep division total: nonzero constant denominator.
                denom = self.rng.randint(1, 9)
                right_text, right_fn = str(denom), (
                    lambda env, genv, d=denom: d
                )
            else:
                right_text, right_fn = self._expr(ctx, depth + 1)
            fn = _BINOPS[op]
            return (
                "({} {} {})".format(left_text, op, right_text),
                lambda env, genv, f=fn, lf=left_fn, rf=right_fn: f(
                    lf(env, genv), rf(env, genv)
                ),
            )
        return self._literal()

    # ------------------------------------------------------------------
    # Statements: (lines, fn(env, genv, out)).
    # ------------------------------------------------------------------

    def _pointer_target(self, ctx):
        """Pick a valid target: (&-text, model pointer value)."""
        rng = self.rng
        locals_ = [(n, s) for n, s in ctx.scalars]
        if ctx.arrays and rng.random() < 0.45:
            name, scope, size = rng.choice(ctx.arrays)
            index = rng.randint(0, size - 1)
            return "&{}[{}]".format(name, index), ("a", scope, name, index)
        name, scope = rng.choice(locals_)
        return "&{}".format(name), ("s", scope, name)

    def _stmt_assign(self, ctx, ind):
        name, scope = self.rng.choice(ctx.scalars)
        expr_text, expr_fn = self._expr(ctx)
        if self.rng.random() < 0.15:
            line = "{}{} += {};".format(ind, name, expr_text)

            def fn(env, genv, out, n=name, s=scope, f=expr_fn):
                store = _store(s, env, genv)
                store[n] = _ck(store[n] + f(env, genv))

            return [line], fn
        line = "{}{} = {};".format(ind, name, expr_text)

        def fn(env, genv, out, n=name, s=scope, f=expr_fn):
            _store(s, env, genv)[n] = _ck(f(env, genv))

        return [line], fn

    def _stmt_array_write(self, ctx, ind):
        name, scope, size = self.rng.choice(ctx.arrays)
        idx_text, idx_fn = self._safe_index(ctx, size)
        expr_text, expr_fn = self._expr(ctx)
        line = "{}{}[{}] = {};".format(ind, name, idx_text, expr_text)

        def fn(env, genv, out, n=name, s=scope, i=idx_fn, f=expr_fn):
            _store(s, env, genv)[n][i(env, genv)] = _ck(f(env, genv))

        return [line], fn

    def _stmt_print(self, ctx, ind):
        expr_text, expr_fn = self._expr(ctx)
        line = "{}print({});".format(ind, expr_text)

        def fn(env, genv, out, f=expr_fn):
            out.append(f(env, genv))

        return [line], fn

    def _stmt_if(self, ctx, ind, depth):
        cond_text, cond_fn = self._expr(ctx)
        then_lines, then_fns = self._block(ctx, ind + "    ", depth + 1)
        lines = ["{}if ({}) {{".format(ind, cond_text)]
        lines += then_lines
        else_fns = None
        if self.rng.random() < 0.5:
            else_lines, else_fns = self._block(ctx, ind + "    ", depth + 1)
            lines.append("{}}} else {{".format(ind))
            lines += else_lines
        lines.append("{}}}".format(ind))

        def fn(env, genv, out, c=cond_fn, t=tuple(then_fns),
               e=tuple(else_fns) if else_fns else None):
            if c(env, genv) != 0:
                for sub in t:
                    sub(env, genv, out)
            elif e is not None:
                for sub in e:
                    sub(env, genv, out)

        return lines, fn

    def _stmt_for(self, ctx, ind, depth):
        var = ctx.loop_pool.pop()
        bound = self.rng.randint(1, 5)
        ctx.loop_vars.append((var, bound))
        ctx.in_for += 1
        body_lines, body_fns = self._block(ctx, ind + "    ", depth + 1)
        ctx.in_for -= 1
        ctx.loop_vars.pop()
        lines = [
            "{}for ({} = 0; {} < {}; {} = {} + 1) {{".format(
                ind, var, var, bound, var, var
            )
        ]
        lines += body_lines
        lines.append("{}}}".format(ind))

        def fn(env, genv, out, v=var, n=bound, body=tuple(body_fns)):
            env[v] = 0
            while env[v] < n:
                try:
                    for sub in body:
                        sub(env, genv, out)
                except _Continue:
                    pass
                except _Break:
                    break
                env[v] = env[v] + 1

        return lines, fn

    def _stmt_while(self, ctx, ind, depth, do_while=False):
        var = ctx.loop_pool.pop()
        bound = self.rng.randint(1, 4)
        ctx.loop_vars.append((var, bound))
        # A break/continue in this body would bind to *this* loop in C
        # but the model only routes them to `for` loops — forbid them
        # here by masking the enclosing-for state.
        saved_in_for = ctx.in_for
        ctx.in_for = 0
        body_lines, body_fns = self._block(ctx, ind + "    ", depth + 1)
        ctx.in_for = saved_in_for
        ctx.loop_vars.pop()
        inner = ind + "    "
        if do_while:
            lines = ["{}{} = 0;".format(ind, var), "{}do {{".format(ind)]
            lines += body_lines
            lines.append("{}{} = {} + 1;".format(inner, var, var))
            lines.append("{}}} while ({} < {});".format(ind, var, bound))
        else:
            lines = [
                "{}{} = 0;".format(ind, var),
                "{}while ({} < {}) {{".format(ind, var, bound),
            ]
            lines += body_lines
            lines.append("{}{} = {} + 1;".format(inner, var, var))
            lines.append("{}}}".format(ind))

        def fn(env, genv, out, v=var, n=bound, body=tuple(body_fns),
               at_least_once=do_while):
            env[v] = 0
            while True:
                if not at_least_once and not env[v] < n:
                    break
                at_least_once = False
                for sub in body:
                    sub(env, genv, out)
                env[v] = env[v] + 1
                if not env[v] < n:
                    break

        return lines, fn

    def _stmt_pointer_retarget(self, ctx, ind):
        name = self.rng.choice(ctx.pointers)
        target_text, target_value = self._pointer_target(ctx)
        line = "{}{} = {};".format(ind, name, target_text)

        def fn(env, genv, out, n=name, t=target_value):
            env[n] = t

        return [line], fn

    def _stmt_pointer_write(self, ctx, ind):
        name = self.rng.choice(ctx.pointers)
        expr_text, expr_fn = self._expr(ctx)
        line = "{}*{} = {};".format(ind, name, expr_text)

        def fn(env, genv, out, n=name, f=expr_fn):
            container, key = _deref(env[n], env, genv)
            container[key] = _ck(f(env, genv))

        return [line], fn

    def _stmt_pointer_walk(self, ctx, ind):
        """``p = &a[c]; x = *(p + d);`` — bounded pointer arithmetic."""
        pointer = self.rng.choice(ctx.pointers)
        name, scope, size = self.rng.choice(ctx.arrays)
        base = self.rng.randint(0, size - 1)
        offset = self.rng.randint(0, size - 1 - base)
        target, target_scope = self.rng.choice(ctx.scalars)
        lines = [
            "{}{} = &{}[{}];".format(ind, pointer, name, base),
            "{}{} = *({} + {});".format(ind, target, pointer, offset),
        ]

        def fn(env, genv, out, p=pointer, a=name, s=scope, b=base, o=offset,
               t=target, ts=target_scope):
            env[p] = ("a", s, a, b)
            _store(ts, env, genv)[t] = _store(s, env, genv)[a][b + o]

        return lines, fn

    def _stmt_call(self, ctx, ind):
        helper = self.rng.choice(ctx.helpers)
        args = [self._expr(ctx, depth=2) for _ in helper.params]
        arg_text = ", ".join(a[0] for a in args)
        target, target_scope = self.rng.choice(ctx.scalars)
        line = "{}{} = {}({});".format(ind, target, helper.name, arg_text)

        def fn(env, genv, out, h=helper, t=target, ts=target_scope,
               fns=tuple(a[1] for a in args)):
            value = h.call([f(env, genv) for f in fns], genv, out)
            _store(ts, env, genv)[t] = _ck(value)

        return [line], fn

    def _stmt_guarded_jump(self, ctx, ind, kind):
        cond_text, cond_fn = self._expr(ctx)
        lines = [
            "{}if ({}) {{".format(ind, cond_text),
            "{}    {};".format(ind, kind),
            "{}}}".format(ind),
        ]
        control = _Break if kind == "break" else _Continue

        def fn(env, genv, out, c=cond_fn, exc=control):
            if c(env, genv) != 0:
                raise exc()

        return lines, fn

    def _stmt_guarded_return(self, ctx, ind):
        cond_text, cond_fn = self._expr(ctx)
        value_text, value_fn = self._expr(ctx)
        lines = [
            "{}if ({}) {{".format(ind, cond_text),
            "{}    return {};".format(ind, value_text),
            "{}}}".format(ind),
        ]

        def fn(env, genv, out, c=cond_fn, v=value_fn):
            if c(env, genv) != 0:
                raise _Return(v(env, genv))

        return lines, fn

    def _statement(self, ctx, ind, depth):
        rng = self.rng
        kinds = ["assign"] * 5
        if ctx.allow_print:
            kinds += ["print"] * 2
        if ctx.arrays:
            kinds += ["array"] * 3
        if ctx.pointers:
            kinds += ["retarget", "pwrite", "pwrite"]
            if ctx.arrays:
                kinds += ["pwalk"]
        if ctx.helpers:
            kinds += ["call", "call"]
        if depth < 2:
            kinds += ["if"] * 2
            if ctx.loop_pool:
                kinds += ["for"] * 2 + ["while", "dowhile"]
        if ctx.in_for:
            kinds += ["break", "continue"]
        if ctx.allow_return:
            kinds += ["return"]
        kind = rng.choice(kinds)
        if kind == "assign":
            return self._stmt_assign(ctx, ind)
        if kind == "print":
            return self._stmt_print(ctx, ind)
        if kind == "array":
            return self._stmt_array_write(ctx, ind)
        if kind == "retarget":
            return self._stmt_pointer_retarget(ctx, ind)
        if kind == "pwrite":
            return self._stmt_pointer_write(ctx, ind)
        if kind == "pwalk":
            return self._stmt_pointer_walk(ctx, ind)
        if kind == "call":
            return self._stmt_call(ctx, ind)
        if kind == "if":
            return self._stmt_if(ctx, ind, depth)
        if kind == "for":
            return self._stmt_for(ctx, ind, depth)
        if kind == "while":
            return self._stmt_while(ctx, ind, depth)
        if kind == "dowhile":
            return self._stmt_while(ctx, ind, depth, do_while=True)
        if kind in ("break", "continue"):
            return self._stmt_guarded_jump(ctx, ind, kind)
        return self._stmt_guarded_return(ctx, ind)

    def _block(self, ctx, ind, depth, count=None):
        if count is None:
            count = self.rng.randint(1, 3 if depth else 4)
        lines = []
        fns = []
        for _ in range(count):
            stmt_lines, stmt_fn = self._statement(ctx, ind, depth)
            lines += stmt_lines
            fns.append(stmt_fn)
        return lines, fns

    # ------------------------------------------------------------------
    # Whole-program assembly.
    # ------------------------------------------------------------------

    def _gen_helper(self, index, globals_scalars, global_arrays, pure):
        name = "f{}".format(index)
        params = ["n{}".format(i) for i in range(self.rng.randint(1, 3))]
        locals_ = ["t{}".format(i) for i in range(self.rng.randint(0, 2))]
        scalars = [(p, "l") for p in params] + [(t, "l") for t in locals_]
        if not pure:
            scalars += [(n, "g") for n, _ in globals_scalars]
        ctx = _Ctx(
            scalars,
            [] if pure else global_arrays,
            [],
            [],
            ["h{}i".format(index), "h{}w".format(index)],
        )
        ctx.allow_return = True
        ctx.allow_print = not pure
        ind = "    "
        lines = [
            "int {}({}) {{".format(
                name, ", ".join("int {}".format(p) for p in params)
            )
        ]
        for loop_var in ctx.loop_pool:
            lines.append("{}int {};".format(ind, loop_var))
        init_fns = []
        for local in locals_:
            value = self.rng.randint(-10, 10)
            text = str(value) if value >= 0 else "(0 - {})".format(-value)
            lines.append("{}int {};".format(ind, local))
            lines.append("{}{} = {};".format(ind, local, text))
            init_fns.append(
                lambda env, genv, out, n=local, v=value: env.update({n: v})
            )
        body_lines, body_fns = self._block(
            ctx, ind, depth=1, count=self.rng.randint(1, 3)
        )
        if not pure:
            # Bias: impure helpers mutate global state and may print.
            extra_lines, extra_fns = self._stmt_print(ctx, ind)
            body_lines += extra_lines
            body_fns.append(extra_fns)
        lines += body_lines
        ret_text, ret_fn = self._expr(ctx)
        lines.append("{}return {};".format(ind, ret_text))
        lines.append("}")
        return _Helper(
            name, params, pure, init_fns + body_fns, ret_fn, lines
        )

    def generate(self):
        rng = self.rng
        # Globals: a couple of scalars with constant inits, one array.
        global_scalars = []
        global_lines = []
        genv_init = {}
        for i in range(rng.randint(1, 2)):
            name = "g{}".format(i)
            value = rng.randint(-20, 20)
            # Global initializers must be integer constants; a negative
            # one is written with unary minus, which sema folds.
            global_lines.append("int {} = {};".format(name, value))
            global_scalars.append((name, "g"))
            genv_init[name] = value
        global_arrays = []
        if rng.random() < 0.8:
            size = rng.randint(4, 8)
            global_lines.append("int ga[{}];".format(size))
            global_arrays.append(("ga", "g", size))
            genv_init["ga"] = [0] * size

        helpers = []
        for i in range(rng.randint(0, 2)):
            pure = rng.random() < 0.5
            helpers.append(
                self._gen_helper(
                    i + 1, global_scalars, global_arrays, pure
                )
            )

        # main locals.
        num_scalars = rng.randint(3, 5)
        local_scalars = [("x{}".format(i), "l") for i in range(num_scalars)]
        local_arrays = []
        if rng.random() < 0.7:
            size = rng.randint(4, 8)
            local_arrays.append(("la", "l", size))
        pointers = ["p0"] if rng.random() < 0.85 else []
        if pointers and rng.random() < 0.4:
            pointers.append("p1")

        ctx = _Ctx(
            local_scalars + global_scalars,
            local_arrays + global_arrays,
            pointers,
            helpers,
            ["i0", "i1", "i2", "w0", "w1"],
        )
        ctx.allow_return = True

        ind = "    "
        main_lines = ["int main() {"]
        env_init = {}
        decls = []
        for name, _ in local_scalars:
            decls.append("int {}".format(name))
        for name, _, size in local_arrays:
            decls.append("int {}[{}]".format(name, size))
        for name in pointers:
            decls.append("int *{}".format(name))
        for name in ctx.loop_pool:
            decls.append("int {}".format(name))
        for decl in decls:
            main_lines.append("{}{};".format(ind, decl))
        init_fns = []
        for name, _ in local_scalars:
            value = rng.randint(-10, 10)
            text = str(value) if value >= 0 else "(0 - {})".format(-value)
            main_lines.append("{}{} = {};".format(ind, name, text))
            init_fns.append(
                lambda env, genv, out, n=name, v=value: env.update({n: v})
            )
        for name, _, size in local_arrays:
            env_init[name] = [0] * size
        for name in pointers:
            target_text, target_value = self._pointer_target(ctx)
            main_lines.append(
                "{}{} = {};".format(ind, name, target_text)
            )
            init_fns.append(
                lambda env, genv, out, n=name, t=target_value: env.update(
                    {n: t}
                )
            )

        body_lines, body_fns = self._block(
            ctx, ind, depth=0, count=rng.randint(5, 10)
        )
        main_lines += body_lines

        # Deterministic final checksum over all visible state.
        checksum_terms = [name for name, _ in local_scalars]
        checksum_terms += [name for name, _ in global_scalars]
        for name, _, size in local_arrays + global_arrays:
            checksum_terms.append("{}[0]".format(name))
            checksum_terms.append("{}[{}]".format(name, size - 1))
        checksum = " + ".join(checksum_terms)
        main_lines.append("{}print({});".format(ind, checksum))

        def checksum_fn(env, genv, out, scalars=tuple(local_scalars),
                        globals_=tuple(global_scalars),
                        arrays=tuple(local_arrays + global_arrays)):
            total = 0
            for n, s in scalars + globals_:
                total += _store(s, env, genv)[n]
            for n, s, size in arrays:
                values = _store(s, env, genv)[n]
                total += values[0] + values[size - 1]
            out.append(total)

        ret_name, ret_scope = rng.choice(ctx.scalars)
        main_lines.append("{}return {};".format(ind, ret_name))
        main_lines.append("}")

        def return_fn(env, genv, n=ret_name, s=ret_scope):
            return _store(s, env, genv)[n]

        source_lines = global_lines[:]
        for helper in helpers:
            source_lines += helper.lines
        source_lines += main_lines
        source = "\n".join(source_lines) + "\n"

        # Run the model.
        genv = {
            key: (list(value) if isinstance(value, list) else value)
            for key, value in genv_init.items()
        }
        env = {
            key: (list(value) if isinstance(value, list) else value)
            for key, value in env_init.items()
        }
        out = []
        try:
            for fn in init_fns + body_fns:
                fn(env, genv, out)
            checksum_fn(env, genv, out)
            expected_return = return_fn(env, genv)
        except _Return as ret:
            expected_return = ret.value
        return GeneratedProgram(
            seed=self.seed,
            source=source,
            expected_output=tuple(out),
            expected_return=expected_return,
        )


def generate_program(seed, max_attempts=MAX_ATTEMPTS):
    """Generate one total, oracle-paired MiniC program for ``seed``.

    Deterministic: the same seed always yields the same program.  When
    a candidate overflows :data:`VALUE_LIMIT` in the model, a derived
    seed is tried (still a pure function of ``seed``).
    """
    for attempt in range(max_attempts):
        try:
            return _Generator(seed * 1000003 + attempt).generate()
        except _Overflow:
            continue
    raise RuntimeError(
        "could not generate a bounded program for seed {} after {} "
        "attempts".format(seed, max_attempts)
    )
