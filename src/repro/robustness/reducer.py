"""Delta-debugging reduction of failing MiniC programs.

Classic ddmin [Zeller & Hildebrandt 2002] over source *lines*: remove
ever-smaller complements of the line set while a caller-supplied
predicate keeps reporting "still fails the same way".  Most candidate
subsets do not even parse; the predicate simply returns ``False`` for
those and ddmin routes around them.  The reducer never interprets the
program itself, so it works for compile-stage crashes, VM divergences
and differential mismatches alike.
"""


def _brace_spans(lines):
    """(open_line, close_line) index pairs for every ``{ ... }`` block."""
    spans = []
    stack = []
    for index, line in enumerate(lines):
        for _ in range(line.count("{")):
            stack.append(index)
        for _ in range(line.count("}")):
            if stack:
                spans.append((stack.pop(), index))
    return spans


def reduce_source(source, predicate, max_evals=1500):
    """Shrink ``source`` while ``predicate(candidate)`` stays true.

    ``predicate`` takes a candidate source string and returns whether
    it still reproduces the original failure (same error signature —
    deciding that is the caller's business).  ``max_evals`` caps the
    number of predicate evaluations; when the budget runs out the best
    reduction found so far is returned.  If the predicate does not
    even hold for ``source`` itself the input is returned unchanged —
    an unreproducible failure must not be "reduced" to noise.
    """
    lines = [line for line in source.splitlines()]
    budget = [max_evals]
    cache = {}

    def still_fails(candidate_lines):
        key = tuple(candidate_lines)
        if key in cache:
            return cache[key]
        if budget[0] <= 0:
            return False
        budget[0] -= 1
        result = bool(predicate("\n".join(candidate_lines) + "\n"))
        cache[key] = result
        return result

    if not still_fails(lines):
        return source

    chunks = 2
    while len(lines) >= 2:
        subset_len = max(1, len(lines) // chunks)
        reduced = False
        for i in range(chunks):
            low = i * subset_len
            high = len(lines) if i == chunks - 1 else low + subset_len
            complement = lines[:low] + lines[high:]
            if complement and still_fails(complement):
                lines = complement
                chunks = max(chunks - 1, 2)
                reduced = True
                break
        if not reduced:
            if chunks >= len(lines):
                break
            chunks = min(chunks * 2, len(lines))
        if budget[0] <= 0:
            break

    # ddmin works on contiguous chunks, so it stalls on brace-matched
    # blocks (a ``for (...) {`` header cannot go without its ``}``).
    # Finish with structure-aware passes to a fixpoint: drop whole
    # ``{...}`` blocks, unwrap block bodies, then single lines.
    changed = True
    while changed and budget[0] > 0 and len(lines) > 1:
        changed = False
        for start, end in sorted(
            _brace_spans(lines), key=lambda span: span[0] - span[1]
        ):
            without_block = lines[:start] + lines[end + 1 :]
            if without_block and still_fails(without_block):
                lines = without_block
                changed = True
                break
            unwrapped = lines[:start] + lines[start + 1 : end] + lines[end + 1 :]
            if unwrapped and still_fails(unwrapped):
                lines = unwrapped
                changed = True
                break
        if changed:
            continue
        for index in range(len(lines) - 1, -1, -1):
            candidate = lines[:index] + lines[index + 1 :]
            if candidate and still_fails(candidate):
                lines = candidate
                changed = True

    return "\n".join(lines) + "\n"
