"""The ``repro-analyze`` command: classify, lint, cross-validate.

Three modes over one compiled program (a MiniC file, ``--seed N`` for
a fuzz-generated program, or ``--benchmark NAME``):

* default — the per-reference classification table: every static
  memory reference with its flavor, resolved target, and tiered
  verdict (always-hit/-miss, exact-hit/-miss, exact-persistent,
  input-dependent, unknown), plus the summary block (per-verdict and
  per-tier counts, static bypass ratio, and what the exact refinement
  pass did).
* ``--validate`` — additionally execute the program under a
  validating memory and report dynamic precision (% of dynamic
  references per tier) and any static/dynamic mismatches.
* ``--check`` — CI mode over benchmarks (all six by default): the
  soundness linter must report zero violations, the cross-validator
  zero mismatches, and the dynamic classification must reach the
  tier gates — >=90% of events *decided* (any tier but unknown) and
  >=50% *definite* (the audited always + exact tiers) — on every
  requested cache geometry.  Prints the per-benchmark precision
  table, names the tier that fell short on failure, and exits
  non-zero on any violation.  ``--json PATH`` additionally writes the
  full per-tier breakout ('-' for stdout).

The exact refinement pass runs in every mode and is bounded:
``--exact-budget N`` caps its exploration at N transfer steps
(exhaustion degrades the affected sites to their must/may verdicts,
never fails the command).

Geometries are given as ``SIZE:ASSOC[:POLICY]`` (e.g. ``256:4`` or
``64:2:lru``); ``--geometry`` may be repeated.
"""

import argparse
import json
import sys

from repro.cache.cache import CacheConfig
from repro.evalharness.cli import (
    _add_compile_args,
    _compile_options,
    _read_source,
    _structured_errors,
)
from repro.programs import BENCHMARK_NAMES, get_benchmark
from repro.staticcheck.crossval import cross_validate
from repro.staticcheck.linter import lint_module
from repro.staticcheck.locations import describe_loc
from repro.staticcheck.mustmay import Classification, analyze_program
from repro.unified.pipeline import CompilationOptions, compile_source

#: The geometries ``--check`` exercises when none are given: the
#: paper-scale default cache and a small high-conflict one.
DEFAULT_CHECK_GEOMETRIES = ("256:4", "64:2")

#: The ``--check`` tier gates (percent of dynamic references).
DECIDED_GATE = 90.0
DEFINITE_GATE = 50.0


def _parse_geometry(text):
    parts = text.split(":")
    if len(parts) not in (2, 3):
        raise argparse.ArgumentTypeError(
            "geometry must be SIZE:ASSOC[:POLICY], got {!r}".format(text)
        )
    size, assoc = int(parts[0]), int(parts[1])
    policy = parts[2] if len(parts) == 3 else "lru"
    return CacheConfig(
        size_words=size, line_words=1, associativity=assoc, policy=policy
    )


def _geometries(args):
    if args.geometry:
        return list(args.geometry)
    return [_parse_geometry(text) for text in DEFAULT_CHECK_GEOMETRIES]


def _describe_target(target):
    if target.strong is not None:
        return describe_loc(target.strong)
    return " | ".join(describe_loc(loc) for loc in target.weak) or "?"


def _print_site_table(analysis, out):
    header = "{:26s} {:22s} {:11s} {:6s} {:4s} {}".format(
        "site", "access", "flavor", "bypass", "kill", "verdict"
    )
    out.write(header + "\n")
    out.write("-" * len(header) + "\n")
    for site in analysis.sites:
        flavor = site.ref.flavor.value if site.ref.flavor else "-"
        out.write(
            "{:26s} {:22s} {:11s} {:6s} {:4s} {}   [{}]\n".format(
                site.where(),
                site.ref.access_path,
                flavor,
                "yes" if site.bypass else "no",
                "yes" if site.kill else "no",
                site.classification.value,
                _describe_target(site.target),
            )
        )


def _print_summary(analysis, out):
    counts = analysis.counts()
    tiers = analysis.tier_counts()
    out.write("\n")
    out.write("{:28s} {}\n".format("memory reference sites", len(analysis.sites)))
    for classification in Classification:
        out.write(
            "{:28s} {}\n".format(
                classification.value, counts[classification.value]
            )
        )
    out.write(
        "{:28s} always {} / exact {} / input-dep {} / unknown {}\n".format(
            "verdict tiers", tiers["always"], tiers["exact"],
            tiers["input-dependent"], tiers["unknown"],
        )
    )
    out.write(
        "{:28s} {:.1f}%\n".format(
            "statically decided", analysis.static_classified_percent
        )
    )
    out.write(
        "{:28s} {:.1f}%\n".format(
            "statically definite", analysis.static_definite_percent
        )
    )
    out.write(
        "{:28s} {:.1f}%\n".format(
            "static bypass ratio", analysis.static_bypass_percent
        )
    )
    refinement = analysis.refinement
    if refinement is not None:
        out.write(
            "{:28s} {}\n".format("exact refinement", refinement.describe())
        )
        out.write(
            "{:28s} {}\n".format("install footprint",
                                 refinement.footprint.describe())
        )


def _refinement_payload(refinement):
    if refinement is None:
        return None
    return {
        "budget": refinement.budget,
        "steps_used": refinement.steps_used,
        "exhausted": refinement.exhausted,
        "explored_sites": refinement.explored_sites,
        "exact_hit_sites": refinement.exact_hit_sites,
        "exact_miss_sites": refinement.exact_miss_sites,
        "persistent_sites": refinement.persistent_sites,
        "input_dependent_sites": refinement.input_dependent_sites,
        "refused_sites": refinement.refused_sites,
        "residual_unknown": refinement.residual_unknown,
        "footprint_words": len(refinement.footprint.addresses),
        "footprint_concrete": refinement.footprint.concrete,
        "certified_sets": len(refinement.footprint.certified_sets),
        "touched_sets": len(refinement.footprint.demand),
    }


@_structured_errors
def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="repro-analyze",
        description=(
            "Static must/may cache analysis with bypass/kill semantics "
            "plus the exact refinement pass: tiered classification "
            "table, annotation soundness lint, and dynamic "
            "cross-validation against the cache simulator."
        ),
    )
    parser.add_argument("file", nargs="?", default=None,
                        help="MiniC source file ('-' for stdin)")
    parser.add_argument("--benchmark", choices=list(BENCHMARK_NAMES),
                        default=None,
                        help="analyze one Stanford benchmark")
    parser.add_argument(
        "--geometry", action="append", type=_parse_geometry, default=None,
        metavar="SIZE:ASSOC[:POLICY]",
        help="cache geometry (repeatable; default {})".format(
            " and ".join(DEFAULT_CHECK_GEOMETRIES)),
    )
    parser.add_argument("--validate", action="store_true",
                        help="also execute and cross-validate the claims")
    parser.add_argument("--check", action="store_true",
                        help="CI mode: lint + cross-validate benchmarks, "
                             "print the precision table, exit non-zero on "
                             "any violation, mismatch, or missed tier gate")
    parser.add_argument("--exact-budget", type=int, default=None,
                        metavar="STEPS",
                        help="transfer-step budget for the exact "
                             "exploration (default {}; exhaustion "
                             "degrades, never fails)".format(
                                 _default_budget()))
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="with --check: write the per-benchmark "
                             "per-tier breakout as JSON ('-' for stdout)")
    parser.add_argument("--max-steps", type=int, default=None,
                        help="VM fuel budget for --validate/--check runs")
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes for --check (one benchmark "
                             "per worker; output order is unchanged)")
    _add_compile_args(parser)
    args = parser.parse_args(argv)

    if args.check:
        return _run_check(args)

    if args.benchmark is not None:
        if args.file is not None or args.seed is not None:
            parser.error("--benchmark excludes a file and --seed")
        source = get_benchmark(args.benchmark).source
    else:
        source = _read_source(args, parser)
    program = compile_source(source, _compile_options(args))
    geometries = _geometries(args)

    violations = lint_module(program.module, program.alias)
    analysis = analyze_program(
        program, geometries[0], exact=True, exact_budget=args.exact_budget
    )
    _print_site_table(analysis, sys.stdout)
    _print_summary(analysis, sys.stdout)
    sys.stdout.write(
        "{:28s} {}\n".format("lint violations", len(violations))
    )
    for violation in violations:
        sys.stdout.write("  {!r}\n".format(violation))

    status = 1 if violations else 0
    if args.validate:
        for geometry in geometries:
            report = cross_validate(
                program,
                geometry,
                max_steps=args.max_steps,
                analysis=analyze_program(
                    program, geometry, exact=True,
                    exact_budget=args.exact_budget,
                ),
            )
            sys.stdout.write(
                "{:28s} {} events, {:.1f}% definite, {:.1f}% decided, "
                "{} mismatch(es)\n".format(
                    "validated " + report.describe_geometry(),
                    report.events_total,
                    report.dynamic_classified_percent,
                    report.dynamic_decided_percent,
                    len(report.mismatches),
                )
            )
            tiers = report.event_tiers
            sys.stdout.write(
                "{:28s} always {} / exact {} / input-dep {} / "
                "unknown {}\n".format(
                    "  event tiers", tiers["always"], tiers["exact"],
                    tiers["input-dependent"], tiers["unknown"],
                )
            )
            for mismatch in report.mismatches:
                sys.stdout.write("  {!r}\n".format(mismatch))
            if report.mismatches:
                status = 1
    return status


def _default_budget():
    from repro.staticcheck.exact import DEFAULT_EXACT_BUDGET

    return DEFAULT_EXACT_BUDGET


def _check_benchmark_worker(payload):
    """One benchmark of the ``--check`` gate: compile, lint, validate.

    Top-level so ``--jobs`` can fan benchmarks out over a process pool;
    returns ``(failures, row, violation_lines, json_entry)`` so the
    parent prints the table in benchmark order regardless of
    completion order, and the failure strings name exactly which gate
    (and which verdict tier) fell short.
    """
    name, options, geometries, max_steps, exact_budget = payload
    program = compile_source(get_benchmark(name).source, options)
    violations = lint_module(program.module, program.alias)
    failures = []
    if violations:
        failures.append(
            "{}: {} lint violation(s)".format(name, len(violations))
        )
    row = None
    json_entry = {"lint_violations": len(violations), "geometries": {}}
    for geometry in geometries:
        analysis = analyze_program(
            program, geometry, exact=True, exact_budget=exact_budget
        )
        if row is None:
            json_entry["sites"] = len(analysis.sites)
            json_entry["static_tiers"] = analysis.tier_counts()
            row = "{:10s} {:>6d} {:>8d} {:>6.1f}%".format(
                name, len(violations), len(analysis.sites),
                analysis.static_bypass_percent,
            )
        report = cross_validate(
            program, geometry, max_steps=max_steps, analysis=analysis,
        )
        where = "{}: {}".format(name, report.describe_geometry())
        if report.mismatches:
            failures.append(
                "{}: {} mismatch(es); first: {!r}".format(
                    where, len(report.mismatches), report.mismatches[0]
                )
            )
        decided = report.dynamic_decided_percent
        definite = report.dynamic_classified_percent
        if decided < DECIDED_GATE:
            failures.append(
                "{}: decided tier at {:.1f}% (< {:.0f}%): the unknown "
                "tier holds {} of {} events".format(
                    where, decided, DECIDED_GATE,
                    report.event_tiers["unknown"], report.events_total,
                )
            )
        if definite < DEFINITE_GATE:
            failures.append(
                "{}: definite (always+exact) tier at {:.1f}% "
                "(< {:.0f}%)".format(where, definite, DEFINITE_GATE)
            )
        row += "  {:>4d} {:>6.1f}% {:>6.1f}%".format(
            len(report.mismatches), definite, decided
        )
        json_entry["geometries"][report.describe_geometry()] = {
            "events_total": report.events_total,
            "event_tiers": report.event_tiers,
            "definite_percent": report.dynamic_classified_percent,
            "decided_percent": report.dynamic_decided_percent,
            "mismatches": len(report.mismatches),
            "refinement": _refinement_payload(analysis.refinement),
        }
    violation_lines = [
        "  {!r}".format(violation) for violation in violations
    ]
    return failures, row, violation_lines, json_entry


def _run_check(args):
    """CI mode: every benchmark must lint clean, validate clean, and
    clear the tier gates."""
    names = (args.benchmark,) if args.benchmark else BENCHMARK_NAMES
    geometries = _geometries(args)
    # The precision table is about *memory* references, so expose the
    # full reference stream: no register promotion (higher promotion
    # levels hide scalar traffic in registers, leaving little for the
    # classifier to grade).  Scheme and the other toggles follow the
    # command line.
    options = _compile_options(args)
    options = CompilationOptions(
        scheme=options.scheme,
        promotion="none",
        promotion_budget=options.promotion_budget,
        kill_bits=options.kill_bits,
        spill_to_cache=options.spill_to_cache,
        bypass_user_refs=options.bypass_user_refs,
        merge_true_aliases=options.merge_true_aliases,
        refine_points_to=options.refine_points_to,
        cache_globals_in_blocks=options.cache_globals_in_blocks,
    )

    header = "{:10s} {:>6s} {:>8s} {:>7s}".format(
        "benchmark", "lint", "sites", "byp%"
    )
    for geometry in geometries:
        header += "  {:>19s}".format(
            "{}w/{}way mm/def/dec".format(geometry.size_words,
                                          geometry.associativity)
        )
    print(header)
    print("-" * len(header))

    all_failures = []
    json_payload = {}
    payloads = [
        (name, options, tuple(geometries), args.max_steps,
         args.exact_budget)
        for name in names
    ]
    from repro.evalharness.parallel import pool_map

    for name, (failures, row, violation_lines, json_entry) in zip(
        names,
        pool_map(_check_benchmark_worker, payloads, jobs=args.jobs),
    ):
        all_failures.extend(failures)
        print(row)
        for line in violation_lines:
            print(line)
        json_payload[name] = json_entry

    if args.json:
        text = json.dumps(
            {
                "gates": {"decided": DECIDED_GATE,
                          "definite": DEFINITE_GATE},
                "benchmarks": json_payload,
                "failures": all_failures,
            },
            indent=2,
            sort_keys=True,
        )
        if args.json == "-":
            print(text)
        else:
            with open(args.json, "w") as handle:
                handle.write(text + "\n")

    if all_failures:
        print("FAIL: {} gate violation(s)".format(len(all_failures)),
              file=sys.stderr)
        for failure in all_failures:
            print("  " + failure, file=sys.stderr)
        return 1
    print("all benchmarks: zero lint violations, zero mismatches, "
          ">={:.0f}% of dynamic references decided "
          "(>={:.0f}% definite)".format(DECIDED_GATE, DEFINITE_GATE))
    return 0


if __name__ == "__main__":
    sys.exit(main())
