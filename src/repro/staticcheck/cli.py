"""The ``repro-analyze`` command: classify, lint, cross-validate.

Three modes over one compiled program (a MiniC file, ``--seed N`` for
a fuzz-generated program, or ``--benchmark NAME``):

* default — the per-reference classification table: every static
  memory reference with its flavor, resolved target, and
  always-hit / always-miss / unknown verdict, plus the summary block
  (classification counts, static bypass ratio).
* ``--validate`` — additionally execute the program under a
  validating memory and report dynamic precision (% of dynamic
  references whose site carries a definite verdict) and any
  static/dynamic mismatches.
* ``--check`` — CI mode over benchmarks (all six by default): the
  soundness linter must report zero violations and the cross-validator
  zero mismatches on every requested cache geometry; prints the
  per-benchmark precision table and exits non-zero on any failure.

Geometries are given as ``SIZE:ASSOC[:POLICY]`` (e.g. ``256:4`` or
``64:2:lru``); ``--geometry`` may be repeated.
"""

import argparse
import sys

from repro.cache.cache import CacheConfig
from repro.evalharness.cli import (
    _add_compile_args,
    _compile_options,
    _read_source,
    _structured_errors,
)
from repro.programs import BENCHMARK_NAMES, get_benchmark
from repro.staticcheck.crossval import cross_validate
from repro.staticcheck.linter import lint_module
from repro.staticcheck.locations import describe_loc
from repro.staticcheck.mustmay import Classification, analyze_program
from repro.unified.pipeline import CompilationOptions, compile_source

#: The geometries ``--check`` exercises when none are given: the
#: paper-scale default cache and a small high-conflict one.
DEFAULT_CHECK_GEOMETRIES = ("256:4", "64:2")


def _parse_geometry(text):
    parts = text.split(":")
    if len(parts) not in (2, 3):
        raise argparse.ArgumentTypeError(
            "geometry must be SIZE:ASSOC[:POLICY], got {!r}".format(text)
        )
    size, assoc = int(parts[0]), int(parts[1])
    policy = parts[2] if len(parts) == 3 else "lru"
    return CacheConfig(
        size_words=size, line_words=1, associativity=assoc, policy=policy
    )


def _geometries(args):
    if args.geometry:
        return list(args.geometry)
    return [_parse_geometry(text) for text in DEFAULT_CHECK_GEOMETRIES]


def _describe_target(target):
    if target.strong is not None:
        return describe_loc(target.strong)
    return " | ".join(describe_loc(loc) for loc in target.weak) or "?"


def _print_site_table(analysis, out):
    header = "{:26s} {:22s} {:11s} {:6s} {:4s} {}".format(
        "site", "access", "flavor", "bypass", "kill", "verdict"
    )
    out.write(header + "\n")
    out.write("-" * len(header) + "\n")
    for site in analysis.sites:
        flavor = site.ref.flavor.value if site.ref.flavor else "-"
        out.write(
            "{:26s} {:22s} {:11s} {:6s} {:4s} {}   [{}]\n".format(
                site.where(),
                site.ref.access_path,
                flavor,
                "yes" if site.bypass else "no",
                "yes" if site.kill else "no",
                site.classification.value,
                _describe_target(site.target),
            )
        )


def _print_summary(analysis, out):
    counts = analysis.counts()
    out.write("\n")
    out.write("{:28s} {}\n".format("memory reference sites", len(analysis.sites)))
    for classification in Classification:
        out.write(
            "{:28s} {}\n".format(
                classification.value, counts[classification.value]
            )
        )
    out.write(
        "{:28s} {:.1f}%\n".format(
            "statically classified", analysis.static_classified_percent
        )
    )
    out.write(
        "{:28s} {:.1f}%\n".format(
            "static bypass ratio", analysis.static_bypass_percent
        )
    )


@_structured_errors
def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="repro-analyze",
        description=(
            "Static must/may cache analysis with bypass/kill semantics: "
            "classification table, annotation soundness lint, and "
            "dynamic cross-validation against the cache simulator."
        ),
    )
    parser.add_argument("file", nargs="?", default=None,
                        help="MiniC source file ('-' for stdin)")
    parser.add_argument("--benchmark", choices=list(BENCHMARK_NAMES),
                        default=None,
                        help="analyze one Stanford benchmark")
    parser.add_argument(
        "--geometry", action="append", type=_parse_geometry, default=None,
        metavar="SIZE:ASSOC[:POLICY]",
        help="cache geometry (repeatable; default {})".format(
            " and ".join(DEFAULT_CHECK_GEOMETRIES)),
    )
    parser.add_argument("--validate", action="store_true",
                        help="also execute and cross-validate the claims")
    parser.add_argument("--check", action="store_true",
                        help="CI mode: lint + cross-validate benchmarks, "
                             "print the precision table, exit non-zero on "
                             "any violation or mismatch")
    parser.add_argument("--max-steps", type=int, default=None,
                        help="VM fuel budget for --validate/--check runs")
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes for --check (one benchmark "
                             "per worker; output order is unchanged)")
    _add_compile_args(parser)
    args = parser.parse_args(argv)

    if args.check:
        return _run_check(args)

    if args.benchmark is not None:
        if args.file is not None or args.seed is not None:
            parser.error("--benchmark excludes a file and --seed")
        source = get_benchmark(args.benchmark).source
    else:
        source = _read_source(args, parser)
    program = compile_source(source, _compile_options(args))
    geometries = _geometries(args)

    violations = lint_module(program.module, program.alias)
    analysis = analyze_program(program, geometries[0])
    _print_site_table(analysis, sys.stdout)
    _print_summary(analysis, sys.stdout)
    sys.stdout.write(
        "{:28s} {}\n".format("lint violations", len(violations))
    )
    for violation in violations:
        sys.stdout.write("  {!r}\n".format(violation))

    status = 1 if violations else 0
    if args.validate:
        for geometry in geometries:
            report = cross_validate(
                program,
                geometry,
                max_steps=args.max_steps,
                analysis=analyze_program(program, geometry),
            )
            sys.stdout.write(
                "{:28s} {} events, {:.1f}% classified, "
                "{} mismatch(es)\n".format(
                    "validated " + report.describe_geometry(),
                    report.events_total,
                    report.dynamic_classified_percent,
                    len(report.mismatches),
                )
            )
            for mismatch in report.mismatches:
                sys.stdout.write("  {!r}\n".format(mismatch))
            if report.mismatches:
                status = 1
    return status


def _check_benchmark_worker(payload):
    """One benchmark of the ``--check`` gate: compile, lint, validate.

    Top-level so ``--jobs`` can fan benchmarks out over a process pool;
    returns ``(failed, row, violation_lines)`` so the parent prints the
    table in benchmark order regardless of completion order.
    """
    name, options, geometries, max_steps = payload
    program = compile_source(get_benchmark(name).source, options)
    violations = lint_module(program.module, program.alias)
    failed = bool(violations)
    row = None
    for geometry in geometries:
        analysis = analyze_program(program, geometry)
        if row is None:
            row = "{:10s} {:>6d} {:>8d} {:>6.1f}%".format(
                name, len(violations), len(analysis.sites),
                analysis.static_bypass_percent,
            )
        report = cross_validate(
            program, geometry, max_steps=max_steps, analysis=analysis,
        )
        if report.mismatches or report.dynamic_classified_percent < 50.0:
            failed = True
        row += "  {:>12d} {:>8.1f}%".format(
            len(report.mismatches), report.dynamic_classified_percent
        )
    violation_lines = [
        "  {!r}".format(violation) for violation in violations
    ]
    return failed, row, violation_lines


def _run_check(args):
    """CI mode: every benchmark must lint clean and validate clean."""
    names = (args.benchmark,) if args.benchmark else BENCHMARK_NAMES
    geometries = _geometries(args)
    # The precision table is about *memory* references, so expose the
    # full reference stream: no register promotion (higher promotion
    # levels hide scalar traffic in registers, leaving little for the
    # classifier to grade).  Scheme and the other toggles follow the
    # command line.
    options = _compile_options(args)
    options = CompilationOptions(
        scheme=options.scheme,
        promotion="none",
        promotion_budget=options.promotion_budget,
        kill_bits=options.kill_bits,
        spill_to_cache=options.spill_to_cache,
        bypass_user_refs=options.bypass_user_refs,
        merge_true_aliases=options.merge_true_aliases,
        refine_points_to=options.refine_points_to,
        cache_globals_in_blocks=options.cache_globals_in_blocks,
    )

    header = "{:10s} {:>6s} {:>8s} {:>7s}".format(
        "benchmark", "lint", "sites", "byp%"
    )
    for geometry in geometries:
        header += "  {:>22s}".format(
            "{}w/{}way mm/dyn%".format(geometry.size_words,
                                       geometry.associativity)
        )
    print(header)
    print("-" * len(header))

    failed = False
    payloads = [
        (name, options, tuple(geometries), args.max_steps) for name in names
    ]
    from repro.evalharness.parallel import pool_map

    for benchmark_failed, row, violation_lines in pool_map(
        _check_benchmark_worker, payloads, jobs=args.jobs
    ):
        if benchmark_failed:
            failed = True
        print(row)
        for line in violation_lines:
            print(line)
    if failed:
        print("FAIL: lint violations, mismatches, or <50% dynamic "
              "classification", file=sys.stderr)
        return 1
    print("all benchmarks: zero lint violations, zero mismatches, "
          ">=50% of dynamic references classified")
    return 0
