"""The static-only Figure 5 predictor: hit ratios without a cache.

If the tiered analysis (:mod:`repro.staticcheck.mustmay` plus the
exact refinement in :mod:`repro.staticcheck.exact`) really decides
every reference, the cache simulator is redundant for hit counting:
each dynamic event's outcome is already written down in its site's
verdict.  This module cashes that claim in.  It executes the program
once over flat memory — **no** :class:`~repro.cache.semantics.UnifiedCache`,
no replacement state, no probe — and counts predicted hits and misses
purely from the verdicts:

* ``always-hit`` / ``exact-hit``   → predicted hit;
* ``always-miss`` / ``exact-miss`` → predicted miss;
* ``exact-persistent`` → predicted present exactly when the address
  was installed through the cache and not since removed by a bypass
  or kill (the same history the cross-validator replays; exact
  because the verdict certifies the involved sets never evict);
* ``input-dependent`` / ``unknown`` → *unpredicted*: the event is
  counted but the prediction is disqualified from exactness.

The bookkeeping mirrors :class:`~repro.cache.semantics.UnifiedCache`
stat semantics exactly: honored bypasses never touch ``hits`` /
``misses`` (they are ``refs_bypassed``), while killed references
still score hit-or-miss by presence.  A prediction with zero
unpredicted events therefore makes a falsifiable claim — its
``hits``/``misses`` must equal the simulator's for the same program
and geometry — and the Figure 5 harness
(:func:`repro.evalharness.figure5.static_predictor_table`) checks
that equality benchmark by benchmark.
"""

from repro.cache.cache import CacheConfig
from repro.staticcheck.mustmay import Classification, analyze_program
from repro.vm.memory import FlatMemory, MemorySystem

_HIT_VERDICTS = frozenset(
    {Classification.ALWAYS_HIT, Classification.EXACT_HIT}
)
_MISS_VERDICTS = frozenset(
    {Classification.ALWAYS_MISS, Classification.EXACT_MISS}
)


class PredictingMemory(MemorySystem):
    """Flat memory that scores hits/misses from static verdicts alone."""

    def __init__(self, analysis, flat=None):
        self.analysis = analysis
        self.flat = flat if flat is not None else FlatMemory()
        self.hits = 0
        self.misses = 0
        self.refs_total = 0
        self.refs_bypassed = 0
        self.unpredicted = 0
        self.unpredicted_sites = {}
        self._predictions = analysis.predictions
        self._sites = {id(site.ref): site for site in analysis.sites}
        self._installed = set()
        self._honor_bypass = analysis.config.honor_bypass
        self._honor_kill = analysis.config.honor_kill

    def _predict(self, address, ref):
        self.refs_total += 1
        if ref.bypass and self._honor_bypass:
            # Bypass path: served around the cache, never a hit/miss
            # event; any resident copy is gone afterwards.
            self.refs_bypassed += 1
            self._installed.discard(address)
            return
        verdict = self._predictions.get(id(ref))
        if verdict in _HIT_VERDICTS:
            self.hits += 1
        elif verdict in _MISS_VERDICTS:
            self.misses += 1
        elif verdict is Classification.EXACT_PERSISTENT:
            if address in self._installed:
                self.hits += 1
            else:
                self.misses += 1
        else:
            self.unpredicted += 1
            site = self._sites.get(id(ref))
            if site is not None and len(self.unpredicted_sites) < 10:
                self.unpredicted_sites.setdefault(
                    site.where(), site.classification.value
                )
        if ref.kill and self._honor_kill:
            # A killed read installs nothing (hit or miss); a killed
            # write retires its own line after the transient allocate.
            self._installed.discard(address)
        else:
            self._installed.add(address)

    def read(self, address, ref):
        self._predict(address, ref)
        return self.flat.words.get(address, 0)

    def write(self, address, value, ref):
        self._predict(address, ref)
        self.flat.words[address] = value

    def poke(self, address, value):
        self.flat.poke(address, value)

    def peek(self, address):
        return self.flat.peek(address)


class StaticPrediction:
    """One program's verdict-predicted cache behavior under one
    geometry."""

    __slots__ = ("analysis", "config", "hits", "misses", "refs_total",
                 "refs_bypassed", "unpredicted", "unpredicted_sites",
                 "result")

    def __init__(self, analysis, memory, result):
        self.analysis = analysis
        self.config = analysis.config
        self.hits = memory.hits
        self.misses = memory.misses
        self.refs_total = memory.refs_total
        self.refs_bypassed = memory.refs_bypassed
        self.unpredicted = memory.unpredicted
        self.unpredicted_sites = memory.unpredicted_sites
        self.result = result

    @property
    def exact(self):
        """Did every through-cache event carry a definite verdict?
        Only then do ``hits``/``misses`` claim simulator equality."""
        return self.unpredicted == 0

    @property
    def refs_cached(self):
        return self.hits + self.misses + self.unpredicted

    @property
    def hit_rate(self):
        """Predicted hit rate of the through-cache references (the
        simulator's ``CacheStats.hit_rate``); meaningless unless
        ``exact``."""
        cached = self.refs_cached
        if not cached:
            return 0.0
        return self.hits / cached

    def agrees_with(self, stats):
        """Exact agreement with a simulated
        :class:`~repro.cache.stats.CacheStats` for the same run."""
        return (
            self.exact
            and self.hits == stats.hits
            and self.misses == stats.misses
        )

    def describe(self):
        body = "{} hits / {} misses predicted, {} bypassed".format(
            self.hits, self.misses, self.refs_bypassed
        )
        if self.exact:
            return body + " (exact)"
        return body + ", {} unpredicted (first: {})".format(
            self.unpredicted,
            "; ".join(
                "{} [{}]".format(where, verdict)
                for where, verdict in sorted(
                    self.unpredicted_sites.items()
                )[:3]
            ) or "?",
        )


def predict_program(
    program,
    cache_config=None,
    entry="main",
    max_steps=None,
    analysis=None,
    exact_budget=None,
):
    """Run ``program`` once under :class:`PredictingMemory`.

    Builds the exactly-refined analysis when none is passed.  Raises
    :class:`~repro.staticcheck.StaticCheckError` when the geometry is
    outside the analysis's model (multi-word lines, write-around, ...)
    — the predictor has nothing sound to say there.
    """
    if cache_config is None:
        cache_config = CacheConfig()
    if analysis is None:
        analysis = analyze_program(
            program, cache_config, entry=entry, exact=True,
            exact_budget=exact_budget,
        )
    memory = PredictingMemory(analysis)
    kwargs = {}
    if max_steps is not None:
        kwargs["max_steps"] = max_steps
    result = program.run(entry=entry, memory=memory, **kwargs)
    return StaticPrediction(analysis, memory, result)
