"""Dynamic cross-validation of the static cache analysis.

The analysis and the simulator describe the same machine from
opposite ends: the analysis proves presence/absence from the program
text, the simulator observes it by running the program.  Replaying an
execution through the real cache model while checking every
*always-hit* / *always-miss* claim turns the two into mutual
correctness oracles — a mismatch means either the abstract transfer
functions or the concrete cache semantics are wrong, and both are
worth knowing about immediately.

The contract checked per dynamic memory reference, before the access
is applied:

* ``ALWAYS_HIT`` / ``EXACT_HIT``   → ``cache.probe(address)`` is True;
* ``ALWAYS_MISS`` / ``EXACT_MISS`` → ``cache.probe(address)`` is False;
* ``EXACT_PERSISTENT`` → ``cache.probe(address)`` equals the presence
  history the validator replays itself: an address is predicted
  present exactly when it was installed through the cache and not
  since removed by a bypass or kill.  The certificate behind the
  verdict (:mod:`repro.staticcheck.uncertainty`) proves the involved
  sets never evict, which is precisely what makes this history exact —
  so the audit doubles as a check of the certificate.
* ``INPUT_DEPENDENT`` → nothing: the verdict *is* "either outcome can
  happen"; the event is counted as decided (the analysis finished
  with it) but not definite.
* ``UNKNOWN`` → nothing (counted, for the precision summary).

Static sites are keyed by RefInfo identity: each Load/Store owns one
:class:`~repro.ir.instructions.RefInfo` and the VM hands exactly that
object to the memory system, so ``id(ref)`` connects dynamic events to
static classifications with no trace-format changes.
"""

from repro.cache.cache import CacheConfig
from repro.cache.semantics import UnifiedCache
from repro.staticcheck import StaticCheckError
from repro.staticcheck.mustmay import (
    TIER_OF,
    TIERS,
    Classification,
    analyze_program,
)
from repro.vm.memory import FlatMemory, MemorySystem


class Mismatch:
    """One dynamic contradiction of a static claim."""

    __slots__ = ("site", "address", "event_index", "predicted", "present")

    def __init__(self, site, address, event_index, predicted, present):
        self.site = site
        self.address = address
        self.event_index = event_index
        self.predicted = predicted
        self.present = present

    def __repr__(self):
        return (
            "Mismatch(event {} at {} {}: predicted {}, block {} present="
            "{})".format(
                self.event_index,
                self.site.where(),
                self.site.ref.access_path,
                self.predicted.value,
                self.address,
                self.present,
            )
        )


class ValidatingMemory(MemorySystem):
    """Flat memory + online cache that audits static claims in-line."""

    def __init__(self, analysis, flat=None, max_mismatches=25):
        self.analysis = analysis
        # The audit drives the canonical transfer function directly:
        # probe() and access() answer from the same per-event
        # semantics every other engine is defined against.
        self.cache = UnifiedCache(analysis.config)
        self.flat = flat if flat is not None else FlatMemory()
        self.max_mismatches = max_mismatches
        self.mismatches = []
        self.events_total = 0
        self.events_classified = 0
        self.event_tiers = {tier: 0 for tier in TIERS}
        self._predictions = analysis.predictions
        self._sites = {id(site.ref): site for site in analysis.sites}
        # The presence history behind exact-persistent audits: which
        # addresses are currently installed through the cache.  Exact
        # for every address living in a certified (eviction-free) set;
        # persistent verdicts are only ever issued for those.
        self._installed = set()
        self._honor_bypass = analysis.config.honor_bypass
        self._honor_kill = analysis.config.honor_kill

    _HIT_VERDICTS = frozenset(
        {Classification.ALWAYS_HIT, Classification.EXACT_HIT}
    )
    _MISS_VERDICTS = frozenset(
        {Classification.ALWAYS_MISS, Classification.EXACT_MISS}
    )

    def _audit(self, address, ref):
        self.events_total += 1
        verdict = self._predictions.get(id(ref))
        if verdict is None:
            self.event_tiers["unknown"] += 1
            self._track(address, ref)
            return
        self.event_tiers[TIER_OF[verdict]] += 1
        if verdict in self._HIT_VERDICTS:
            expected = True
        elif verdict in self._MISS_VERDICTS:
            expected = False
        elif verdict is Classification.EXACT_PERSISTENT:
            expected = address in self._installed
        else:  # UNKNOWN / INPUT_DEPENDENT: nothing to audit.
            self._track(address, ref)
            return
        self.events_classified += 1
        present = self.cache.probe(address)
        if present != expected and len(self.mismatches) < self.max_mismatches:
            self.mismatches.append(
                Mismatch(
                    self._sites[id(ref)],
                    address,
                    self.events_total - 1,
                    verdict,
                    present,
                )
            )
        self._track(address, ref)

    def _track(self, address, ref):
        """Replay the presence history (one-word lines, write-allocate,
        invalidate-mode kills — the geometries the analysis models).
        A through access leaves the block installed; a bypass or kill
        leaves it absent (a killed read misses around the cache, a
        killed write retires its own line after the transient
        allocate)."""
        if (ref.bypass and self._honor_bypass) or (
            ref.kill and self._honor_kill
        ):
            self._installed.discard(address)
        else:
            self._installed.add(address)

    def read(self, address, ref):
        self._audit(address, ref)
        self.cache.access(address, False, ref.bypass, ref.kill)
        return self.flat.words.get(address, 0)

    def write(self, address, value, ref):
        self._audit(address, ref)
        self.cache.access(address, True, ref.bypass, ref.kill)
        self.flat.words[address] = value

    def poke(self, address, value):
        self.flat.poke(address, value)

    def peek(self, address):
        return self.flat.peek(address)


class CrossValidationReport:
    """Outcome of one validated execution under one geometry."""

    __slots__ = ("analysis", "config", "mismatches", "events_total",
                 "events_classified", "event_tiers", "result")

    def __init__(self, analysis, memory, result):
        self.analysis = analysis
        self.config = analysis.config
        self.mismatches = memory.mismatches
        self.events_total = memory.events_total
        self.events_classified = memory.events_classified
        self.event_tiers = memory.event_tiers
        self.result = result

    @property
    def ok(self):
        return not self.mismatches

    @property
    def dynamic_classified_percent(self):
        """% of dynamic data references whose static site carried a
        definite (audited per-event) verdict: the always + exact
        tiers."""
        if not self.events_total:
            return 0.0
        return 100.0 * self.events_classified / self.events_total

    @property
    def dynamic_decided_percent(self):
        """% of dynamic references whose site the analysis finished
        with — definite verdicts plus the input-dependent tier (where
        "both outcomes happen" *is* the answer)."""
        if not self.events_total:
            return 0.0
        decided = self.events_total - self.event_tiers["unknown"]
        return 100.0 * decided / self.events_total

    def tier_percents(self):
        """{tier: % of dynamic events} for the reporting breakout."""
        total = self.events_total or 1
        return {
            tier: 100.0 * count / total
            for tier, count in self.event_tiers.items()
        }

    def describe_geometry(self):
        return "{}w/{}-way/{}".format(
            self.config.size_words,
            self.config.associativity,
            self.config.policy,
        )


def cross_validate(
    program,
    cache_config=None,
    entry="main",
    max_steps=None,
    analysis=None,
    raise_on_mismatch=False,
    globals_init=None,
    exact=False,
    exact_budget=None,
):
    """Run ``program`` once, auditing the analysis's claims.

    Returns a :class:`CrossValidationReport`; with
    ``raise_on_mismatch`` the first contradiction becomes a
    :class:`~repro.staticcheck.StaticCheckError` (stage
    ``staticcheck``, kind ``crossval``) after the run completes.
    ``exact`` (used when no ready ``analysis`` is passed) runs the
    exact refinement pass before validating, so its verdicts get
    audited too.
    """
    if cache_config is None:
        cache_config = CacheConfig()
    if analysis is None:
        analysis = analyze_program(
            program, cache_config, entry=entry, exact=exact,
            exact_budget=exact_budget,
        )
    memory = ValidatingMemory(analysis)
    kwargs = {}
    if max_steps is not None:
        kwargs["max_steps"] = max_steps
    result = program.run(
        entry=entry, memory=memory, globals_init=globals_init, **kwargs
    )
    report = CrossValidationReport(analysis, memory, result)
    if report.mismatches and raise_on_mismatch:
        raise StaticCheckError(
            "crossval",
            "{} static/dynamic mismatch(es) under {}; first: {}".format(
                len(report.mismatches),
                report.describe_geometry(),
                report.mismatches[0],
            ),
        )
    return report
