"""The abstract location model of the static cache analysis.

The cache simulator works on concrete word addresses; the analysis
works on *locations* — compile-time names for the blocks a reference
may touch.  Locations are plain tuples (hashable, ordered, cheap):

``("g", address, at)``
    A global scalar word at a concrete address.  ``at`` records
    whether its address is taken (reachable through pointers).
``("f", function, offset, at)``
    A scalar word of the *current invocation's* frame at a known
    offset from the frame pointer (locals, params, spill slots,
    callee saves).  Identity is only stable within one invocation —
    which is exactly the region the intraprocedural analysis covers,
    because calls havoc the state (see ``mustmay``).
``("ga", address, size, esc)`` / ``("fa", function, offset, size, esc)``
    A whole array (global / frame-resident): a *summary* covering
    ``size`` consecutive words; individual elements are not tracked.
    ``esc`` records whether the array escapes into pointer values.
``AMBIG``
    Some member of the ambiguous universe: any address-taken scalar,
    any escaping array, any word reachable through an untracked
    pointer, including scalars of *other* live frames.
``STACK``
    Some word of a dead deeper frame (below the current frame
    pointer): junk left in the cache by completed callees.  Only
    relevant when translating a caller's state into a callee's entry
    state, where dead-frame addresses coincide with the callee's
    fresh frame.

A reference resolves (:func:`resolve_target`) to either one *strong*
location — a single stable word every execution of the reference
touches — or a *weak* set of candidate locations.

Soundness assumption, inherited from the repo's alias analysis (and
ultimately from the paper): a reference only ever touches addresses
inside its alias region.  Out-of-bounds pointer arithmetic off a
scalar's address is undefined behaviour in MiniC just as in C; the
bypass/kill annotations themselves are already unsound for such
programs, so the static analysis assumes them away too.
"""

from repro.ir.function import SpillSlot
from repro.ir.instructions import RegionKind, SymMem

#: Summary locations (see module docstring).
AMBIG = ("ambig",)
STACK = ("stack",)


def loc_of_symbol(symbol, function):
    """The location of one directly addressed scalar symbol."""
    if symbol.global_address is not None:
        return ("g", symbol.global_address, bool(symbol.address_taken))
    return (
        "f",
        function.name,
        function.frame.offset_of(symbol),
        bool(symbol.address_taken),
    )


def loc_of_array(symbol, function):
    """The summary location of one array symbol."""
    size = symbol.type.size_words()
    if symbol.global_address is not None:
        return ("ga", symbol.global_address, size, bool(symbol.escapes))
    return (
        "fa",
        function.name,
        function.frame.offset_of(symbol),
        size,
        bool(symbol.escapes),
    )


def is_word(loc):
    """True for single-word locations (may appear in the must set)."""
    return loc[0] in ("g", "f")


def is_ambiguous_reachable(loc):
    """May this location be touched by an ambiguous reference?

    Mirrors the alias analysis: address-taken scalars and escaping
    arrays are reachable through pointers; everything else is not.
    The summaries are ambiguous by definition.
    """
    tag = loc[0]
    if tag in ("g", "f"):
        return loc[-1]
    if tag in ("ga", "fa"):
        return loc[-1]
    return True  # AMBIG / STACK


def _span(loc):
    """(base_key, offset, size) for conflict computation."""
    tag = loc[0]
    if tag == "g":
        return ("g",), loc[1], 1
    if tag == "f":
        return ("f", loc[1]), loc[2], 1
    if tag == "ga":
        return ("g",), loc[1], loc[2]
    if tag == "fa":
        return ("f", loc[1]), loc[2], loc[3]
    return None, 0, 0  # summaries: caller treats as always-conflicting


def may_conflict(a, b, num_sets):
    """May locations ``a`` and ``b`` map to the same cache set?

    Exact when both share an address base (two globals; two slots of
    the same frame): set indices differ by a known amount, so the
    answer follows from the offsets mod ``num_sets``.  Conservatively
    true across bases (the frame pointer is unknown relative to the
    global segment and to other frames) and for the summaries.
    """
    if num_sets <= 1:
        return True
    base_a, off_a, size_a = _span(a)
    base_b, off_b, size_b = _span(b)
    if base_a is None or base_b is None:
        return True
    if base_a != base_b:
        return True
    if size_a >= num_sets or size_b >= num_sets:
        return True
    delta = (off_b - off_a) % num_sets
    # Ranges [0, size_a) and [delta, delta+size_b) intersect mod S?
    if delta < size_a:
        return True
    return delta + size_b > num_sets


class ResolvedTarget:
    """What one memory reference may touch.

    ``strong`` is a single word location every execution of the
    reference touches (or ``None``); ``weak`` is the tuple of
    candidate locations otherwise.  ``top`` means the candidates are
    unknown (treat as the whole ambiguous universe).
    """

    __slots__ = ("strong", "weak")

    def __init__(self, strong=None, weak=()):
        self.strong = strong
        self.weak = tuple(weak)

    def candidates(self):
        if self.strong is not None:
            return (self.strong,)
        return self.weak

    def __repr__(self):
        if self.strong is not None:
            return "ResolvedTarget(strong={})".format(self.strong)
        return "ResolvedTarget(weak={})".format(list(self.weak))


def resolve_target(function, instruction, alias):
    """Resolve one Load/Store to a :class:`ResolvedTarget`."""
    ref = instruction.ref
    mem = instruction.mem
    if isinstance(mem, SymMem):
        return ResolvedTarget(strong=loc_of_symbol(mem.symbol, function))

    kind = ref.region_kind
    if kind is RegionKind.ARRAY:
        return ResolvedTarget(weak=(loc_of_array(ref.region_symbol, function),))
    if kind is RegionKind.POINTER:
        regions = alias.points_to.get(ref.region_symbol, ())
        if not regions:
            # Nothing flowed into this pointer that the analysis saw;
            # a successful dereference at run time means some valid
            # address reached it anyway — stay conservative.
            return ResolvedTarget(weak=(AMBIG,))
        weak = []
        for region in sorted(regions, key=_region_sort_key):
            weak.append(_region_to_loc(region, function))
        weak = _dedup(weak)
        if len(weak) == 1 and is_word(weak[0]):
            # A single stable word target: every non-faulting
            # execution of the dereference touches exactly it.
            return ResolvedTarget(strong=weak[0])
        return ResolvedTarget(weak=weak)
    return ResolvedTarget(weak=(AMBIG,))


def _region_sort_key(region):
    kind, symbol = region
    return (kind, symbol.id if symbol is not None else -1)


def _region_to_loc(region, function):
    kind, symbol = region
    if kind == "scalar":
        if symbol.global_address is not None:
            return ("g", symbol.global_address, bool(symbol.address_taken))
        if not isinstance(symbol, SpillSlot) and function.frame.contains(symbol):
            return (
                "f",
                function.name,
                function.frame.offset_of(symbol),
                bool(symbol.address_taken),
            )
        # A local of some *other* function: its address is not stable
        # relative to this invocation's frame pointer, and it is
        # necessarily address-taken (its address got into a pointer).
        return AMBIG
    if kind == "array":
        if symbol.global_address is not None:
            return ("ga", symbol.global_address, symbol.type.size_words(),
                    bool(symbol.escapes))
        if function.frame.contains(symbol):
            return (
                "fa",
                function.name,
                function.frame.offset_of(symbol),
                symbol.type.size_words(),
                bool(symbol.escapes),
            )
        return AMBIG
    return AMBIG


def _dedup(locs):
    seen = []
    for loc in locs:
        if loc not in seen:
            seen.append(loc)
    return seen


def describe_loc(loc):
    """Human-readable form for tables and diagnostics."""
    tag = loc[0]
    if tag == "g":
        return "glob@{}".format(loc[1])
    if tag == "f":
        return "{}.fp+{}".format(loc[1], loc[2])
    if tag == "ga":
        return "glob@{}..{}".format(loc[1], loc[1] + loc[2] - 1)
    if tag == "fa":
        return "{}.fp+{}..{}".format(loc[1], loc[2], loc[2] + loc[3] - 1)
    if loc == AMBIG:
        return "<ambiguous>"
    return "<dead-frames>"
