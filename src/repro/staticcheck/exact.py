"""The exact decision procedure: focused explicit-state cache
exploration.

For the residual references the must/may analysis left unknown and the
uncertainty filter (:mod:`repro.staticcheck.uncertainty`) routed here,
this module model-checks the (CFG location x concrete cache set)
product: it enumerates every reachable LRU stack of the one cache set
the focused reference maps to, walking the whole interprocedural CFG
with transfer rules that mirror
:meth:`repro.cache.semantics.UnifiedCache.access` case by case — a
through hit refreshes to MRU, a miss installs at MRU and evicts the
LRU block from a full set, a bypass takes the block out, an
invalidate-mode kill leaves the line invalid, and a killed write that
misses installs transiently (it can evict a victim) before retiring
itself.  Because the exploration and the simulator apply the same
per-event rules to the same concrete addresses, they cannot disagree
by construction; the dynamic cross-validation audits the resulting
``exact-hit``/``exact-miss`` verdicts anyway.

The state space is kept small three ways:

* one set at a time — references mapping elsewhere are no-ops, and
  whole functions that cannot affect the focused set (directly or via
  callees) are skipped;
* LRU stacks are bounded by the associativity over the set's concrete
  block alphabet;
* a hard budget on transfer-step applications.  Exhaustion raises
  :class:`~repro.errors.ResourceExhausted` tagged with the
  ``static-analysis`` stage; :func:`refine_analysis` catches it and
  degrades every undecided site to its must/may (or persistence)
  fallback instead of failing the analysis.

Interprocedural precision is context-sensitive in the set state: each
``(function, entry_stack)`` pair is tabulated to its reachable exit
stacks, with recursion handled by iterating the whole context table to
a fixpoint (exit sets only grow, so the iteration terminates).

The procedure *refuses* (and the sites keep their fallback verdicts)
when the program can install a block whose address is unknown at
compile time — a frame word or an ambiguous pointer target could land
in the focused set and corrupt the stack model — or when the
replacement policy is not true LRU.  Ambiguous *removals* (a bypassed
or killed pointer dereference) are handled exactly by branching over
every pointer-reachable resident block plus the no-op.
"""

from repro.errors import ResourceExhausted
from repro.ir.instructions import Call, Load, Store
from repro.staticcheck.mustmay import Classification
from repro.staticcheck.uncertainty import (
    ROUTE_EXPLORE,
    ROUTE_INPUT_DEPENDENT,
    ROUTE_PERSISTENT,
    compute_footprint,
    expand_location,
    route_residuals,
)

#: Default transfer-step budget for one whole refinement pass (all
#: focused sets together).  Overridable per call and from the CLI via
#: ``--exact-budget``.
DEFAULT_EXACT_BUDGET = 300_000


def _exhausted(used, limit):
    error = ResourceExhausted(
        "exact cache exploration exhausted its budget ({} transfer "
        "steps > {}); undecided sites keep their fallback "
        "verdicts".format(used, limit)
    )
    error.stage = "static-analysis"
    return error


class _Refused(Exception):
    """Internal: this set cannot be explored exactly (reason inside)."""

    def __init__(self, reason):
        self.reason = reason
        super().__init__(reason)


class _Budget:
    """Shared step counter across every focused set of one pass."""

    __slots__ = ("limit", "used")

    def __init__(self, limit):
        self.limit = limit
        self.used = 0

    def spend(self, count):
        self.used += count
        if self.used > self.limit:
            raise _exhausted(self.used, self.limit)


# ----------------------------------------------------------------------
# Module model: per-instruction operations, precomputed once.
# ----------------------------------------------------------------------

_OP_CALL = 0
_OP_REF = 1
_OP_POISON = 2


class _ModuleModel:
    """The program lowered to cache-relevant operations.

    Per function: ``blocks`` maps block name to the operation list,
    ``succs`` to successor names; exit blocks have no successors.
    Operations are tuples:

    * ``(_OP_CALL, callee_name)``
    * ``(_OP_REF, instr_id, words, bypass, kill, is_write, ambig)`` —
      ``words`` are the concrete candidate addresses; ``ambig`` marks
      an additional ambiguous-removal choice.
    * ``(_OP_POISON, reason)`` — an operation the model cannot express
      (unknown-address install, unknown callee); executing it refuses
      the whole set.
    """

    __slots__ = ("analysis", "functions", "reachable_words")

    def __init__(self, analysis, footprint):
        self.analysis = analysis
        self.reachable_words = footprint.addresses
        self.functions = {}
        module = analysis.module
        for name, function in module.functions.items():
            blocks = {}
            succs = {}
            for block in function.block_list():
                ops = []
                for instruction in block.instructions:
                    op = self._lower(module, function, instruction)
                    if op is not None:
                        ops.append(op)
                blocks[block.name] = ops
                succs[block.name] = [s.name for s in block.succs]
            self.functions[name] = (blocks, succs, function.entry_name)

    def _lower(self, module, function, instruction):
        cls = instruction.__class__
        if cls is Call:
            if instruction.callee not in module.functions:
                return (_OP_POISON,
                        "unknown callee {!r}".format(instruction.callee))
            return (_OP_CALL, instruction.callee)
        if cls is not Load and cls is not Store:
            return None
        analysis = self.analysis
        target = analysis._target(function, instruction)
        bypass, kill = analysis._effective(instruction.ref)
        is_write = cls is Store
        installs = not bypass and (is_write or not kill)
        words = []
        ambig = False
        for loc in target.candidates():
            expansion = expand_location(loc)
            if expansion is None:
                if installs:
                    # An unknown-address install could land in any set.
                    return (_OP_POISON,
                            "unmodeled install in {} ({})".format(
                                function.name,
                                instruction.ref.access_path))
                if loc[0] in ("f", "fa"):
                    # Frame blocks are never installed in an explorable
                    # module, so removing one is a no-op.
                    continue
                ambig = True  # AMBIG/STACK removal: branch at run time.
            else:
                words.extend(expansion)
        return (_OP_REF, id(instruction), tuple(sorted(set(words))),
                bypass, kill, is_write, ambig)


# ----------------------------------------------------------------------
# Per-set exploration.
# ----------------------------------------------------------------------


def _remove(state, word):
    return tuple(x for x in state if x != word)


class _SetExploration:
    """Tabulated exploration of one cache set."""

    __slots__ = ("model", "set_index", "num_sets", "assoc", "focus",
                 "ops", "succs", "entries", "budget", "outcomes",
                 "contexts")

    def __init__(self, model, set_index, focus, budget):
        config = model.analysis.config
        self.model = model
        self.set_index = set_index
        self.num_sets = config.num_sets
        self.assoc = config.associativity
        self.focus = focus  # {instr_id: word}
        self.budget = budget
        self.outcomes = {key: set() for key in focus}
        self.contexts = {}
        self._specialize()

    def _specialize(self):
        """Keep only the operations that can affect this set, then
        prune calls to functions that (transitively) cannot."""
        set_index = self.set_index
        num_sets = self.num_sets
        kept = {}
        calls = {}
        affects = {}
        for name, (blocks, succs, _entry) in self.model.functions.items():
            out = {}
            fn_calls = set()
            fn_affects = False
            for block, ops in blocks.items():
                ops_out = []
                for op in ops:
                    kind = op[0]
                    if kind == _OP_CALL:
                        fn_calls.add(op[1])
                        ops_out.append(op)
                        continue
                    if kind == _OP_POISON:
                        fn_affects = True
                        ops_out.append(op)
                        continue
                    (_kind, instr_id, words, bypass, kill, is_write,
                     ambig) = op
                    in_set = tuple(
                        w for w in words if w % num_sets == set_index
                    )
                    outside = ambig or len(in_set) < len(words)
                    if not in_set and not ambig:
                        continue  # Cannot touch this set: no-op.
                    ops_out.append(
                        (_OP_REF, instr_id, in_set, bypass, kill,
                         is_write, ambig, outside)
                    )
                    fn_affects = True
                out[block] = ops_out
            kept[name] = out
            calls[name] = fn_calls
            affects[name] = fn_affects
        changed = True
        while changed:
            changed = False
            for name, callees in calls.items():
                if not affects[name] and any(
                    affects.get(c, False) for c in callees
                ):
                    affects[name] = True
                    changed = True
        self.ops = {}
        self.succs = {}
        self.entries = {}
        for name, (blocks, succs, entry) in self.model.functions.items():
            pruned = {
                block: [
                    op for op in ops
                    if op[0] != _OP_CALL or affects.get(op[1], False)
                ]
                for block, ops in kept[name].items()
            }
            self.ops[name] = pruned
            self.succs[name] = succs
            self.entries[name] = entry

    # -- transfer rules (mirror UnifiedCache.access) -------------------

    def _apply_ref(self, state, op):
        (_kind, instr_id, in_set, bypass, kill, is_write, ambig,
         outside) = op
        assoc = self.assoc
        results = set()
        if outside or not in_set:
            results.add(state)  # The choice lands in another set.
        for word in in_set:
            if bypass or (kill and not is_write):
                # Bypass takes/invalidates a resident copy; a killed
                # read misses around the cache.  Either way the block
                # is absent afterwards and nobody else moves.
                results.add(
                    _remove(state, word) if word in state else state
                )
            elif kill:  # killed write
                if word in state:
                    results.add(_remove(state, word))
                elif len(state) == assoc:
                    # Transient allocate evicts the LRU block, then
                    # the line is invalidated.
                    results.add(state[:-1])
                else:
                    results.add(state)
            else:  # through-cache load/store
                if word in state:
                    results.add((word,) + _remove(state, word))
                else:
                    installed = (word,) + state
                    results.add(installed[:assoc])
        if ambig:
            # The ambiguous removal may take out any pointer-reachable
            # resident block (the no-op branch is covered above).
            reachable = self.model.reachable_words
            for word in state:
                if reachable.get(word, False):
                    results.add(_remove(state, word))
        return results

    # -- the tabulation -----------------------------------------------

    def run(self):
        entry = self.model.analysis.entry
        if entry not in self.ops:
            raise _Refused("entry function {!r} missing".format(entry))
        self.contexts[(entry, ())] = set()
        changed = True
        while changed:
            changed = False
            for ctx in sorted(self.contexts):
                exits, grew = self._run_context(ctx)
                if grew or exits - self.contexts[ctx]:
                    self.contexts[ctx] |= exits
                    changed = True
        return self.outcomes

    def _run_context(self, ctx):
        name, entry_state = ctx
        ops = self.ops[name]
        succs = self.succs[name]
        focus = self.focus
        outcomes = self.outcomes
        contexts = self.contexts
        budget = self.budget
        exits = set()
        grew = False
        seen = {(self.entries[name], entry_state)}
        work = [(self.entries[name], entry_state)]
        while work:
            block, state = work.pop()
            states = {state}
            for op in ops[block]:
                budget.spend(len(states))
                kind = op[0]
                if kind == _OP_CALL:
                    merged = set()
                    for st in states:
                        callee_ctx = (op[1], st)
                        known = contexts.get(callee_ctx)
                        if known is None:
                            contexts[callee_ctx] = set()
                            grew = True
                        else:
                            merged |= known
                    states = merged
                    if not states:
                        break  # No callee exit known yet: truncate.
                elif kind == _OP_POISON:
                    raise _Refused(op[1])
                else:
                    key = op[1]
                    if key in focus:
                        word = focus[key]
                        for st in states:
                            outcomes[key].add(word in st)
                    merged = set()
                    for st in states:
                        merged |= self._apply_ref(st, op)
                    states = merged
            if not states:
                continue
            block_succs = succs[block]
            if not block_succs:
                exits |= states
                continue
            for succ in block_succs:
                for st in states:
                    if (succ, st) not in seen:
                        seen.add((succ, st))
                        work.append((succ, st))
        return exits, grew


# ----------------------------------------------------------------------
# The refinement orchestrator.
# ----------------------------------------------------------------------


class RefinementReport:
    """What one exact refinement pass did, for tables and telemetry."""

    __slots__ = (
        "footprint", "budget", "steps_used", "exhausted",
        "persistent_sites", "input_dependent_sites", "exact_hit_sites",
        "exact_miss_sites", "explored_sites", "refused_sites",
        "refusal_reasons", "residual_unknown",
    )

    def __init__(self, footprint, budget):
        self.footprint = footprint
        self.budget = budget
        self.steps_used = 0
        self.exhausted = False
        self.persistent_sites = 0
        self.input_dependent_sites = 0
        self.exact_hit_sites = 0
        self.exact_miss_sites = 0
        self.explored_sites = 0
        self.refused_sites = 0
        self.refusal_reasons = []
        self.residual_unknown = 0

    def describe(self):
        parts = [
            "{} persistent".format(self.persistent_sites),
            "{} exact-hit".format(self.exact_hit_sites),
            "{} exact-miss".format(self.exact_miss_sites),
            "{} input-dependent".format(self.input_dependent_sites),
            "{} residual unknown".format(self.residual_unknown),
            "{} steps".format(self.steps_used),
        ]
        if self.exhausted:
            parts.append("budget exhausted")
        return ", ".join(parts)


def _fallback(route, report):
    """The verdict for an explore candidate the exploration could not
    decide: the persistence certificate when available, else the
    original must/may unknown."""
    if route.certified:
        report.persistent_sites += 1
        return Classification.EXACT_PERSISTENT
    report.residual_unknown += 1
    return Classification.UNKNOWN


def refine_analysis(analysis, budget=None):
    """Run the full refinement pass over ``analysis`` in place.

    Routes every residual unknown through the uncertainty filter,
    explores the survivors set by set, rewrites the affected sites'
    classifications, rebuilds ``analysis.predictions``, and returns a
    :class:`RefinementReport`.  Never raises for budget exhaustion —
    undecided sites simply keep their fallback verdicts.
    """
    if budget is None:
        budget = DEFAULT_EXACT_BUDGET
    footprint = compute_footprint(analysis)
    report = RefinementReport(footprint, budget)
    unknown = [
        site for site in analysis.sites
        if site.classification is Classification.UNKNOWN
    ]
    routes = route_residuals(analysis, footprint, unknown)
    explore_routes = []
    for route in routes:
        if route.kind == ROUTE_PERSISTENT:
            route.site.classification = Classification.EXACT_PERSISTENT
            report.persistent_sites += 1
        elif route.kind == ROUTE_INPUT_DEPENDENT:
            route.site.classification = Classification.INPUT_DEPENDENT
            report.input_dependent_sites += 1
        elif route.kind == ROUTE_EXPLORE:
            explore_routes.append(route)
        else:
            report.residual_unknown += 1

    if explore_routes:
        _explore(analysis, footprint, explore_routes, budget, report)

    analysis.predictions = {
        id(site.ref): site.classification for site in analysis.sites
    }
    return report


def _explore(analysis, footprint, routes, budget, report):
    if analysis.config.policy != "lru":
        report.refusal_reasons.append("non-LRU replacement")
        for route in routes:
            report.refused_sites += 1
            route.site.classification = _fallback(route, report)
        return
    model = _ModuleModel(analysis, footprint)
    tracker = _Budget(budget)
    by_set = {}
    for route in routes:
        by_set.setdefault(route.word % analysis.config.num_sets,
                          []).append(route)
    undecided = list(routes)
    try:
        for set_index in sorted(by_set):
            group = by_set[set_index]
            focus = {
                id(route.site.instruction): route.word for route in group
            }
            try:
                exploration = _SetExploration(
                    model, set_index, focus, tracker
                )
                outcomes = exploration.run()
            except _Refused as refusal:
                if refusal.reason not in report.refusal_reasons:
                    report.refusal_reasons.append(refusal.reason)
                for route in group:
                    report.refused_sites += 1
                    route.site.classification = _fallback(route, report)
                    undecided.remove(route)
                continue
            for route in group:
                report.explored_sites += 1
                seen = outcomes[id(route.site.instruction)]
                if seen == {True}:
                    route.site.classification = Classification.EXACT_HIT
                    report.exact_hit_sites += 1
                elif seen == {False}:
                    route.site.classification = Classification.EXACT_MISS
                    report.exact_miss_sites += 1
                elif seen:
                    # Both outcomes over the collecting semantics.  A
                    # certified set still yields the per-event-exact
                    # persistence verdict; otherwise the outcome turns
                    # on which paths the input drives.
                    if route.certified:
                        route.site.classification = (
                            Classification.EXACT_PERSISTENT
                        )
                        report.persistent_sites += 1
                    else:
                        route.site.classification = (
                            Classification.INPUT_DEPENDENT
                        )
                        report.input_dependent_sites += 1
                else:
                    # Never reached on any terminating path: dead code
                    # as far as the audit is concerned.
                    route.site.classification = Classification.UNKNOWN
                    report.residual_unknown += 1
                undecided.remove(route)
    except ResourceExhausted:
        report.exhausted = True
        for route in undecided:
            route.site.classification = _fallback(route, report)
    report.steps_used = tracker.used
