"""Compile-time correctness tooling for the unified model.

Five layers (see ``docs/STATIC_ANALYSIS.md``):

1. :mod:`repro.staticcheck.mustmay` — Ferdinand-style must/may
   abstract cache analysis over the post-allocation CFG, extended with
   the paper's bypass/kill semantics, classifying every static memory
   reference as *always-hit*, *always-miss*, or *unknown*.
2. :mod:`repro.staticcheck.uncertainty` — the definitely-unknown
   pre-pass: the install footprint, per-set demand certificates, and
   the routing that separates *input-dependent* residuals (no
   address-insensitive analysis can do better) from true exact-pass
   candidates.
3. :mod:`repro.staticcheck.exact` — the bounded exact refinement:
   per-set explicit-state exploration of the focused references,
   upgrading residual unknowns to *exact-hit* / *exact-miss* /
   *exact-persistent*.
4. :mod:`repro.staticcheck.linter` — the annotation soundness linter:
   verifies the compiler's own bypass/kill output against the alias
   and memory-liveness analyses.
5. :mod:`repro.staticcheck.crossval` — dynamic cross-validation: runs
   the VM against the real cache model and audits every definite
   verdict per event (hit/miss constants directly, persistent
   verdicts against the replayed presence history).

All failures raise :class:`StaticCheckError` (stage ``staticcheck``)
so the fuzz driver and the evaluation harness can tell analysis
unsoundness apart from pipeline bugs.
"""

from repro.errors import ReproError


class StaticCheckError(ReproError):
    """A static-analysis layer failed: lint violation or prediction
    contradicted by the simulator.  ``kind`` buckets the failure for
    the fuzz driver's crash-corpus metadata."""

    stage = "staticcheck"

    def __init__(self, kind, message):
        self.kind = kind
        super().__init__("[{}] {}".format(kind, message))


from repro.staticcheck.mustmay import (  # noqa: E402
    DEFINITE_VERDICTS,
    TIER_OF,
    TIERS,
    Classification,
    ModuleCacheAnalysis,
    analyze_program,
)
from repro.staticcheck.linter import LintViolation, lint_module, lint_program  # noqa: E402
from repro.staticcheck.crossval import cross_validate  # noqa: E402
from repro.staticcheck.uncertainty import Footprint, compute_footprint  # noqa: E402
from repro.staticcheck.exact import (  # noqa: E402
    DEFAULT_EXACT_BUDGET,
    RefinementReport,
    refine_analysis,
)

__all__ = [
    "Classification",
    "DEFAULT_EXACT_BUDGET",
    "DEFINITE_VERDICTS",
    "Footprint",
    "LintViolation",
    "ModuleCacheAnalysis",
    "RefinementReport",
    "StaticCheckError",
    "TIER_OF",
    "TIERS",
    "analyze_program",
    "compute_footprint",
    "cross_validate",
    "lint_module",
    "lint_program",
    "refine_analysis",
]
