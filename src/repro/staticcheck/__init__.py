"""Compile-time correctness tooling for the unified model.

Three layers (see ``docs/STATIC_ANALYSIS.md``):

1. :mod:`repro.staticcheck.mustmay` — Ferdinand-style must/may
   abstract cache analysis over the post-allocation CFG, extended with
   the paper's bypass/kill semantics, classifying every static memory
   reference as *always-hit*, *always-miss*, or *unknown*.
2. :mod:`repro.staticcheck.linter` — the annotation soundness linter:
   verifies the compiler's own bypass/kill output against the alias
   and memory-liveness analyses.
3. :mod:`repro.staticcheck.crossval` — dynamic cross-validation: runs
   the VM against the real cache model and asserts every always-hit
   reference actually hits and every always-miss reference misses.

All failures raise :class:`StaticCheckError` (stage ``staticcheck``)
so the fuzz driver and the evaluation harness can tell analysis
unsoundness apart from pipeline bugs.
"""

from repro.errors import ReproError


class StaticCheckError(ReproError):
    """A static-analysis layer failed: lint violation or prediction
    contradicted by the simulator.  ``kind`` buckets the failure for
    the fuzz driver's crash-corpus metadata."""

    stage = "staticcheck"

    def __init__(self, kind, message):
        self.kind = kind
        super().__init__("[{}] {}".format(kind, message))


from repro.staticcheck.mustmay import (  # noqa: E402
    Classification,
    ModuleCacheAnalysis,
    analyze_program,
)
from repro.staticcheck.linter import LintViolation, lint_module, lint_program  # noqa: E402
from repro.staticcheck.crossval import cross_validate  # noqa: E402

__all__ = [
    "Classification",
    "LintViolation",
    "ModuleCacheAnalysis",
    "StaticCheckError",
    "analyze_program",
    "cross_validate",
    "lint_module",
    "lint_program",
]
