"""The abstract cache domain: joined must/may states with unified
bypass/kill transfer functions.

One :class:`CacheState` abstracts the set of concrete cache contents
reachable at a program point:

* **must** — ``{word_location: age_bound}``.  A location in the map is
  guaranteed present in every concrete cache, with LRU age at most the
  bound (0 = most recent; bounds run up to associativity − 1).  This is
  Ferdinand's must analysis, so membership proves *always-hit*.  Only
  single-word locations appear — an array summary cannot be "the"
  resident block.  Must information is only sound for true-LRU
  replacement; the analysis disables it for FIFO/Random.
* **may** — a set of locations that over-approximates every block
  possibly present, plus a ``may_top`` escape hatch.  Absence proves
  *always-miss*.  Unlike the classic may analysis we never age
  anything out: a block leaves the may set only on a *deterministic*
  invalidation (a strongly resolved bypass or kill reference — the
  cache semantics guarantee the block is gone afterwards, whatever
  the replacement policy).  Keeping evicted blocks is a sound
  over-approximation, and it makes the may half policy-independent.

Bottom (an unreached point) is represented as ``None`` throughout, as
:mod:`repro.analysis.dataflow` expects for general lattice problems.

The transfer functions mirror ``repro/cache/cache.py`` exactly (for
``line_words == 1``, write-allocate, ``kill_mode="invalidate"``):

========================  =============================================
reference                 concrete effect              abstract effect
========================  =============================================
through, no kill          install/refresh, age 0;      must: target→0,
                          LRU-age conflicting blocks   Ferdinand aging;
                                                       may: add target
through, kill             line invalidated (hit) or    must/may: remove
                          served uninstalled (miss);   target; others
                          nobody else ages             unchanged
bypass (any)              block absent afterwards      must/may: remove
                          (taken or invalidated);      target; others
                          nobody else ages             unchanged
call                      callee runs arbitrary code   must: emptied;
                                                       may: add callee's
                                                       install summary
========================  =============================================

Weakly resolved references (several candidate locations) apply the
*join over candidates*: conservative aging for must, weak update for
may, and invalidations remove candidates from must but cannot remove
anything from may.
"""

from repro.staticcheck.locations import (
    AMBIG,
    STACK,
    is_ambiguous_reachable,
    is_word,
    loc_of_array,
    loc_of_symbol,
    may_conflict,
)


class CacheState:
    """One abstract cache state (see module docstring)."""

    __slots__ = ("must", "may", "may_top")

    def __init__(self, must, may, may_top=False):
        self.must = must  # {loc: age_bound}
        self.may = may  # frozenset[loc]
        self.may_top = may_top

    @staticmethod
    def cold():
        """Empty cache: nothing guaranteed, nothing possible."""
        return CacheState({}, frozenset(), False)

    def __eq__(self, other):
        return (
            isinstance(other, CacheState)
            and self.must == other.must
            and self.may == other.may
            and self.may_top == other.may_top
        )

    def __ne__(self, other):
        return not self.__eq__(other)

    def __repr__(self):
        return "CacheState(must={}, may={}{})".format(
            self.must, sorted(self.may), ", TOP" if self.may_top else ""
        )


def join(values):
    """Join abstract states; ``None`` inputs are bottom and skipped.

    Must: keep locations present in *every* input, at the *worst*
    (largest) age bound.  May: union.
    """
    states = [value for value in values if value is not None]
    if not states:
        return None
    must = dict(states[0].must)
    for state in states[1:]:
        merged = {}
        for loc, age in must.items():
            other = state.must.get(loc)
            if other is not None:
                merged[loc] = max(age, other)
        must = merged
    may = frozenset().union(*[state.may for state in states])
    may_top = any(state.may_top for state in states)
    return CacheState(must, may, may_top)


def _purge_must(must, candidates):
    """Drop must entries a (kill/bypass) access to ``candidates`` may
    have invalidated.  An ambiguous target may invalidate any
    pointer-reachable word."""
    if AMBIG in candidates:
        return {
            loc: age
            for loc, age in must.items()
            if loc not in candidates and not is_ambiguous_reachable(loc)
        }
    return {loc: age for loc, age in must.items() if loc not in candidates}


def _age_must(state, candidates, strong, config):
    """Ferdinand aging for one install-capable access.  ``h`` is the
    accessed block's previous age bound (associativity when it may be
    absent): blocks that may conflict and are younger than h age by
    one; bounds reaching associativity fall out."""
    assoc = config.associativity
    num_sets = config.num_sets
    if strong is not None:
        h = state.must.get(strong, assoc)
    else:
        h = assoc
    must = {}
    for loc, age in state.must.items():
        if strong is not None and loc == strong:
            continue
        if age < h and any(
            may_conflict(loc, c, num_sets) for c in candidates
        ):
            age += 1
        if age < assoc:
            must[loc] = age
    return must


def access_through(state, candidates, strong, is_write, kill, config,
                   must_enabled):
    """Transfer for a through-cache Load/Store.

    ``candidates`` are the possible target locations; ``strong`` is
    the single stable word location if the reference has one.
    """
    if kill:
        # Invalidate semantics: the referenced block is absent after
        # the access.  A kill-*load* moves nobody else (a miss is
        # served via the bypass path without installing; a hit is
        # invalidated in place).  A kill-*store* that misses still
        # allocates before invalidating, so it can evict a victim —
        # age the must half as an install first.
        if is_write and must_enabled:
            must = _age_must(state, candidates, strong, config)
        else:
            must = dict(state.must)
        must = _purge_must(must, candidates)
        if strong is not None:
            may = state.may - {strong}
        else:
            may = state.may  # weak invalidation removes nothing
        return CacheState(must, may, state.may_top)

    must = {}
    if must_enabled:
        must = _age_must(state, candidates, strong, config)
        if strong is not None:
            must[strong] = 0

    # May half: the accessed block is now present; nothing leaves.
    may = state.may | frozenset(candidates)
    return CacheState(must, may, state.may_top)


def access_bypass(state, candidates, strong):
    """Transfer for a bypassed (``UmAm_*``) Load/Store.

    The bypass path never installs and always leaves the referenced
    block absent (a write invalidates any stale copy; a read takes
    the cached copy out).  Nobody else moves.
    """
    must = _purge_must(state.must, candidates)
    if strong is not None:
        may = state.may - {strong}
    else:
        may = state.may
    return CacheState(must, may, state.may_top)


def apply_call(state, summary):
    """Transfer for a Call: havoc must, fold in the callee's installs."""
    may = state.may | summary.installs
    may_top = state.may_top or summary.top
    if summary.ambig:
        may = may | {AMBIG}
    if summary.stack:
        may = may | {STACK}
    return CacheState({}, may, may_top)


def translate_entry(state, callee):
    """A caller-side state at a callsite, seen from the callee.

    * must: only global words survive (frame identities shift).
    * may: globals survive; the caller's live frame blocks are only
      reachable ambiguously (if at all) → fold into ``AMBIG``; dead
      deeper frames (``STACK``) overlap the callee's brand-new frame,
      so they expand into the callee's own frame locations (and stay
      ``STACK`` for the frames deeper still).
    """
    must = {loc: age for loc, age in state.must.items() if loc[0] == "g"}
    may = set()
    for loc in state.may:
        tag = loc[0]
        if tag in ("g", "ga"):
            may.add(loc)
        elif tag in ("f", "fa"):
            if loc[-1]:  # address-taken / escaping: pointer-reachable
                may.add(AMBIG)
            # else: invisible to the callee — drop.
        elif loc == AMBIG:
            may.add(AMBIG)
        elif loc == STACK:
            may.add(STACK)
            for symbol, _offset in callee.frame.items():
                if symbol.is_array():
                    may.add(loc_of_array(symbol, callee))
                else:
                    may.add(loc_of_symbol(symbol, callee))
    return CacheState(must, frozenset(may), state.may_top)


def may_possible(state, loc):
    """May ``loc`` be present in some concrete cache at this state?"""
    if state.may_top:
        return True
    if loc in state.may:
        return True
    if loc == AMBIG:
        # An ambiguous reference may touch any pointer-reachable word.
        return any(is_ambiguous_reachable(entry) for entry in state.may)
    if AMBIG in state.may and is_ambiguous_reachable(loc):
        return True
    # STACK never overlaps the current frame or the globals (dead
    # frames sit strictly below the live frame pointer), so it only
    # matters for AMBIG above.
    return False


class CallSummary:
    """What a call may leave installed in the cache (transitively).

    ``installs``: global locations the callee chain installs through
    the cache.  ``ambig``: some ambiguous install may have happened.
    ``stack``: some now-dead frame block may remain.  ``top``: the
    chain reached an unknown callee — anything may be present.
    """

    __slots__ = ("installs", "ambig", "stack", "top")

    def __init__(self, installs=frozenset(), ambig=False, stack=False,
                 top=False):
        self.installs = installs
        self.ambig = ambig
        self.stack = stack
        self.top = top

    def merge(self, other):
        return CallSummary(
            self.installs | other.installs,
            self.ambig or other.ambig,
            self.stack or other.stack,
            self.top or other.top,
        )

    def __eq__(self, other):
        return (
            isinstance(other, CallSummary)
            and self.installs == other.installs
            and self.ambig == other.ambig
            and self.stack == other.stack
            and self.top == other.top
        )

    def __ne__(self, other):
        return not self.__eq__(other)
