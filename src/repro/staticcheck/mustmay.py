"""Must/may abstract cache analysis with unified bypass/kill semantics.

The classifier of the staticcheck subsystem: a Ferdinand-style
must/may LRU analysis (Touzeau et al. 2017/2018 made the classic
formulation exact; we keep the classic abstract-interpretation form)
run over the post-allocation CFG, whose transfer functions implement
the *paper's* reference semantics — bypassed references never touch
the cache state, kill-bit references leave their line invalid — so
that every static memory reference is classified as

* ``ALWAYS_HIT``   — the referenced block is present in every
  execution reaching the reference (must analysis),
* ``ALWAYS_MISS``  — the block is absent in every execution (may
  analysis), or
* ``UNKNOWN``      — neither provable.

"Present" is what is predicted, which for one-word lines coincides
with hit/miss on the through-cache path and with the coherence-probe
outcome on the bypass path; the dynamic cross-validation
(:mod:`repro.staticcheck.crossval`) checks exactly this against the
simulator.

The analysis is context-insensitively interprocedural: every function
is analysed once against the join of its translated callsite states
(plus the cold state for the entry function), with call effects
summarised transitively (:class:`~repro.staticcheck.absdomain.CallSummary`).

Geometry: only one-word lines with write-allocate are supported (the
repo's paper-faithful configuration), and kill bits must use the
``invalidate`` mode if honored.  The must half additionally requires
true-LRU replacement and is disabled — no always-hit claims — for
FIFO/Random caches; the may half (always-miss) is policy-independent
because it never relies on replacement order.
"""

from enum import Enum

from repro.analysis.alias import AliasAnalysis
from repro.analysis.dataflow import DataflowProblem, solve_dataflow
from repro.cache.cache import CacheConfig
from repro.ir.instructions import Call, Load, Store
from repro.staticcheck import StaticCheckError
from repro.staticcheck import absdomain as dom
from repro.staticcheck.absdomain import CacheState, CallSummary
from repro.staticcheck.locations import is_word, resolve_target


class Classification(Enum):
    """The verdict lattice, in three tiers plus the residue.

    * **always** tier — proved by the must/may abstract interpretation
      alone: the outcome is the same constant in *every* execution.
    * **exact** tier — proved by the refinement pass
      (:mod:`repro.staticcheck.exact` / ``uncertainty``):
      ``EXACT_HIT``/``EXACT_MISS`` are constants established by
      explicit-state exploration; ``EXACT_PERSISTENT`` marks a
      reference whose blocks live in provably eviction-free sets, so
      each event hits exactly when its address was installed and not
      since removed — per-event predictable and audited, though not a
      constant.
    * **input-dependent** tier — both outcomes are consistent with the
      address-insensitive collecting semantics: no analysis at this
      abstraction can (or should) decide the reference, because the
      outcome turns on run-time values.  Decided-but-indefinite.
    * ``UNKNOWN`` — the residue: nothing above applies (dead code,
      unmodeled frame words, exhausted exploration budget).
    """

    ALWAYS_HIT = "always-hit"
    ALWAYS_MISS = "always-miss"
    EXACT_HIT = "exact-hit"
    EXACT_MISS = "exact-miss"
    EXACT_PERSISTENT = "exact-persistent"
    INPUT_DEPENDENT = "input-dependent"
    UNKNOWN = "unknown"


#: Verdicts carrying a per-event prediction the cross-validator audits.
DEFINITE_VERDICTS = frozenset({
    Classification.ALWAYS_HIT,
    Classification.ALWAYS_MISS,
    Classification.EXACT_HIT,
    Classification.EXACT_MISS,
    Classification.EXACT_PERSISTENT,
})

#: Verdict -> reporting tier (the CLI/JSON breakout buckets).
TIER_OF = {
    Classification.ALWAYS_HIT: "always",
    Classification.ALWAYS_MISS: "always",
    Classification.EXACT_HIT: "exact",
    Classification.EXACT_MISS: "exact",
    Classification.EXACT_PERSISTENT: "exact",
    Classification.INPUT_DEPENDENT: "input-dependent",
    Classification.UNKNOWN: "unknown",
}

#: The tiers, in reporting order.
TIERS = ("always", "exact", "input-dependent", "unknown")


class Site:
    """One static memory reference and its verdict."""

    __slots__ = (
        "function",
        "block",
        "index",
        "instruction",
        "ref",
        "target",
        "is_write",
        "bypass",
        "kill",
        "classification",
    )

    def __init__(self, function, block, index, instruction, target,
                 is_write, bypass, kill, classification):
        self.function = function
        self.block = block
        self.index = index
        self.instruction = instruction
        self.ref = instruction.ref
        self.target = target
        self.is_write = is_write
        self.bypass = bypass
        self.kill = kill
        self.classification = classification

    def where(self):
        return "{}:{}[{}]".format(self.function, self.block, self.index)

    def __repr__(self):
        return "Site({} {} -> {})".format(
            self.where(), self.ref.access_path, self.classification.value
        )


class FunctionCacheAnalysis:
    """Per-function results: the dataflow solution and the site list."""

    __slots__ = ("function", "solution", "sites", "callsite_states")

    def __init__(self, function, solution, sites, callsite_states):
        self.function = function
        self.solution = solution
        self.sites = sites
        self.callsite_states = callsite_states


def check_geometry(config):
    """Reject cache geometries the abstract semantics do not model."""
    if config.line_words != 1:
        raise StaticCheckError(
            "unsupported-geometry",
            "static analysis models one-word lines only "
            "(line_words={})".format(config.line_words),
        )
    if not config.allocate_on_write:
        raise StaticCheckError(
            "unsupported-geometry",
            "static analysis requires write-allocate caches",
        )
    if config.honor_kill and config.kill_mode != "invalidate":
        raise StaticCheckError(
            "unsupported-geometry",
            "static analysis models kill_mode='invalidate' only "
            "(got {!r})".format(config.kill_mode),
        )


class _CacheProblem(DataflowProblem):
    """Adapter handing the solver per-block composition of the
    instruction-level transfer functions.  Bottom is ``None``."""

    direction = "forward"

    def __init__(self, analysis, function, entry_state):
        super().__init__()
        self._analysis = analysis
        self._function = function
        self._entry_state = entry_state

    def boundary(self):
        return self._entry_state

    def initial(self):
        return None

    def meet(self, values):
        return dom.join(values)

    def transfer(self, block, value):
        if value is None:
            return None
        state = value
        step = self._analysis._step
        for instruction in block.instructions:
            state = step(self._function, instruction, state)
        return state


class ModuleCacheAnalysis:
    """The whole-module analysis: run once, then query.

    ``functions`` maps function name to
    :class:`FunctionCacheAnalysis`; ``sites`` flattens every memory
    reference site in deterministic order; ``predictions`` maps
    ``id(ref)`` — each Load/Store owns exactly one :class:`RefInfo`,
    and the VM hands that object to the memory system on every access,
    so its identity keys dynamic events back to static sites — to the
    site's :class:`Classification`.
    """

    def __init__(self, module, alias, cache_config=None, entry="main",
                 exact=False, exact_budget=None):
        if cache_config is None:
            cache_config = CacheConfig()
        check_geometry(cache_config)
        self.module = module
        self.alias = alias
        self.config = cache_config
        self.entry = entry
        self.must_enabled = cache_config.policy == "lru"
        self._targets = {}
        self.functions = {}
        self.entry_states = {}
        self.summaries = self._compute_summaries()
        self._solve()
        self.sites = []
        for name in self.module.functions:
            analysis = self.functions.get(name)
            if analysis is not None:
                self.sites.extend(analysis.sites)
        self.predictions = {
            id(site.ref): site.classification for site in self.sites
        }
        # The exact refinement layer is strictly opt-in: the must/may
        # result above is bit-identical with or without it, and every
        # caller that pins golden output (the Figure 5 static column,
        # the parallel-smoke report diffs) runs without it.
        self.refinement = None
        if exact:
            from repro.staticcheck.exact import refine_analysis

            self.refinement = refine_analysis(self, budget=exact_budget)

    # ------------------------------------------------------------------
    # Reference decoding.

    def _effective(self, ref):
        """(bypass, kill) as the cache will actually treat them."""
        bypass = bool(ref.bypass) and self.config.honor_bypass
        kill = bool(ref.kill) and self.config.honor_kill
        return bypass, kill

    def _target(self, function, instruction):
        key = id(instruction)
        target = self._targets.get(key)
        if target is None:
            target = resolve_target(function, instruction, self.alias)
            self._targets[key] = target
        return target

    # ------------------------------------------------------------------
    # Call summaries.

    def _compute_summaries(self):
        """Transitive through-cache install summaries per function."""
        direct = {}
        calls = {}
        for name, function in self.module.functions.items():
            installs = set()
            ambig = False
            stack = False
            callees = set()
            for block in function.block_list():
                for instruction in block.instructions:
                    cls = instruction.__class__
                    if cls is Call:
                        callees.add(instruction.callee)
                        continue
                    if cls is not Load and cls is not Store:
                        continue
                    bypass, kill = self._effective(instruction.ref)
                    if bypass or kill:
                        # Neither path leaves the block installed: the
                        # bypass path never installs, and invalidate-mode
                        # kills leave the line invalid afterwards.
                        continue
                    target = self._target(function, instruction)
                    for loc in target.candidates():
                        tag = loc[0]
                        if tag in ("g", "ga"):
                            installs.add(loc)
                        elif tag in ("f", "fa"):
                            stack = True
                        else:
                            # An ambiguous install may land anywhere
                            # pointer-reachable — including a frame
                            # that is dead by the time a caller looks.
                            ambig = True
                            stack = True
            direct[name] = CallSummary(frozenset(installs), ambig, stack)
            calls[name] = callees
        summaries = dict(direct)
        changed = True
        while changed:
            changed = False
            for name in self.module.functions:
                merged = direct[name]
                for callee in sorted(calls[name]):
                    child = summaries.get(callee)
                    if child is None:
                        child = CallSummary(top=True)
                    merged = merged.merge(child)
                if merged != summaries[name]:
                    summaries[name] = merged
                    changed = True
        return summaries

    # ------------------------------------------------------------------
    # Instruction-level transfer.

    def _step(self, function, instruction, state):
        cls = instruction.__class__
        if cls is Load or cls is Store:
            target = self._target(function, instruction)
            bypass, kill = self._effective(instruction.ref)
            candidates = target.candidates()
            if bypass:
                return dom.access_bypass(state, candidates, target.strong)
            return dom.access_through(
                state,
                candidates,
                target.strong,
                cls is Store,
                kill,
                self.config,
                self.must_enabled,
            )
        if cls is Call:
            summary = self.summaries.get(instruction.callee)
            if summary is None:
                summary = CallSummary(top=True)
            return dom.apply_call(state, summary)
        return state

    # ------------------------------------------------------------------
    # Interprocedural fixpoint.

    def _solve(self):
        order = list(self.module.functions)
        self.entry_states = {self.entry: CacheState.cold()}
        changed = True
        while changed:
            changed = False
            for name in order:
                entry_state = self.entry_states.get(name)
                if entry_state is None:
                    continue
                analysis = self._analyze_function(
                    self.module.functions[name], entry_state
                )
                self.functions[name] = analysis
                for callee_name, call_state in analysis.callsite_states:
                    callee = self.module.functions.get(callee_name)
                    if callee is None:
                        continue
                    translated = dom.translate_entry(call_state, callee)
                    old = self.entry_states.get(callee_name)
                    joined = dom.join([old, translated])
                    if joined != old:
                        self.entry_states[callee_name] = joined
                        changed = True
        # Functions never reached from the entry have no abstract
        # state at all: record their sites as UNKNOWN so the table is
        # complete (and no claims are made about dead code).
        for name in order:
            if name not in self.functions:
                self.functions[name] = self._unreached_function(
                    self.module.functions[name]
                )

    def _analyze_function(self, function, entry_state):
        problem = _CacheProblem(self, function, entry_state)
        solution = solve_dataflow(function, problem)
        sites = []
        callsites = []
        for block in function.block_list():
            state = solution[block.name][0]
            for index, instruction in enumerate(block.instructions):
                cls = instruction.__class__
                if cls is Load or cls is Store:
                    target = self._target(function, instruction)
                    bypass, kill = self._effective(instruction.ref)
                    verdict = self._classify(state, target)
                    sites.append(
                        Site(
                            function.name,
                            block.name,
                            index,
                            instruction,
                            target,
                            cls is Store,
                            bypass,
                            kill,
                            verdict,
                        )
                    )
                elif cls is Call and state is not None:
                    callsites.append((instruction.callee, state))
                if state is not None:
                    state = self._step(function, instruction, state)
        return FunctionCacheAnalysis(function, solution, sites, callsites)

    def _unreached_function(self, function):
        sites = []
        for block in function.block_list():
            for index, instruction in enumerate(block.instructions):
                cls = instruction.__class__
                if cls is Load or cls is Store:
                    target = self._target(function, instruction)
                    bypass, kill = self._effective(instruction.ref)
                    sites.append(
                        Site(
                            function.name,
                            block.name,
                            index,
                            instruction,
                            target,
                            cls is Store,
                            bypass,
                            kill,
                            Classification.UNKNOWN,
                        )
                    )
        return FunctionCacheAnalysis(function, None, sites, [])

    # ------------------------------------------------------------------
    # Classification.

    def _classify(self, state, target):
        """Verdict for a reference executed in ``state`` (pre-access)."""
        if state is None:
            return Classification.UNKNOWN
        if target.strong is not None:
            loc = target.strong
            if loc in state.must:
                return Classification.ALWAYS_HIT
            if not dom.may_possible(state, loc):
                return Classification.ALWAYS_MISS
            return Classification.UNKNOWN
        candidates = target.candidates()
        if not candidates:
            return Classification.UNKNOWN
        if all(is_word(loc) and loc in state.must for loc in candidates):
            return Classification.ALWAYS_HIT
        if not any(dom.may_possible(state, loc) for loc in candidates):
            return Classification.ALWAYS_MISS
        return Classification.UNKNOWN

    # ------------------------------------------------------------------
    # Reporting.

    def counts(self):
        """{classification_value: number_of_sites}."""
        result = {c.value: 0 for c in Classification}
        for site in self.sites:
            result[site.classification.value] += 1
        return result

    def tier_counts(self):
        """Site counts per reporting tier (always/exact/input-dependent
        /unknown) — the breakout the CI gate message names."""
        result = {tier: 0 for tier in TIERS}
        for site in self.sites:
            result[TIER_OF[site.classification]] += 1
        return result

    @property
    def static_classified_percent(self):
        """% of static sites decided — any verdict but ``unknown``.

        Without the exact layer this is exactly the old definite
        ratio (the input-dependent tier only exists after refinement).
        """
        if not self.sites:
            return 0.0
        classified = sum(
            1
            for site in self.sites
            if site.classification is not Classification.UNKNOWN
        )
        return 100.0 * classified / len(self.sites)

    @property
    def static_definite_percent(self):
        """% of static sites with an auditable per-event prediction
        (the always + exact tiers)."""
        if not self.sites:
            return 0.0
        definite = sum(
            1
            for site in self.sites
            if site.classification in DEFINITE_VERDICTS
        )
        return 100.0 * definite / len(self.sites)

    @property
    def static_bypass_percent(self):
        """% of static sites taking the bypass path — the analysis's
        own view of the paper's 70–80 % static bypass claim, derived
        from the annotations the abstract semantics actually honor."""
        if not self.sites:
            return 0.0
        return 100.0 * sum(1 for s in self.sites if s.bypass) / len(self.sites)


def analyze_module(module, alias=None, cache_config=None, entry="main",
                   exact=False, exact_budget=None):
    """Analyse an annotated module; builds an alias analysis if needed.

    With ``exact=True`` the refinement pass (uncertainty filter +
    explicit-state exploration, bounded by ``exact_budget`` transfer
    steps) runs after the must/may fixpoint and retires residual
    unknowns into the exact and input-dependent tiers.
    """
    if alias is None:
        alias = AliasAnalysis(module)
    return ModuleCacheAnalysis(
        module, alias, cache_config, entry=entry, exact=exact,
        exact_budget=exact_budget,
    )


def analyze_program(program, cache_config=None, entry="main", exact=False,
                    exact_budget=None):
    """Analyse a :class:`~repro.unified.pipeline.CompiledProgram`."""
    return ModuleCacheAnalysis(
        program.module, program.alias, cache_config, entry=entry,
        exact=exact, exact_budget=exact_budget,
    )
