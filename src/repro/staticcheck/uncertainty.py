"""The definitely-unknown pre-pass: demand certificates and residual
routing.

The must/may analysis (:mod:`repro.staticcheck.mustmay`) leaves a
reference ``UNKNOWN`` when neither constant verdict is provable.  This
module is the Touzeau-style *uncertainty filter* in front of the exact
pass (:mod:`repro.staticcheck.exact`): it separates the residual
unknowns that are still worth deciding exactly from the ones whose
outcome genuinely depends on run-time data, so the expensive
exploration only ever visits true candidates.

Two cheap, exact instruments:

* **The install footprint** — every concrete word the program can ever
  install through the cache, gathered from the reachable sites'
  resolved targets.  Bypassed references never install; killed reads
  are served around the cache; killed writes install transiently (they
  can evict a victim before invalidating themselves) and therefore do
  count.
* **Per-set demand certificates** — with one-word lines, a cache set
  whose entire demand (the number of distinct footprint words mapping
  to it) fits in the associativity can *never* evict: at any install
  the resident blocks are a subset of the demand set minus the
  incoming block, so there is always room.  The arithmetic is exact
  for any demand-eviction policy (LRU/FIFO/Random all evict only on a
  conflict miss in a full set).

A certified set turns presence into pure history: a block is resident
exactly when it has been installed since its last bypass/kill removal.
That is the ``exact-persistent`` verdict — per-event predictable (and
audited) without any replacement-order reasoning.

Residual routing (:func:`route_residuals`), per unknown site:

* all candidate words concrete and every touched set certified →
  ``exact-persistent``;
* a single concrete candidate word → candidate for the explicit-state
  exploration (with the persistent certificate as fallback);
* an ambiguous or multi-word region target that is not fully
  certified → ``input-dependent``: the address-insensitive model lets
  the reference pick any region element, and both a cold element
  (miss) and a just-touched element (hit) are consistent with the
  abstraction, so no address-insensitive analysis can decide the
  outcome — it depends on the run-time index values;
* a single frame word (address unknown relative to the set mapping) →
  stays ``UNKNOWN``.
"""

from repro.staticcheck.locations import AMBIG, STACK, describe_loc

#: Routing kinds returned by :func:`route_residuals`.
ROUTE_PERSISTENT = "persistent"
ROUTE_INPUT_DEPENDENT = "input-dependent"
ROUTE_EXPLORE = "explore"
ROUTE_UNKNOWN = "unknown"


def expand_location(loc):
    """The concrete word addresses of a location, or ``None``.

    Only global locations have compile-time addresses; frame words sit
    at an unknown offset from the global segment and the summaries
    (``AMBIG``/``STACK``) have no address at all.
    """
    tag = loc[0]
    if tag == "g":
        return (loc[1],)
    if tag == "ga":
        return tuple(range(loc[1], loc[1] + loc[2]))
    return None


def location_window(loc):
    """How many distinct words the location may cover (2 = "many")."""
    tag = loc[0]
    if tag in ("g", "f"):
        return 1
    if tag == "ga":
        return loc[2]
    if tag == "fa":
        return loc[3]
    return 2  # AMBIG / STACK: unboundedly many.


def site_reachable(analysis, site):
    """Is the site on some CFG path from the entry function?

    Mirrors the must/may solver's notion of bottom: a function without
    an entry state was never called, and a block whose in-state is
    ``None`` has no path from its function's entry.  Sites failing
    this test execute in *no* run, so they contribute nothing to the
    install footprint and their verdicts are never audited.
    """
    function = analysis.functions.get(site.function)
    if function is None or function.solution is None:
        return False
    pair = function.solution.get(site.block)
    return pair is not None and pair[0] is not None


class Footprint:
    """The through-cache install footprint plus its certificates.

    ``concrete`` — every install-capable reachable site resolves to
    concrete global words (the precondition for any certificate or
    exploration: an unknown-address install could land in any set).
    ``addresses`` — ``{word: pointer_reachable}`` over the footprint.
    ``demand`` — ``{set_index: distinct footprint words}``.
    ``certified_sets`` — sets provably eviction-free forever.
    ``all_certified`` — the whole footprint lives in certified sets.
    ``culprits`` — sample of the sites that broke concreteness.
    """

    __slots__ = ("concrete", "addresses", "demand", "certified_sets",
                 "all_certified", "num_sets", "culprits")

    def __init__(self, concrete, addresses, demand, certified_sets,
                 all_certified, num_sets, culprits):
        self.concrete = concrete
        self.addresses = addresses
        self.demand = demand
        self.certified_sets = certified_sets
        self.all_certified = all_certified
        self.num_sets = num_sets
        self.culprits = culprits

    def words_certified(self, words):
        """Are all these concrete words in provably eviction-free sets?"""
        if not self.concrete:
            return False
        return all(
            (word % self.num_sets) in self.certified_sets for word in words
        )

    def describe(self):
        return (
            "{} footprint words, {}/{} touched sets certified "
            "eviction-free".format(
                len(self.addresses),
                len(self.certified_sets),
                len(self.demand),
            )
            if self.concrete
            else "non-concrete footprint ({})".format(
                "; ".join(self.culprits) or "no reachable installs"
            )
        )


def site_installs(site):
    """Can this reference ever leave a block resident (or evict one)?"""
    if site.bypass:
        return False
    if site.kill and not site.is_write:
        return False  # A killed read is served around the cache.
    return True


def compute_footprint(analysis):
    """Gather the install footprint and certify the demand-safe sets."""
    config = analysis.config
    num_sets = config.num_sets
    addresses = {}
    concrete = True
    culprits = []
    for site in analysis.sites:
        if not site_installs(site) or not site_reachable(analysis, site):
            continue
        for loc in site.target.candidates():
            words = expand_location(loc)
            if words is None:
                concrete = False
                if len(culprits) < 5:
                    culprits.append(
                        "{} -> {}".format(site.where(), describe_loc(loc))
                    )
                continue
            reachable = bool(loc[-1]) if loc not in (AMBIG, STACK) else True
            for word in words:
                addresses[word] = addresses.get(word, False) or reachable
    demand = {}
    for word in addresses:
        index = word % num_sets
        demand[index] = demand.get(index, 0) + 1
    if concrete:
        certified = frozenset(
            index
            for index, count in demand.items()
            if count <= config.associativity
        )
    else:
        certified = frozenset()
    all_certified = concrete and len(certified) == len(demand)
    return Footprint(
        concrete, addresses, demand, certified, all_certified, num_sets,
        culprits,
    )


class Route:
    """One residual site's routing decision.

    ``kind`` is one of the ``ROUTE_*`` constants; ``word`` is the
    single concrete address for exploration candidates;
    ``certified`` says the persistent fallback is available should the
    exploration refuse or run out of budget.
    """

    __slots__ = ("site", "kind", "word", "certified")

    def __init__(self, site, kind, word=None, certified=False):
        self.site = site
        self.kind = kind
        self.word = word
        self.certified = certified


def route_residuals(analysis, footprint, unknown):
    """Route every residual unknown site (see module docstring)."""
    routes = []
    for site in unknown:
        if not site_reachable(analysis, site):
            routes.append(Route(site, ROUTE_UNKNOWN))
            continue
        candidates = site.target.candidates()
        expansions = [expand_location(loc) for loc in candidates]
        if all(words is not None for words in expansions):
            words = sorted({w for words in expansions for w in words})
            if len(words) == 1:
                routes.append(Route(
                    site, ROUTE_EXPLORE, word=words[0],
                    certified=footprint.words_certified(words),
                ))
            elif footprint.words_certified(words):
                routes.append(Route(site, ROUTE_PERSISTENT))
            else:
                routes.append(Route(site, ROUTE_INPUT_DEPENDENT))
            continue
        # Some candidate has no compile-time address.  A region of two
        # or more possible words is undecidable address-insensitively
        # (input-dependent); a lone frame word is merely unmodeled.
        window = sum(location_window(loc) for loc in candidates)
        if window >= 2:
            routes.append(Route(site, ROUTE_INPUT_DEPENDENT))
        else:
            routes.append(Route(site, ROUTE_UNKNOWN))
    return routes
