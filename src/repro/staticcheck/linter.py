"""The annotation soundness linter.

The bypass/kill annotations are the unified model's entire hardware
contract: a bypassed reference asserts "no other name reaches this
word", a kill bit asserts "this value is dead after this read".  If
the annotation pass emits either assertion wrongly, the simulator
silently computes wrong performance numbers (or, with a kill, wrong
*values* — a dropped dirty line).  This linter re-derives both
assertions from the repo's first-principles analyses and reports every
divergence:

``bypass-ambiguous``
    A bypassed reference that :mod:`repro.analysis.alias` does not
    classify as unambiguous — some other name may reach the word, so
    routing it around the cache breaks coherence.
``kill-on-store`` / ``kill-indirect``
    Kill bits belong only on direct scalar loads: a store creates a
    live value, and an indirect reference has no stable location to
    declare dead.
``kill-not-last-use``
    A kill bit on a load that :mod:`repro.analysis.memliveness` does
    not prove to be the last use of its location.
``kill-line-reused``
    An independent CFG walk (not the liveness fixpoint) found a path
    from a killed load to a later use of the same location with no
    intervening redefinition — the killed line would be referenced
    again.  This re-checks what ``kill-not-last-use`` establishes via
    the dataflow solution, so a bug in either the solver or the walk
    shows up as a disagreement between the two diagnostics.
``flavor-missing`` / ``flavor-mismatch``
    Structural coherence: every reference carries a flavor, bypassing
    is exactly the ``UmAm_*`` flavors.

Violations are collected as :class:`LintViolation` values (function,
block, instruction index, access path);
:func:`lint_program` raises a :class:`~repro.staticcheck.StaticCheckError`
on demand so pipelines can fail fast.
"""

from repro.analysis.memliveness import MemoryLiveness
from repro.ir.instructions import Load, RefClass, RefFlavor, Store, SymMem
from repro.staticcheck import StaticCheckError

_BYPASS_FLAVORS = (RefFlavor.UMAM_LOAD, RefFlavor.UMAM_STORE)


class LintViolation:
    """One annotation soundness defect at one static reference."""

    __slots__ = ("kind", "function", "block", "index", "access_path",
                 "message")

    def __init__(self, kind, function, block, index, access_path, message):
        self.kind = kind
        self.function = function
        self.block = block
        self.index = index
        self.access_path = access_path
        self.message = message

    def where(self):
        return "{}:{}[{}]".format(self.function, self.block, self.index)

    def __repr__(self):
        return "LintViolation({} at {} ({}): {})".format(
            self.kind, self.where(), self.access_path, self.message
        )


def lint_module(module, alias):
    """Lint every annotated reference; returns a list of violations."""
    violations = []
    for function in module.functions.values():
        liveness = MemoryLiveness(function, module, alias)
        last_use = {id(load) for load in liveness.last_use_loads()}
        for block in function.block_list():
            for index, instruction in enumerate(block.instructions):
                cls = instruction.__class__
                if cls is not Load and cls is not Store:
                    continue
                violations.extend(
                    _lint_reference(
                        function, liveness, last_use,
                        block, index, instruction,
                    )
                )
    return violations


def _lint_reference(function, liveness, last_use, block, index, instruction):
    ref = instruction.ref
    where = (function.name, block.name, index, ref.access_path)

    def violation(kind, message):
        return LintViolation(kind, *where[:3],
                             access_path=where[3], message=message)

    found = []
    if ref.flavor is None:
        found.append(violation(
            "flavor-missing", "reference was never annotated"))
    elif (ref.flavor in _BYPASS_FLAVORS) != bool(ref.bypass):
        found.append(violation(
            "flavor-mismatch",
            "flavor {} disagrees with bypass={}".format(
                ref.flavor.value, ref.bypass),
        ))

    if ref.bypass and liveness.alias.classify(ref) is not RefClass.UNAMBIGUOUS:
        found.append(violation(
            "bypass-ambiguous",
            "bypassed reference is not unambiguous per the alias "
            "analysis ({})".format(ref.ref_class.value),
        ))

    if ref.kill:
        if instruction.__class__ is Store:
            found.append(violation(
                "kill-on-store", "kill bit on a store creates-then-kills"))
        elif not isinstance(instruction.mem, SymMem):
            found.append(violation(
                "kill-indirect",
                "kill bit on an indirect load has no stable location"))
        else:
            if id(instruction) not in last_use:
                found.append(violation(
                    "kill-not-last-use",
                    "memory liveness does not prove this load is the "
                    "last use of {}".format(
                        instruction.mem.symbol.storage_name()),
                ))
            witness = _find_reuse(
                function, liveness, block, index, instruction.mem.symbol
            )
            if witness is not None:
                found.append(violation(
                    "kill-line-reused",
                    "killed location {} is used again at {} with no "
                    "redefinition in between".format(
                        instruction.mem.symbol.storage_name(), witness),
                ))
    return found


def _find_reuse(function, liveness, block, index, symbol):
    """CFG walk: from just after ``block.instructions[index]``, find a
    use of ``symbol`` reachable before any redefinition.  Returns a
    human-readable witness position, or ``None``.

    Deliberately not the dataflow solution: a plain depth-first search
    using the same per-instruction use/def summaries, so the linter
    and the liveness solver check each other.
    """
    stack = [(block, index + 1)]
    visited = set()
    while stack:
        current, start = stack.pop()
        key = (current.name, start)
        if key in visited:
            continue
        visited.add(key)
        redefined = False
        for position in range(start, len(current.instructions)):
            uses, defs = liveness.summaries(current.instructions[position])
            if symbol in uses:
                return "{}:{}[{}]".format(
                    function.name, current.name, position)
            if symbol in defs:
                redefined = True
                break
        if redefined:
            continue
        if not current.succs and symbol in liveness.exit_live:
            # Fell off the function with the location still killable
            # by the caller's view: a return is a use of every global
            # and escaped local.
            return "{}:{}[return]".format(function.name, current.name)
        for successor in current.succs:
            stack.append((successor, 0))
    return None


def lint_program(program, raise_on_violation=False):
    """Lint a compiled program; optionally fail fast."""
    violations = lint_module(program.module, program.alias)
    if violations and raise_on_violation:
        first = violations[0]
        raise StaticCheckError(
            "lint",
            "{} annotation violation(s); first: {}".format(
                len(violations), first
            ),
        )
    return violations
