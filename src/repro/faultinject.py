"""Deterministic, seeded fault injection for the evaluation engine.

Chaos testing only earns trust when a failing run can be replayed: a
*fault plan* is a seeded description of which failure classes may fire
and how often, and every individual decision is a pure function of
``(seed, kind, site key, opportunity index)`` — no wall clock, no
global RNG.  The same plan against the same workload therefore injects
the same faults, which is what lets the tier-1 suite assert that the
hardened layers converge to bit-identical results *with injection
enabled*.

A plan is activated either through the environment::

    REPRO_FAULT_PLAN="seed=7,bitflip=0.5,worker_crash=0.25" pytest ...

(worker processes inherit it automatically), or per-scope with the
context manager::

    with fault_plan("seed=7,torn_write=1.0"):
        cache.resolve(...)

``fault_plan(None)`` masks any ambient plan, which is how tests that
assert exact internal counters opt out of a suite-wide chaos run.

Fault kinds (rates in ``[0, 1]`` per opportunity):

``torn_write``
    One staged artifact file is silently truncated just before the
    atomic rename — the on-disk image a torn write leaves behind.
``bitflip``
    One bit of an artifact payload flips on the read path (media
    corruption); checksum verification must catch it.
``store_oserror``
    The artifact store hits ``OSError(ENOSPC)`` while persisting.
``load_oserror``
    The artifact load path hits ``OSError(EIO)``; must degrade to a
    recomputed miss.
``store_pause``
    The store sleeps ``stall_seconds`` between staging and publish —
    not a fault by itself, but it widens the store/load/gc race window
    for the concurrency tests.
``worker_crash``
    An evaluation worker raises :class:`WorkerCrash` (the observable
    shadow of a worker dying mid-unit); the supervisor must retry.
``worker_stall``
    A worker sleeps ``stall_seconds`` before doing its work; with a
    watchdog timeout below that, the unit must be reaped and retried.
``pool_break``
    A worker calls ``os._exit`` — the pool itself dies and the
    supervisor must rebuild it or fall back to serial execution.
``poison_unit``
    A unit fails *every* attempt (the decision ignores the attempt
    index), forcing the bounded-retry path into quarantine.

Knobs (not rates): ``seed`` (decision stream), ``limit`` (max fires
per ``(kind, key)``, default 1 so injected faults are transient and
retries converge), ``stall_seconds``, ``timeout`` (per-unit watchdog
the supervisor adopts when the plan carries one), ``retries``
(supervisor attempt budget override), ``interrupt_after`` (raise
``KeyboardInterrupt`` in the *parent* after N journal checkpoints —
the deterministic stand-in for kill -INT during a long sweep).
"""

import contextlib
import errno
import hashlib
import os
import time

from repro.errors import FaultInjected

#: Environment variable holding the ambient fault plan.
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

#: Every recognized rate-style fault kind.
FAULT_KINDS = (
    "torn_write",
    "bitflip",
    "store_oserror",
    "load_oserror",
    "store_pause",
    "worker_crash",
    "worker_stall",
    "pool_break",
    "poison_unit",
)

#: Integer/float knobs that are not per-opportunity rates.
_KNOBS = ("seed", "limit", "stall_seconds", "timeout", "retries",
          "interrupt_after")


class WorkerCrash(FaultInjected):
    """An injected stand-in for a worker process dying mid-unit."""

    stage = "faultinject"


class PlanError(ValueError):
    """A fault-plan string that does not parse."""


def decision_fraction(seed, kind, key, index):
    """A deterministic float in ``[0, 1)`` for one fault opportunity.

    Also the seeded-jitter source for the supervisor's retry backoff —
    one hash, every schedule replayable.
    """
    payload = "{}:{}:{}:{}".format(seed, kind, key, index)
    digest = hashlib.sha256(payload.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


_fraction = decision_fraction


class FaultPlan:
    """A parsed, activatable fault schedule.

    Rates live in ``self.rates`` (kind -> probability per opportunity);
    ``self.fired`` counts what actually fired this process, which the
    chaos tests use to assert a schedule exercised the classes it
    promised to.
    """

    def __init__(self, rates=None, seed=0, limit=1, stall_seconds=0.25,
                 timeout=None, retries=None, interrupt_after=None):
        rates = dict(rates or {})
        for kind in rates:
            if kind not in FAULT_KINDS:
                raise PlanError("unknown fault kind {!r}".format(kind))
        self.rates = rates
        self.seed = int(seed)
        self.limit = int(limit)
        self.stall_seconds = float(stall_seconds)
        self.timeout = None if timeout is None else float(timeout)
        self.retries = None if retries is None else int(retries)
        self.interrupt_after = (
            None if interrupt_after is None else int(interrupt_after)
        )
        #: kind -> number of times the fault actually fired.
        self.fired = {}
        #: in-process opportunity counters for sites without a natural
        #: attempt index: (kind, key) -> opportunities seen so far.
        self._counters = {}

    # -- construction ---------------------------------------------------

    @classmethod
    def parse(cls, text):
        """Parse ``"seed=7,bitflip=0.5,..."`` into a plan."""
        rates = {}
        knobs = {}
        for field in text.split(","):
            field = field.strip()
            if not field:
                continue
            if "=" not in field:
                raise PlanError(
                    "fault-plan field {!r} is not key=value".format(field)
                )
            name, _, value = field.partition("=")
            name = name.strip()
            value = value.strip()
            try:
                if name in _KNOBS:
                    knobs[name] = float(value) if "." in value else int(value)
                elif name in FAULT_KINDS:
                    rates[name] = float(value)
                else:
                    raise PlanError(
                        "unknown fault-plan field {!r}".format(name)
                    )
            except ValueError as error:
                raise PlanError(
                    "bad fault-plan value {!r}: {}".format(field, error)
                )
        return cls(rates=rates, **knobs)

    def format(self):
        """The canonical string form (parses back to an equal plan)."""
        fields = ["seed={}".format(self.seed)]
        if self.limit != 1:
            fields.append("limit={}".format(self.limit))
        if self.stall_seconds != 0.25:
            fields.append("stall_seconds={}".format(self.stall_seconds))
        if self.timeout is not None:
            fields.append("timeout={}".format(self.timeout))
        if self.retries is not None:
            fields.append("retries={}".format(self.retries))
        if self.interrupt_after is not None:
            fields.append("interrupt_after={}".format(self.interrupt_after))
        for kind in FAULT_KINDS:
            if kind in self.rates:
                fields.append("{}={}".format(kind, self.rates[kind]))
        return ",".join(fields)

    # -- decisions ------------------------------------------------------

    def should(self, kind, key, index=None):
        """Decide one opportunity; deterministic and (usually) bounded.

        ``index`` is the opportunity ordinal for ``(kind, key)`` —
        retry attempts pass it explicitly so the decision stream is
        identical no matter which process hosts the retry; sites
        without a natural ordinal let the per-process counter supply
        it.  A fault fires at most ``limit`` times per key, except
        ``poison_unit``, which intentionally fires on every attempt.
        """
        rate = self.rates.get(kind, 0.0)
        if rate <= 0.0:
            return False
        if kind == "poison_unit":
            return _fraction(self.seed, kind, key, 0) < rate
        if index is None:
            index = self._counters.get((kind, key), 0)
            self._counters[(kind, key)] = index + 1
        if index >= self.limit:
            return False
        return _fraction(self.seed, kind, key, index) < rate

    def note_fired(self, kind):
        self.fired[kind] = self.fired.get(kind, 0) + 1


# ----------------------------------------------------------------------
# Activation
# ----------------------------------------------------------------------

#: Sentinel distinguishing "no context manager active" (fall through to
#: the environment) from "a context explicitly masked the plan".
_UNSET = object()
_ACTIVE = _UNSET
_ENV_CACHE = (None, None)  # (env text, parsed plan)


def active_plan():
    """The plan in force, or ``None``.

    A ``fault_plan(...)`` context wins over the environment;
    ``fault_plan(None)`` masks the environment entirely.  The parsed
    environment plan is cached per text so the disabled-path cost is a
    couple of dict lookups.
    """
    if _ACTIVE is not _UNSET:
        return _ACTIVE
    text = os.environ.get(FAULT_PLAN_ENV)
    if not text:
        return None
    global _ENV_CACHE
    cached_text, cached_plan = _ENV_CACHE
    if text != cached_text:
        _ENV_CACHE = (text, FaultPlan.parse(text))
    return _ENV_CACHE[1]


@contextlib.contextmanager
def fault_plan(plan):
    """Activate ``plan`` (a :class:`FaultPlan`, a plan string, or
    ``None`` to mask any ambient plan) for the dynamic extent.

    The plan is also exported through ``REPRO_FAULT_PLAN`` so worker
    processes spawned inside the block inherit it.
    """
    global _ACTIVE
    if isinstance(plan, str):
        plan = FaultPlan.parse(plan)
    saved_active = _ACTIVE
    saved_env = os.environ.get(FAULT_PLAN_ENV)
    _ACTIVE = plan
    if plan is None:
        os.environ.pop(FAULT_PLAN_ENV, None)
    else:
        os.environ[FAULT_PLAN_ENV] = plan.format()
    try:
        yield plan
    finally:
        _ACTIVE = saved_active
        if saved_env is None:
            os.environ.pop(FAULT_PLAN_ENV, None)
        else:
            os.environ[FAULT_PLAN_ENV] = saved_env


# ----------------------------------------------------------------------
# Injection sites (all are near-free no-ops when no plan is active)
# ----------------------------------------------------------------------


def should_fire(kind, key, index=None):
    """Decide-and-count one opportunity under the active plan."""
    plan = active_plan()
    if plan is None or not plan.should(kind, key, index):
        return False
    plan.note_fired(kind)
    return True


def raise_oserror(kind, key, index=None):
    """``OSError`` sites: ENOSPC on store, EIO on load."""
    if should_fire(kind, key, index):
        code = errno.ENOSPC if kind == "store_oserror" else errno.EIO
        raise OSError(
            code,
            "injected {} ({})".format(os.strerror(code), kind),
            str(key),
        )


def corrupt_bytes(kind, key, data, index=None):
    """Return ``data`` with one deterministic bit flipped, or as-is."""
    if not data or not should_fire(kind, key, index):
        return data
    plan = active_plan()
    digest = hashlib.sha256(
        "{}:{}:{}".format(plan.seed, kind, key).encode("utf-8")
    ).digest()
    position = int.from_bytes(digest[:8], "big") % len(data)
    bit = digest[8] % 8
    corrupted = bytearray(data)
    corrupted[position] ^= 1 << bit
    return bytes(corrupted)


def truncate_bytes(kind, key, data, index=None):
    """Return a strict prefix of ``data`` (a torn write), or as-is."""
    if len(data) < 2 or not should_fire(kind, key, index):
        return data
    plan = active_plan()
    digest = hashlib.sha256(
        "{}:{}:{}".format(plan.seed, kind, key).encode("utf-8")
    ).digest()
    keep = int.from_bytes(digest[:8], "big") % (len(data) - 1)
    return data[:keep]


def stall_point(kind, key, index=None):
    """Sleep ``stall_seconds`` when the stall/pause fault fires."""
    if should_fire(kind, key, index):
        time.sleep(active_plan().stall_seconds)


def crash_point(key, attempt=0, allow_exit=True):
    """Worker-side crash/exit/poison sites, in escalating order.

    ``allow_exit=False`` (the in-process/serial path) skips
    ``pool_break`` — there is no pool to break, and ``os._exit`` would
    take the parent down with it.
    """
    plan = active_plan()
    if plan is None:
        return
    if allow_exit and plan.should("pool_break", key, attempt):
        plan.note_fired("pool_break")
        os._exit(3)
    if plan.should("worker_crash", key, attempt):
        plan.note_fired("worker_crash")
        raise WorkerCrash(
            "injected worker crash (unit {}, attempt {})".format(key, attempt)
        )
    if plan.should("poison_unit", key, attempt):
        plan.note_fired("poison_unit")
        raise FaultInjected(
            "injected poisoned unit {} (fails every attempt)".format(key)
        )
    if plan.should("worker_stall", key, attempt):
        plan.note_fired("worker_stall")
        time.sleep(plan.stall_seconds)


def interrupt_point(checkpoints):
    """Parent-side kill simulation: fire after N journal checkpoints."""
    plan = active_plan()
    if plan is None or plan.interrupt_after is None:
        return
    if checkpoints >= plan.interrupt_after:
        plan.interrupt_after = None  # one shot
        raise KeyboardInterrupt(
            "injected interrupt after {} checkpoints".format(checkpoints)
        )
