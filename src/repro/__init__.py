"""repro — Unified Management of Registers and Cache Using Liveness
and Cache Bypass (Chi & Dietz, PLDI 1989), reproduced in Python.

The package is a complete vertical slice of the paper's system:

* a MiniC compiler frontend (:mod:`repro.lang`) and three-address IR
  (:mod:`repro.ir`);
* the compiler analyses the model requires (:mod:`repro.analysis`):
  liveness, D-U webs, alias sets, memory-value liveness;
* register allocation with spill-to-cache (:mod:`repro.regalloc`);
* the unified model itself (:mod:`repro.unified`): classification,
  the four load/store flavors, bypass and kill bits;
* a tracing register-machine VM (:mod:`repro.vm`);
* cache simulators with the dead-line modification
  (:mod:`repro.cache`): LRU / FIFO / Random / Belady MIN, plus a
  data-carrying twin that proves the protocol functionally transparent;
* the six Stanford benchmarks from the paper (:mod:`repro.programs`)
  and the evaluation harness (:mod:`repro.evalharness`).

Quickstart::

    from repro import compile_source, CompilationOptions
    from repro.evalharness import run_compiled

    program = compile_source(open("prog.minic").read())
    result = run_compiled("prog", program)
    print(result.cache_traffic_reduction)
"""

from repro.unified.pipeline import (
    CompilationOptions,
    CompiledProgram,
    Scheme,
    compile_source,
)
from repro.regalloc.promotion import PromotionLevel
from repro.cache.cache import Cache, CacheConfig
from repro.cache.stats import CacheStats
from repro.vm.machine import ExecutionResult, Machine, run_module
from repro.vm.memory import FlatMemory, RecordingMemory, StreamingMemory

__version__ = "1.0.0"

__all__ = [
    "compile_source",
    "CompilationOptions",
    "CompiledProgram",
    "Scheme",
    "PromotionLevel",
    "Cache",
    "CacheConfig",
    "CacheStats",
    "Machine",
    "ExecutionResult",
    "run_module",
    "FlatMemory",
    "RecordingMemory",
    "StreamingMemory",
    "__version__",
]
