"""Run one benchmark through the whole measurement pipeline.

One VM execution produces one annotated reference trace; the unified
and conventional cache numbers both come from replaying that same
trace (the conventional cache simply ignores the bypass/kill bits,
which yields exactly the reference stream conventional code would
produce, since annotations never change the instruction sequence —
``tests/test_pipeline.py`` locks that invariant).
"""

from dataclasses import dataclass, field

from repro.cache.cache import CacheConfig
from repro.cache.replay import replay_trace
from repro.lang.errors import VMError
from repro.programs import get_benchmark
from repro.unified.pipeline import CompilationOptions, compile_source
from repro.vm.memory import RecordingMemory

#: The default simulated data cache: 256 words on chip (the paper's
#: "typical cache implemented on the processor chip contains 128 to 256
#: words"), line size one (Section 1's stated assumption), 4-way LRU.
DEFAULT_CACHE = CacheConfig(size_words=256, line_words=1, associativity=4,
                            policy="lru")


@dataclass
class ExperimentResult:
    """Everything measured for one benchmark under one configuration."""

    name: str
    options: CompilationOptions
    cache_config: CacheConfig
    static: object
    dynamic: dict
    unified_stats: object
    conventional_stats: object
    output: tuple
    steps: int
    trace: object = field(default=None, repr=False)
    #: The static bypass ratio derived independently by the must/may
    #: analysis (:mod:`repro.staticcheck`), or ``None`` when the cache
    #: geometry is outside what the analysis models.  Cross-checks the
    #: annotation pass's own :attr:`StaticReport.percent_bypassed`.
    static_bypass_checked: object = None

    @property
    def static_percent_unambiguous(self):
        return self.static.percent_unambiguous

    @property
    def static_bypass_agrees(self):
        """Do the annotation pass and the static analysis agree on the
        bypass ratio?  ``None`` when the analysis could not run."""
        if self.static_bypass_checked is None:
            return None
        return abs(
            self.static_bypass_checked - self.static.percent_bypassed
        ) < 0.05

    @property
    def dynamic_percent_unambiguous(self):
        if self.dynamic["total"] == 0:
            return 0.0
        return 100.0 * self.dynamic["unambiguous"] / self.dynamic["total"]

    @property
    def dynamic_percent_bypassed(self):
        if self.dynamic["total"] == 0:
            return 0.0
        return 100.0 * self.dynamic["bypassed"] / self.dynamic["total"]

    @property
    def cache_traffic_reduction(self):
        return self.unified_stats.cache_traffic_reduction_vs(
            self.conventional_stats
        )

    @property
    def bus_traffic_reduction(self):
        return self.unified_stats.bus_traffic_reduction_vs(
            self.conventional_stats
        )


def run_compiled(
    name,
    program,
    expected_output=None,
    cache_config=DEFAULT_CACHE,
    keep_trace=False,
):
    """Trace an already-compiled program and simulate both schemes."""
    memory = RecordingMemory()
    result = program.run(memory=memory)
    if expected_output is not None and tuple(result.output) != tuple(
        expected_output
    ):
        raise VMError(
            "benchmark {} produced {} instead of {}".format(
                name, result.output, list(expected_output)
            )
        )
    trace = memory.buffer

    unified_stats = replay_trace(trace, cache_config)
    baseline_config = CacheConfig(
        size_words=cache_config.size_words,
        line_words=cache_config.line_words,
        associativity=cache_config.associativity,
        policy=cache_config.policy,
        honor_bypass=False,
        honor_kill=False,
        kill_mode=cache_config.kill_mode,
        seed=cache_config.seed,
    )
    conventional_stats = replay_trace(trace, baseline_config)

    # Independent derivation of the paper's static bypass claim: the
    # must/may analysis re-counts the bypassed sites from the module
    # it analyses, so a disagreement with the annotation pass's own
    # StaticReport means one of the two mis-reads the annotations.
    from repro.staticcheck import StaticCheckError
    from repro.staticcheck.mustmay import analyze_module

    try:
        analysis = analyze_module(program.module, program.alias, cache_config)
        static_bypass_checked = analysis.static_bypass_percent
    except StaticCheckError:
        static_bypass_checked = None  # geometry outside the model

    return ExperimentResult(
        name=name,
        options=program.options,
        cache_config=cache_config,
        static=program.static,
        dynamic=trace.summary(),
        unified_stats=unified_stats,
        conventional_stats=conventional_stats,
        output=tuple(result.output),
        steps=result.steps,
        trace=trace if keep_trace else None,
        static_bypass_checked=static_bypass_checked,
    )


def run_benchmark(
    name,
    paper_scale=False,
    options=None,
    cache_config=DEFAULT_CACHE,
    keep_trace=False,
):
    """Compile and measure one named benchmark."""
    bench = get_benchmark(name, paper_scale)
    program = compile_source(bench.source, options or CompilationOptions())
    return run_compiled(
        bench.name,
        program,
        expected_output=bench.expected_output,
        cache_config=cache_config,
        keep_trace=keep_trace,
    )
