"""Run one benchmark through the whole measurement pipeline.

One VM execution produces one annotated reference trace; the unified
and conventional cache numbers both come from replaying that same
trace (the conventional cache simply ignores the bypass/kill bits,
which yields exactly the reference stream conventional code would
produce, since annotations never change the instruction sequence —
``tests/test_pipeline.py`` locks that invariant).

The evaluation half is factored out of the execution half
(:func:`evaluate_trace`, :func:`evaluate_trace_multi`) so the
compile-once/trace-once engine (:mod:`repro.evalharness.parallel`) can
resolve a stored artifact and score any number of cache geometries
against it without touching the compiler or the VM again.
"""

from dataclasses import dataclass, field

from repro.cache.cache import CacheConfig
from repro.cache.replay import MinConfig, replay_trace, replay_trace_multi
from repro.cache.stackdist import replay_trace_sweep
from repro.lang.errors import VMError
from repro.programs import get_benchmark
from repro.unified.pipeline import CompilationOptions, compile_source
from repro.vm.memory import RecordingMemory

#: The default simulated data cache: 256 words on chip (the paper's
#: "typical cache implemented on the processor chip contains 128 to 256
#: words"), line size one (Section 1's stated assumption), 4-way LRU.
DEFAULT_CACHE = CacheConfig(size_words=256, line_words=1, associativity=4,
                            policy="lru")


@dataclass
class ExperimentResult:
    """Everything measured for one benchmark under one configuration."""

    name: str
    options: CompilationOptions
    cache_config: CacheConfig
    static: object
    dynamic: dict
    unified_stats: object
    conventional_stats: object
    output: tuple
    steps: int
    trace: object = field(default=None, repr=False)
    #: The static bypass ratio derived independently by the must/may
    #: analysis (:mod:`repro.staticcheck`), or ``None`` when the cache
    #: geometry is outside what the analysis models.  Cross-checks the
    #: annotation pass's own :attr:`StaticReport.percent_bypassed`.
    static_bypass_checked: object = None

    @property
    def static_percent_unambiguous(self):
        return self.static.percent_unambiguous

    @property
    def static_bypass_agrees(self):
        """Do the annotation pass and the static analysis agree on the
        bypass ratio?  ``None`` when the analysis could not run."""
        if self.static_bypass_checked is None:
            return None
        return abs(
            self.static_bypass_checked - self.static.percent_bypassed
        ) < 0.05

    @property
    def dynamic_percent_unambiguous(self):
        if self.dynamic["total"] == 0:
            return 0.0
        return 100.0 * self.dynamic["unambiguous"] / self.dynamic["total"]

    @property
    def dynamic_percent_bypassed(self):
        if self.dynamic["total"] == 0:
            return 0.0
        return 100.0 * self.dynamic["bypassed"] / self.dynamic["total"]

    @property
    def cache_traffic_reduction(self):
        return self.unified_stats.cache_traffic_reduction_vs(
            self.conventional_stats
        )

    @property
    def bus_traffic_reduction(self):
        return self.unified_stats.bus_traffic_reduction_vs(
            self.conventional_stats
        )


def conventional_config(cache_config):
    """The same geometry with every annotation bit ignored — the
    conventional-machine baseline of all unified-vs-conventional
    comparisons."""
    return CacheConfig(
        size_words=cache_config.size_words,
        line_words=cache_config.line_words,
        associativity=cache_config.associativity,
        policy=cache_config.policy,
        honor_bypass=False,
        honor_kill=False,
        kill_mode=cache_config.kill_mode,
        write_policy=cache_config.write_policy,
        allocate_on_write=cache_config.allocate_on_write,
        seed=cache_config.seed,
    )


def _static_bypass_checked(program, cache_config):
    """Independent derivation of the paper's static bypass claim: the
    must/may analysis re-counts the bypassed sites from the module it
    analyses, so a disagreement with the annotation pass's own
    StaticReport means one of the two mis-reads the annotations."""
    from repro.staticcheck import StaticCheckError
    from repro.staticcheck.mustmay import analyze_module

    try:
        analysis = analyze_module(program.module, program.alias, cache_config)
        return analysis.static_bypass_percent
    except StaticCheckError:
        return None  # geometry outside the model


def evaluate_trace(
    name,
    program,
    trace,
    output,
    steps,
    cache_config=DEFAULT_CACHE,
    keep_trace=False,
):
    """Score one recorded trace under one cache geometry.

    This is the reference evaluation path: it replays through the
    online :class:`~repro.cache.cache.Cache` exactly as the original
    serial harness did, so any source of the ``(program, trace)`` pair
    — a fresh VM run or an artifact-cache hit — produces bit-identical
    :class:`ExperimentResult` values.
    """
    unified_stats = replay_trace(trace, cache_config)
    conventional_stats = replay_trace(trace, conventional_config(cache_config))
    return ExperimentResult(
        name=name,
        options=program.options,
        cache_config=cache_config,
        static=program.static,
        dynamic=trace.summary(),
        unified_stats=unified_stats,
        conventional_stats=conventional_stats,
        output=tuple(output),
        steps=steps,
        trace=trace if keep_trace else None,
        static_bypass_checked=_static_bypass_checked(program, cache_config),
    )


def evaluate_trace_multi(
    name,
    program,
    trace,
    output,
    steps,
    cache_configs,
    keep_trace=False,
    engine=None,
):
    """Score one recorded trace under many cache geometries at once.

    The unified and conventional replays of every geometry run through
    the sweep dispatcher
    (:func:`~repro.cache.stackdist.replay_trace_sweep`): LRU
    geometries are scored by the one-pass stack-distance profiler
    (vectorized when NumPy is importable), everything else by the
    single-pass multi-configuration core
    (:func:`~repro.cache.replay.replay_trace_multi`) — and the dynamic
    summary is computed once and shared; the per-geometry results are
    bit-identical to calling :func:`evaluate_trace` per config (the
    equivalence battery asserts exactly that).  ``engine`` forces a
    sweep engine (``auto``/``stackdist``/``vectorized``/``multi``);
    ``None`` defers to ``REPRO_SWEEP_ENGINE`` or auto-selection.
    """
    specs = []
    for cache_config in cache_configs:
        specs.append(cache_config)
        specs.append(conventional_config(cache_config))
    stats = replay_trace_sweep(trace, specs, engine=engine)
    summary = trace.summary()
    output = tuple(output)
    results = []
    for index, cache_config in enumerate(cache_configs):
        results.append(
            ExperimentResult(
                name=name,
                options=program.options,
                cache_config=cache_config,
                static=program.static,
                dynamic=dict(summary),
                unified_stats=stats[2 * index],
                conventional_stats=stats[2 * index + 1],
                output=output,
                steps=steps,
                trace=trace if keep_trace else None,
                static_bypass_checked=_static_bypass_checked(
                    program, cache_config
                ),
            )
        )
    return results


def run_compiled(
    name,
    program,
    expected_output=None,
    cache_config=DEFAULT_CACHE,
    keep_trace=False,
):
    """Trace an already-compiled program and simulate both schemes."""
    memory = RecordingMemory()
    result = program.run(memory=memory)
    if expected_output is not None and tuple(result.output) != tuple(
        expected_output
    ):
        raise VMError(
            "benchmark {} produced {} instead of {}".format(
                name, result.output, list(expected_output)
            )
        )
    return evaluate_trace(
        name,
        program,
        memory.buffer,
        tuple(result.output),
        result.steps,
        cache_config=cache_config,
        keep_trace=keep_trace,
    )


def run_benchmark(
    name,
    paper_scale=False,
    options=None,
    cache_config=DEFAULT_CACHE,
    keep_trace=False,
    artifact_cache=None,
):
    """Compile and measure one named benchmark.

    With ``artifact_cache`` (an
    :class:`~repro.evalharness.artifacts.ArtifactCache`) the compile
    and VM-execution happen at most once per annotation configuration
    across every run sharing that cache; the returned result is
    bit-identical to the direct path.
    """
    bench = get_benchmark(name, paper_scale)
    if artifact_cache is not None:
        artifact = artifact_cache.resolve(
            bench.name,
            bench.source,
            options or CompilationOptions(),
            expected_output=bench.expected_output,
        )
        return evaluate_trace(
            bench.name,
            artifact.program,
            artifact.trace,
            artifact.output,
            artifact.steps,
            cache_config=cache_config,
            keep_trace=keep_trace,
        )
    program = compile_source(bench.source, options or CompilationOptions())
    return run_compiled(
        bench.name,
        program,
        expected_output=bench.expected_output,
        cache_config=cache_config,
        keep_trace=keep_trace,
    )
