"""One-command reproduction report: every experiment, one screenful.

``repro-experiments`` runs E1 (Figure 5), the classification claims,
the kill-bit/policy/spill/size ablations, the combined I+D cache
experiment, and the access-time model, then prints a compact report
with the paper's expectations alongside the measured values.
"""

import argparse
import os
import sys
import time
from dataclasses import replace

from repro.cache.cache import CacheConfig
from repro.cache.replay import replay_trace
from repro.cache.timing import (
    LatencyModel,
    access_time_speedup,
    value_reference_time,
)
from repro.evalharness.figure5 import (
    average_row,
    figure5_table,
    format_figure5,
)
from repro.errors import failure_record
from repro.evalharness.experiment import DEFAULT_CACHE
from repro.evalharness.sweeps import (
    kill_bit_ablation,
    spill_ablation,
)
from repro.evalharness.tables import format_table
from repro.evalharness.unifiedcache import unified_cache_comparison
from repro.programs import BENCHMARK_NAMES, get_benchmark
from repro.unified.pipeline import CompilationOptions, compile_source
from repro.vm.machine import set_default_max_steps
from repro.vm.memory import RecordingMemory


def _heading(text):
    return "\n{}\n{}".format(text, "=" * len(text))


def figure5_section(paper_scale, failures=None, cache_config=DEFAULT_CACHE,
                    jobs=None, artifact_cache=None, journal=None,
                    engine=None):
    rows = figure5_table(
        paper_scale=paper_scale, cache_config=cache_config, failures=failures,
        jobs=jobs, artifact_cache=artifact_cache, journal=journal,
        engine=engine,
    )
    if not rows:
        return "\n".join(
            [
                _heading("E1-E3  Figure 5 and the Section 5 bands"),
                "[every benchmark failed; see the failure summary]",
            ]
        )
    avg = average_row(rows)
    lines = [_heading("E1-E3  Figure 5 and the Section 5 bands")]
    lines.append(format_figure5(rows))
    lines.append(
        "paper: static 70-80%%, dynamic 45-75%%, reduction ~60%% | "
        "measured averages: static %.1f%%, dynamic %.1f%%, reduction %.1f%%"
        % (
            avg.static_percent_unambiguous,
            avg.dynamic_percent_unambiguous,
            avg.cache_traffic_reduction,
        )
    )
    return "\n".join(lines)


def kill_section(artifact_cache=None):
    rows = kill_bit_ablation("towers", sizes=(32, 64, 256),
                             artifact_cache=artifact_cache)
    lines = [_heading("E5  Dead-line (kill-bit) modification, towers")]
    lines.append(format_table(
        ["cache words", "kill", "write-backs", "bus words"],
        [
            [row["size_words"], row["kill_mode"], row["writebacks"],
             row["bus_words"]]
            for row in rows if row["kill_mode"] in ("invalidate", "off")
        ],
    ))
    return "\n".join(lines)


def spill_section(artifact_cache=None):
    rows = spill_ablation(artifact_cache=artifact_cache)
    lines = [_heading("E6  Spill-to-cache vs spill-bypass "
                      "(pressure kernel, 8 registers)")]
    lines.append(format_table(
        ["spill routing", "refs through cache", "bus words", "spill refs"],
        [
            [
                "to cache" if row["spill_to_cache"] else "bypass",
                row["refs_cached"],
                row["bus_words"],
                row["spill_refs"],
            ]
            for row in rows
        ],
    ))
    return "\n".join(lines)


def hierarchy_table_rows(rows):
    """Render hierarchy ``as_dict`` rows for any level count.

    Returns ``(header, table_rows)``: the innermost level contributes
    its global miss rate, every outer level its local one, so a
    three-level spec reads as three miss columns before the memory
    words.  The header is derived from the first row's ``levels``.
    """
    if not rows:
        return ["benchmark"], []
    levels = rows[0]["levels"]
    header = ["benchmark", "inclusion", "bypass",
              "{} miss".format(levels[0])]
    header += ["{} local miss".format(name) for name in levels[1:]]
    header.append("memory words")
    table_rows = []
    for row in rows:
        cells = [
            row["benchmark"],
            row["inclusion"],
            row["bypass_level"],
            "{:.4f}".format(row[levels[0].lower() + "_miss_rate"]),
        ]
        cells += [
            "{:.4f}".format(row[name.lower() + "_local_miss_rate"])
            for name in row["levels"][1:]
        ]
        cells.append(row["memory_bus_words"])
        table_rows.append(cells)
    return header, table_rows


def hierarchy_section(hierarchy, names, failures=None, artifact_cache=None,
                      jobs=None, journal=None):
    """E16: which level do bypassed references skip?

    Rows pair the ``bypass_level="l1"`` and ``"both"`` scores per
    benchmark and inclusion discipline so the outer-level effect of
    hierarchy-wide bypassing reads straight off the table.  The
    benchmarks run as hierarchy-aware :class:`EvalUnit`\\ s through the
    supervised pool (``jobs`` fans them out; ``journal`` checkpoints
    them alongside the Figure 5 units).
    """
    from repro.evalharness.figure5 import figure5_options
    from repro.evalharness.parallel import EvalUnit, run_units

    lines = [_heading("E16  Cache hierarchy: bypass-level ablation "
                      "({})".format(hierarchy))]
    specs = tuple(
        "{},{},bypass={}".format(hierarchy, inclusion, bypass_level)
        for inclusion in ("non-inclusive", "inclusive")
        for bypass_level in ("l1", "both")
    )
    units = [
        EvalUnit(name=name, options=figure5_options(),
                 cache_configs=(DEFAULT_CACHE,), hierarchy=specs)
        for name in names
    ]
    unit_results = run_units(
        units, jobs=jobs, artifact_cache=artifact_cache,
        failures=failures, section="hierarchy", journal=journal,
    )
    rows = [
        row
        for results in unit_results if results is not None
        for row in results
    ]
    header, table_rows = hierarchy_table_rows(rows)
    lines.append(format_table(header, table_rows))
    return "\n".join(lines)


def multicore_section(pairings, partition="umon", failures=None,
                      artifact_cache=None):
    """E18: kill bits vs. way partitioning at a shared last level.

    Each core grouping replays one deterministic interleave under the
    four cells of the kill × partitioning grid; the table reports the
    shared level's hit ratio (dead-value refs served around the cache
    count against it — the kill cells trade hit *ratio* for freed
    ways) and the memory words actually moved, the paper's own
    currency, which the headline scores.
    """
    from repro.cache.multicore import MULTICORE_CONFIGS
    from repro.evalharness.sweeps import (
        MULTICORE_SHARED,
        multicore_sweep,
    )

    lines = [_heading(
        "E18  Multi-core shared LLC: kill bits vs. way partitioning "
        "(shared {}w x{}, {} quotas)".format(
            MULTICORE_SHARED.size_words, MULTICORE_SHARED.associativity,
            partition,
        )
    )]
    table_rows = []
    kill_wins = []
    best_cells = []
    scored = []
    for names in pairings:
        label = "+".join(names)
        try:
            rows = multicore_sweep(names, partition=partition,
                                   artifact_cache=artifact_cache)
        except Exception as error:  # noqa: BLE001 - recorded, reported
            if failures is None:
                raise
            failures.append(failure_record("multicore", label, error))
            continue
        by_config = {row["config"]: row for row in rows}
        for config in MULTICORE_CONFIGS:
            row = by_config[config]
            table_rows.append([
                label,
                config,
                "/".join(str(q) for q in row["quotas"])
                if row["quotas"] else "-",
                "{:.4f}".format(row["shared_hit_rate"]),
                row["memory_bus_words"],
            ])
        scored.append(label)
        if (by_config["kill"]["memory_bus_words"]
                <= by_config["partitioned"]["memory_bus_words"]):
            kill_wins.append(label)
        best = min(MULTICORE_CONFIGS,
                   key=lambda c: by_config[c]["memory_bus_words"])
        best_cells.append("{}: {}".format(label, best))
    lines.append(format_table(
        ["cores", "config", "quotas", "shared hit", "memory words"],
        table_rows,
    ))
    lines.append(
        "headline: kill bits alone beat or match static partitioning "
        "on memory words for {}/{} groupings{}; best cell per grouping: "
        "{}".format(
            len(kill_wins), len(scored),
            " ({})".format(", ".join(kill_wins)) if kill_wins else "",
            "; ".join(best_cells) if best_cells else "none",
        )
    )
    return "\n".join(lines)


def policy_zoo_section(names=BENCHMARK_NAMES, base=None,
                       failures=None, artifact_cache=None):
    """E17: hardware reuse prediction vs. compiler reuse knowledge.

    Every policy's hit rate appears conventional (annotations ignored)
    and unified (bypass+kill honored); the trailing headline counts,
    per benchmark, whether the best kill+RRIP cell beats kill+LRU
    (the fair, same-stream comparison) and whether it also beats the
    best prediction-alone cell (cross-scheme: the unified denominator
    excludes the bypassed easy refs, so this is a high bar — see
    EXPERIMENTS.md E17).
    """
    from repro.evalharness.sweeps import (
        ZOO_GEOMETRY,
        ZOO_POLICIES,
        ZOO_PREDICTIVE,
        policy_zoo_sweep,
    )

    if base is None:
        base = ZOO_GEOMETRY

    lines = [_heading("E17  Predictive replacement vs. compiler liveness "
                      "(policy zoo)")]
    table_rows = []
    beats_lru = []
    beats_both = []
    for name in names:
        try:
            rows = policy_zoo_sweep(name, base=base,
                                    artifact_cache=artifact_cache)
        except Exception as error:  # noqa: BLE001 - recorded, reported
            if failures is None:
                raise
            failures.append(failure_record("policy-zoo", name, error))
            continue
        by_cell = {(row["policy"], row["scheme"]): row for row in rows}
        for policy in ZOO_POLICIES:
            conv = by_cell[(policy, "conventional")]
            unified = by_cell[(policy, "unified")]
            table_rows.append([
                name,
                policy,
                "{:.4f}".format(conv["hit_rate"]),
                "{:.4f}".format(unified["hit_rate"]),
                conv["bus_words"],
                unified["bus_words"],
            ])
        kill_lru = by_cell[("lru", "unified")]["hit_rate"]
        prediction_alone = max(
            by_cell[(p, "conventional")]["hit_rate"] for p in ZOO_PREDICTIVE
        )
        kill_rrip = max(
            by_cell[(p, "unified")]["hit_rate"] for p in ZOO_PREDICTIVE
        )
        if kill_rrip > kill_lru:
            beats_lru.append(name)
            if kill_rrip > prediction_alone:
                beats_both.append(name)
    lines.append(format_table(
        ["benchmark", "policy", "conv hit", "unified hit",
         "conv bus words", "unified bus words"],
        table_rows,
    ))
    lines.append(
        "headline: kill+RRIP beats kill+LRU on {}/{} benchmarks{}; "
        "beats both kill+LRU and prediction alone on {}/{}{}".format(
            len(beats_lru), len(names),
            " ({})".format(", ".join(beats_lru)) if beats_lru else "",
            len(beats_both), len(names),
            " ({})".format(", ".join(beats_both)) if beats_both else "",
        )
    )
    return "\n".join(lines)


def combined_cache_section(failures=None):
    lines = [_heading("E10  Combined I+D cache: instruction hit rate")]
    table_rows = []
    for name, size in (("queen", 128), ("towers", 128), ("towers", 256)):
        try:
            row = unified_cache_comparison(name, size_words=size)
        except Exception as error:  # noqa: BLE001 - recorded, reported
            if failures is None:
                raise
            failures.append(failure_record("combined-cache", name, error))
            continue
        table_rows.append([
            "{} @ {}w".format(name, size),
            "{:.4f}".format(row["conventional_i_hit_rate"]),
            "{:.4f}".format(row["unified_i_hit_rate"]),
        ])
    lines.append(format_table(
        ["workload", "conventional I-hit", "unified I-hit"], table_rows
    ))
    return "\n".join(lines)


def _access_time_row(name, model, artifact_cache=None):
    bench = get_benchmark(name)
    cycles = {}
    refs = {}
    for label, options, honor in (
        ("conv",
         CompilationOptions(scheme="conventional", promotion="none"),
         False),
        ("pure",
         CompilationOptions(scheme="unified", promotion="aggressive"),
         True),
        ("hybrid",
         CompilationOptions(scheme="unified", promotion="aggressive",
                            bypass_user_refs=False),
         True),
    ):
        if artifact_cache is not None:
            artifact = artifact_cache.resolve(
                bench.name, bench.source, options,
                expected_output=bench.expected_output,
            )
            trace = artifact.trace
        else:
            program = compile_source(bench.source, options)
            memory = RecordingMemory()
            result = program.run(memory=memory)
            assert tuple(result.output) == bench.expected_output
            trace = memory.buffer
        stats = replay_trace(
            trace,
            CacheConfig(honor_bypass=honor, honor_kill=honor),
        )
        refs[label] = len(trace)
        cycles[label] = (stats, trace)
    total = refs["conv"]
    conv = value_reference_time(cycles["conv"][0], 0, model)
    pure = value_reference_time(
        cycles["pure"][0], total - refs["pure"], model
    )
    hybrid = value_reference_time(
        cycles["hybrid"][0], total - refs["hybrid"], model
    )
    return [
        name,
        "{:.2f}x".format(access_time_speedup(conv, pure)),
        "{:.2f}x".format(access_time_speedup(conv, hybrid)),
    ]


def access_time_section(failures=None, artifact_cache=None):
    model = LatencyModel()
    lines = [_heading("E13/E14  Total memory access time "
                      "(speedup vs conventional)")]
    table_rows = []
    for name in BENCHMARK_NAMES:
        try:
            table_rows.append(
                _access_time_row(name, model, artifact_cache=artifact_cache)
            )
        except Exception as error:  # noqa: BLE001 - recorded, reported
            if failures is None:
                raise
            failures.append(failure_record("access-time", name, error))
    lines.append(format_table(
        ["benchmark", "pure unified", "hybrid"], table_rows
    ))
    lines.append('paper Section 4.4: "speedups of total memory access '
                 'time by factors of 2 or more"')
    return "\n".join(lines)


def build_report(paper_scale=False, fast=False, failures=None,
                 cache_config=DEFAULT_CACHE, jobs=None, artifact_cache=None,
                 hierarchy=None, hierarchy_benchmarks=None, journal=None,
                 policy_zoo=False, engine=None, multicore=None,
                 partition="umon"):
    """Assemble the report string.

    With ``failures`` (a list), a section or benchmark that breaks is
    recorded there and the report carries on — one bad workload must
    not cost the other results.  Without it, errors propagate.
    ``jobs`` fans the Figure 5 benchmarks out over worker processes;
    ``artifact_cache`` routes every compile+trace through the on-disk
    store.  ``engine`` pins the trace-replay engine for the Figure 5
    units (the other sections honor ``REPRO_SWEEP_ENGINE``, which the
    CLI exports alongside the flag).  The report text is byte-identical
    either way (only the trailing wall-clock line differs).
    """
    started = time.time()
    section_builders = [
        ("figure5",
         lambda: figure5_section(paper_scale, failures=failures,
                                 cache_config=cache_config, jobs=jobs,
                                 artifact_cache=artifact_cache,
                                 journal=journal, engine=engine)),
        ("kill-bits", lambda: kill_section(artifact_cache=artifact_cache)),
        ("spill", lambda: spill_section(artifact_cache=artifact_cache)),
    ]
    if hierarchy:
        section_builders.append(
            ("hierarchy",
             lambda: hierarchy_section(
                 hierarchy, hierarchy_benchmarks or BENCHMARK_NAMES,
                 failures=failures, artifact_cache=artifact_cache,
                 jobs=jobs, journal=journal)))
    if multicore:
        section_builders.append(
            ("multicore",
             lambda: multicore_section(
                 multicore, partition=partition,
                 failures=failures, artifact_cache=artifact_cache)))
    if policy_zoo:
        section_builders.append(
            ("policy-zoo",
             lambda: policy_zoo_section(
                 failures=failures, artifact_cache=artifact_cache)))
    if not fast:
        section_builders.append(
            ("combined-cache",
             lambda: combined_cache_section(failures=failures)))
        section_builders.append(
            ("access-time",
             lambda: access_time_section(failures=failures,
                                         artifact_cache=artifact_cache)))
    sections = ["Reproduction report: Chi & Dietz, PLDI 1989"]
    for section_name, builder in section_builders:
        try:
            sections.append(builder())
        except Exception as error:  # noqa: BLE001 - recorded, reported
            if failures is None:
                raise
            failures.append(failure_record(section_name, None, error))
            sections.append(
                "{}\n[section failed: {}: {}]".format(
                    _heading("SECTION {}".format(section_name)),
                    type(error).__name__,
                    error,
                )
            )
    sections.append(
        "\n(generated in {:.1f}s; see EXPERIMENTS.md for the full record)"
        .format(time.time() - started)
    )
    return "\n".join(sections)


def format_failures(failures):
    lines = ["{} experiment(s) failed:".format(len(failures))]
    for record in failures:
        where = record["section"]
        if record["item"]:
            where += "/" + str(record["item"])
        lines.append(
            "  {}: {} (stage {}): {}".format(
                where,
                record["error_type"],
                record["stage"],
                record["message"],
            )
        )
    return "\n".join(lines)


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Run the full reproduction and print a summary report."
    )
    parser.add_argument("--paper-scale", action="store_true")
    parser.add_argument("--fast", action="store_true",
                        help="skip the slower combined-cache and "
                             "access-time sections")
    parser.add_argument("--seed", type=int, default=None,
                        help="cache-simulator RNG seed (random policy)")
    parser.add_argument("--max-steps", type=int, default=None,
                        help="VM fuel budget per benchmark run")
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes for the benchmark fan-out "
                             "(enables the artifact cache)")
    parser.add_argument("--artifact-cache", default=None, metavar="PATH",
                        help="artifact cache root (default: "
                             "$REPRO_ARTIFACT_CACHE or "
                             "~/.cache/repro/artifacts)")
    parser.add_argument("--no-artifact-cache", action="store_true",
                        help="always compile and trace in-process, even "
                             "with --jobs")
    parser.add_argument("--journal", default=None, metavar="PATH",
                        help="checkpoint completed Figure 5 benchmarks "
                             "here; a rerun with the same journal resumes "
                             "from completed units bit-identically")
    parser.add_argument("--hierarchy", default=None, metavar="SPEC",
                        help="add the E16 hierarchy section for this "
                             "geometry (any number of levels), e.g. "
                             "L1:64x2,L2:512x8 or "
                             "L1:64x2,L2:512x8,L3:4096x16")
    parser.add_argument("--hierarchy-benchmarks", nargs="*", default=None,
                        choices=list(BENCHMARK_NAMES),
                        help="restrict the hierarchy section to these "
                             "benchmarks (default: all)")
    parser.add_argument("--multicore", action="store_true",
                        help="add the E18 multi-core shared-LLC section "
                             "(kill bits vs. way partitioning on the "
                             "default core groupings)")
    parser.add_argument("--multicore-benchmarks", nargs="*", default=None,
                        choices=list(BENCHMARK_NAMES),
                        help="run E18 on this single core grouping "
                             "instead of the defaults (implies "
                             "--multicore; needs >= 2 names)")
    parser.add_argument("--partition", default="umon",
                        choices=["umon", "even"],
                        help="way-quota policy for the E18 partitioned "
                             "cells: UMON utility-monitor allocation or "
                             "an even split (default: umon)")
    parser.add_argument("--policy-zoo", action="store_true",
                        help="add the E17 predictive-replacement zoo "
                             "section ({policy} x {conventional, unified} "
                             "hit ratios on every benchmark)")
    parser.add_argument("--engine", default=None,
                        choices=["auto", "stackdist", "vectorized", "multi"],
                        help="pin the trace-replay engine (default: "
                             "$REPRO_SWEEP_ENGINE or auto-selection; all "
                             "engines are bit-identical, so this only "
                             "affects speed)")
    args = parser.parse_args(argv)
    if args.engine:
        # Export it too so worker processes and the non-figure5
        # sections (ablation sweeps, hierarchy, policy zoo) honor it.
        os.environ["REPRO_SWEEP_ENGINE"] = args.engine
    set_default_max_steps(args.max_steps)
    cache_config = DEFAULT_CACHE
    if args.seed is not None:
        cache_config = replace(DEFAULT_CACHE, seed=args.seed)
    artifact_cache = None
    if not args.no_artifact_cache and (args.jobs or args.artifact_cache):
        from repro.evalharness.artifacts import ArtifactCache

        artifact_cache = ArtifactCache(args.artifact_cache)
    multicore = None
    if args.multicore_benchmarks is not None:
        if len(args.multicore_benchmarks) < 2:
            parser.error("--multicore-benchmarks needs at least two names")
        multicore = (tuple(args.multicore_benchmarks),)
    elif args.multicore:
        from repro.evalharness.sweeps import MULTICORE_PAIRINGS

        multicore = MULTICORE_PAIRINGS
    failures = []
    print(build_report(paper_scale=args.paper_scale, fast=args.fast,
                       failures=failures, cache_config=cache_config,
                       jobs=args.jobs, artifact_cache=artifact_cache,
                       hierarchy=args.hierarchy,
                       hierarchy_benchmarks=args.hierarchy_benchmarks,
                       journal=args.journal,
                       policy_zoo=args.policy_zoo,
                       engine=args.engine,
                       multicore=multicore,
                       partition=args.partition))
    if failures:
        print("\n" + format_failures(failures), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
