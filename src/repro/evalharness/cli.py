"""Command-line entry points.

* ``repro-figure5`` — regenerate the paper's Figure 5 table/chart.
* ``repro-compile`` — compile a MiniC file and dump the annotated IR.
* ``repro-run`` — compile and execute a MiniC file, with cache stats.
"""

import argparse
import functools
import os
import sys

from repro.cache.cache import CacheConfig
from repro.errors import ReproError
from repro.cache.replay import replay_trace
from repro.evalharness.experiment import DEFAULT_CACHE
from repro.evalharness.figure5 import figure5_table, format_figure5
from repro.ir.printer import format_module
from repro.programs import BENCHMARK_NAMES
from repro.unified.pipeline import CompilationOptions, compile_source
from repro.vm.memory import RecordingMemory


def _compile_options(args):
    return CompilationOptions(
        scheme=args.scheme,
        promotion=args.promotion,
        promotion_budget=args.budget,
        kill_bits=not args.no_kill_bits,
        spill_to_cache=not args.spill_bypass,
        bypass_user_refs=not args.hybrid,
        merge_true_aliases=args.merge_true_aliases,
        refine_points_to=args.refine_points_to,
        cache_globals_in_blocks=args.cache_globals,
    )


def _structured_errors(entry):
    """CLI wrapper: structured pipeline errors print one clean line
    (``error [stage]: message``) and exit 1 instead of dumping a
    traceback at the user."""

    @functools.wraps(entry)
    def wrapper(argv=None):
        try:
            return entry(argv)
        except ReproError as error:
            print(
                "error [{}]: {}".format(
                    getattr(error, "stage", "unknown"), error
                ),
                file=sys.stderr,
            )
            return 1

    return wrapper


def _read_source(args, parser):
    """The MiniC source to operate on: a file, stdin, or ``--seed``."""
    if args.seed is not None:
        if args.file is not None:
            parser.error("give either a file or --seed, not both")
        from repro.robustness.generator import generate_program

        return generate_program(args.seed).source
    if args.file is None:
        parser.error("a source file (or --seed N) is required")
    if args.file == "-":
        return sys.stdin.read()
    try:
        return open(args.file).read()
    except OSError as error:
        parser.error("cannot read {}: {}".format(args.file, error.strerror))


def _add_compile_args(parser):
    parser.add_argument(
        "--seed", type=int, default=None,
        help="compile the fuzz generator's program for this seed "
             "instead of reading a file")
    parser.add_argument(
        "--scheme", choices=["unified", "conventional"], default="unified"
    )
    parser.add_argument(
        "--promotion", choices=["none", "modest", "aggressive"],
        default="modest",
    )
    parser.add_argument("--budget", type=int, default=6,
                        help="modest-promotion budget per function")
    parser.add_argument("--no-kill-bits", action="store_true")
    parser.add_argument("--spill-bypass", action="store_true",
                        help="route spills around the cache (ablation)")
    parser.add_argument("--hybrid", action="store_true",
                        help="bypass only register-boundary traffic "
                             "(EXPERIMENTS.md E14)")
    parser.add_argument("--merge-true-aliases", action="store_true",
                        help="rewrite single-target derefs to direct "
                             "references (paper Definition 1)")
    parser.add_argument("--refine-points-to", action="store_true",
                        help="points-to-refined classification")
    parser.add_argument("--cache-globals", action="store_true",
                        help="block-local register caching of "
                             "unambiguous globals")


@_structured_errors
def main_figure5(argv=None):
    parser = argparse.ArgumentParser(
        description="Reproduce Figure 5 of Chi & Dietz (PLDI 1989)."
    )
    parser.add_argument("--paper-scale", action="store_true",
                        help="paper-sized workloads (minutes, not seconds)")
    parser.add_argument("--benchmarks", nargs="*", default=None,
                        choices=list(BENCHMARK_NAMES))
    parser.add_argument("--cache-words", type=int,
                        default=DEFAULT_CACHE.size_words)
    parser.add_argument("--associativity", type=int,
                        default=DEFAULT_CACHE.associativity)
    parser.add_argument("--policy", default=DEFAULT_CACHE.policy,
                        choices=["lru", "fifo", "random", "srrip", "brrip",
                                 "drrip", "ship", "hawkeye"])
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes for the benchmark fan-out "
                             "(enables the artifact cache)")
    parser.add_argument("--artifact-cache", default=None, metavar="PATH",
                        help="artifact cache root (default: "
                             "$REPRO_ARTIFACT_CACHE or "
                             "~/.cache/repro/artifacts)")
    parser.add_argument("--no-artifact-cache", action="store_true",
                        help="always compile and trace in-process, even "
                             "with --jobs")
    parser.add_argument("--journal", default=None, metavar="PATH",
                        help="checkpoint completed benchmarks here; a "
                             "rerun with the same journal resumes from "
                             "completed units bit-identically")
    parser.add_argument("--hierarchy", default=None, metavar="SPEC",
                        help="also print the hierarchy table for this "
                             "geometry (any number of levels), e.g. "
                             "L1:64x2,L2:512x8,L3:4096x16")
    parser.add_argument("--static-predictor", action="store_true",
                        help="also print the static-only hit-ratio "
                             "predictor versus the simulator (exit "
                             "non-zero if an exact prediction disagrees)")
    parser.add_argument("--promotion", default=None,
                        choices=["none", "modest", "aggressive"],
                        help="override the Figure 5 register-promotion "
                             "level (default: the figure's 'modest'; "
                             "'none' exposes the full reference stream, "
                             "where the static predictor decides the "
                             "most benchmarks exactly)")
    parser.add_argument("--engine", default=None,
                        choices=["auto", "stackdist", "vectorized", "multi"],
                        help="pin the trace-replay engine (default: "
                             "$REPRO_SWEEP_ENGINE or auto-selection; all "
                             "engines are bit-identical, so this only "
                             "affects speed)")
    args = parser.parse_args(argv)
    if args.engine:
        # Also export it so worker processes and any replay outside the
        # figure5 units (hierarchy sweeps, predictor runs) honor it.
        os.environ["REPRO_SWEEP_ENGINE"] = args.engine
    cache = CacheConfig(
        size_words=args.cache_words,
        line_words=1,
        associativity=args.associativity,
        policy=args.policy,
    )
    artifact_cache = None
    if not args.no_artifact_cache and (args.jobs or args.artifact_cache):
        from repro.evalharness.artifacts import ArtifactCache

        artifact_cache = ArtifactCache(args.artifact_cache)
    from repro.evalharness.figure5 import figure5_options

    options = figure5_options()
    if args.promotion is not None:
        options = CompilationOptions(
            scheme=options.scheme,
            promotion=args.promotion,
            promotion_budget=options.promotion_budget,
        )
    rows = figure5_table(
        paper_scale=args.paper_scale,
        options=options,
        cache_config=cache,
        names=tuple(args.benchmarks) if args.benchmarks else BENCHMARK_NAMES,
        jobs=args.jobs,
        artifact_cache=artifact_cache,
        journal=args.journal,
        engine=args.engine,
    )
    print(format_figure5(rows))
    status = 0
    if args.static_predictor:
        from repro.evalharness.figure5 import (
            format_static_predictor,
            static_predictor_table,
        )

        predictor_rows = static_predictor_table(
            paper_scale=args.paper_scale,
            options=options,
            cache_config=cache,
            names=(tuple(args.benchmarks) if args.benchmarks
                   else BENCHMARK_NAMES),
        )
        print()
        print(format_static_predictor(predictor_rows))
        if not all(row.ok for row in predictor_rows):
            print("FAIL: an exact static prediction disagrees with the "
                  "simulator", file=sys.stderr)
            status = 1
    if args.hierarchy:
        from repro.evalharness.fullreport import hierarchy_table_rows
        from repro.evalharness.sweeps import hierarchy_sweep
        from repro.evalharness.tables import format_table

        names = tuple(args.benchmarks) if args.benchmarks else BENCHMARK_NAMES
        rows = []
        for name in names:
            rows.extend(hierarchy_sweep(
                name, hierarchy=args.hierarchy, base=cache,
                artifact_cache=artifact_cache,
            ))
        print()
        print("hierarchy {} (bypass-level ablation)".format(args.hierarchy))
        header, table_rows = hierarchy_table_rows(rows)
        print(format_table(header, table_rows))
    return status


@_structured_errors
def main_compile(argv=None):
    parser = argparse.ArgumentParser(
        description="Compile MiniC and dump the annotated machine IR."
    )
    parser.add_argument("file", nargs="?", default=None,
                        help="MiniC source file ('-' for stdin)")
    _add_compile_args(parser)
    args = parser.parse_args(argv)
    source = _read_source(args, parser)
    program = compile_source(source, _compile_options(args))
    print(format_module(program.module))
    print()
    print("alias sets:")
    for alias_set in program.alias_sets():
        print("  ", alias_set)
    print()
    for label, value in program.static.rows():
        print("{:28s} {}".format(label, value))
    return 0


@_structured_errors
def main_run(argv=None):
    parser = argparse.ArgumentParser(
        description="Compile and execute MiniC; print output and cache stats."
    )
    parser.add_argument("file", nargs="?", default=None,
                        help="MiniC source file ('-' for stdin)")
    _add_compile_args(parser)
    parser.add_argument("--cache-words", type=int,
                        default=DEFAULT_CACHE.size_words)
    parser.add_argument("--max-steps", type=int, default=None,
                        help="VM fuel budget (ResourceExhausted beyond it)")
    args = parser.parse_args(argv)
    source = _read_source(args, parser)
    program = compile_source(source, _compile_options(args))
    memory = RecordingMemory()
    result = program.run(memory=memory, max_steps=args.max_steps)
    for value in result.output:
        print(value)
    stats = replay_trace(
        memory.buffer,
        size_words=args.cache_words,
        associativity=DEFAULT_CACHE.associativity,
    )
    print("-- executed {} instructions, {} data references".format(
        result.steps, len(memory.buffer)))
    for key, value in stats.as_dict().items():
        print("{:20s} {}".format(key, value))
    return 0
