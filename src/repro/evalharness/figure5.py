"""Figure 5 reproduction: percent of data-cache reference traffic
reduction, per benchmark.

The paper reports (Section 5):

* statically, 70-80 percent of load/store data references are
  unambiguous and marked to bypass the cache;
* dynamically, 45-75 percent of executed data references are
  unambiguous;
* data-cache reference traffic falls by about 60 percent.
"""

from dataclasses import dataclass

from repro.evalharness.experiment import DEFAULT_CACHE
from repro.evalharness.tables import format_bar_chart, format_table
from repro.programs import BENCHMARK_NAMES

#: The bands the paper states in Section 5.
PAPER_STATIC_BAND = (70.0, 80.0)
PAPER_DYNAMIC_BAND = (45.0, 75.0)
PAPER_REDUCTION_ABOUT = 60.0


def figure5_options():
    """The compilation configuration used for the Figure 5 runs.

    The paper measured *data value references* of 1989-era MIPS code;
    its 45-75 percent dynamic-unambiguous band implies codegen that
    kept only the hottest scalar values in registers and left the rest
    as memory traffic.  ``modest`` promotion with a budget of one
    models that generation; the promotion ablation
    (:func:`repro.evalharness.sweeps.promotion_ablation`) reports how
    the fractions move from ``none`` (every value reference is a
    memory reference) to ``aggressive`` (modern graph coloring).
    """
    from repro.unified.pipeline import CompilationOptions

    return CompilationOptions(
        scheme="unified", promotion="modest", promotion_budget=1
    )


@dataclass
class Figure5Row:
    """One benchmark's entry in the reproduced figure."""

    name: str
    static_percent_unambiguous: float
    dynamic_percent_unambiguous: float
    cache_traffic_reduction: float
    bus_traffic_reduction: float
    dynamic_refs: int
    #: The must/may analysis's independent count of the static bypass
    #: ratio (None when the geometry is outside the analysis's model);
    #: cross-checks the annotation pass against the paper's 70-80 %
    #: static claim from a second code path.
    static_bypass_checked: object = None

    @classmethod
    def from_result(cls, result):
        return cls(
            name=result.name,
            static_percent_unambiguous=result.static_percent_unambiguous,
            dynamic_percent_unambiguous=result.dynamic_percent_unambiguous,
            cache_traffic_reduction=result.cache_traffic_reduction,
            bus_traffic_reduction=result.bus_traffic_reduction,
            dynamic_refs=result.dynamic["total"],
            static_bypass_checked=result.static_bypass_checked,
        )


def figure5_table(
    paper_scale=False,
    options=None,
    cache_config=DEFAULT_CACHE,
    names=BENCHMARK_NAMES,
    failures=None,
    jobs=None,
    artifact_cache=None,
    journal=None,
    engine=None,
):
    """Run the full Figure 5 experiment; returns a list of rows plus
    an average row.

    With ``failures`` (a list), a benchmark that breaks is recorded
    there and skipped instead of aborting the whole table; without it,
    errors propagate.  ``jobs``/``artifact_cache`` route the table
    through the compile-once/trace-once engine
    (:mod:`repro.evalharness.parallel`); the rows are bit-identical to
    the serial path either way.  ``journal`` (a path) checkpoints
    completed benchmarks so a killed run resumes where it left off.
    ``engine`` pins the replay engine
    (``auto``/``stackdist``/``vectorized``/``multi``) for every unit;
    ``None`` defers to ``REPRO_SWEEP_ENGINE`` / auto-selection.  All
    engines produce bit-identical rows.
    """
    from repro.evalharness.parallel import EvalUnit, run_units

    if options is None:
        options = figure5_options()
    units = [
        EvalUnit(
            name=name,
            paper_scale=paper_scale,
            options=options,
            cache_configs=(cache_config,),
            engine=engine,
        )
        for name in names
    ]
    unit_results = run_units(
        units,
        jobs=jobs,
        artifact_cache=artifact_cache,
        failures=failures,
        section="figure5",
        journal=journal,
    )
    return [
        Figure5Row.from_result(results[0])
        for results in unit_results
        if results is not None
    ]


def average_row(rows):
    count = max(len(rows), 1)
    return Figure5Row(
        name="average",
        static_percent_unambiguous=sum(
            row.static_percent_unambiguous for row in rows
        ) / count,
        dynamic_percent_unambiguous=sum(
            row.dynamic_percent_unambiguous for row in rows
        ) / count,
        cache_traffic_reduction=sum(
            row.cache_traffic_reduction for row in rows
        ) / count,
        bus_traffic_reduction=sum(
            row.bus_traffic_reduction for row in rows
        ) / count,
        dynamic_refs=sum(row.dynamic_refs for row in rows),
        static_bypass_checked=(
            sum(row.static_bypass_checked for row in rows) / count
            if all(row.static_bypass_checked is not None for row in rows)
            and rows
            else None
        ),
    )


@dataclass
class StaticPredictorRow:
    """Predicted-vs-simulated hit counts for one benchmark.

    ``exact`` — the analysis decided every through-cache event with a
    definite verdict, so the prediction claims equality with the
    simulator.  ``agrees`` — that claim held.  ``excuse`` — why a
    non-exact benchmark is excused (input-dependent references, an
    unsupported geometry); a row *fails* only when ``exact`` and not
    ``agrees``.
    """

    name: str
    predicted_hits: int = 0
    predicted_misses: int = 0
    simulated_hits: int = 0
    simulated_misses: int = 0
    unpredicted: int = 0
    exact: bool = False
    excuse: str = ""

    @property
    def agrees(self):
        return (
            self.exact
            and self.predicted_hits == self.simulated_hits
            and self.predicted_misses == self.simulated_misses
        )

    @property
    def ok(self):
        """An exact prediction must agree; a non-exact one is excused."""
        return self.agrees if self.exact else True

    @staticmethod
    def _ratio(hits, misses):
        total = hits + misses
        return 100.0 * hits / total if total else 0.0

    @property
    def predicted_hit_ratio(self):
        return self._ratio(self.predicted_hits, self.predicted_misses)

    @property
    def simulated_hit_ratio(self):
        return self._ratio(self.simulated_hits, self.simulated_misses)


def static_predictor_table(
    paper_scale=False,
    options=None,
    cache_config=DEFAULT_CACHE,
    names=BENCHMARK_NAMES,
    exact_budget=None,
):
    """The static-only predictor versus the simulator, per benchmark.

    Each benchmark is compiled once; the simulated side replays the
    recorded trace through the reference cache (the numbers behind the
    golden Figure 5 values for the same options/geometry), while the
    predicted side re-executes under
    :class:`~repro.staticcheck.predictor.PredictingMemory` — flat
    memory, no cache state, hits and misses read off the verdict tiers
    alone.  On every benchmark where the analysis decides all events
    (``exact``), the two must match count-for-count.
    """
    from repro.evalharness.experiment import run_compiled
    from repro.programs import get_benchmark
    from repro.staticcheck import StaticCheckError
    from repro.staticcheck.predictor import predict_program
    from repro.unified.pipeline import compile_source

    if options is None:
        options = figure5_options()
    rows = []
    for name in names:
        bench = get_benchmark(name, paper_scale)
        program = compile_source(bench.source, options)
        result = run_compiled(
            name, program, expected_output=bench.expected_output,
            cache_config=cache_config,
        )
        stats = result.unified_stats
        try:
            prediction = predict_program(
                program, cache_config, exact_budget=exact_budget
            )
        except StaticCheckError as error:
            rows.append(StaticPredictorRow(
                name=name,
                simulated_hits=stats.hits,
                simulated_misses=stats.misses,
                excuse="geometry outside the model: {}".format(error),
            ))
            continue
        if prediction.exact:
            excuse = ""
        else:
            sample = sorted(prediction.unpredicted_sites.items())
            excuse = "{} unpredicted events (e.g. {} [{}])".format(
                prediction.unpredicted,
                sample[0][0] if sample else "?",
                sample[0][1] if sample else "?",
            )
        rows.append(StaticPredictorRow(
            name=name,
            predicted_hits=prediction.hits,
            predicted_misses=prediction.misses,
            simulated_hits=stats.hits,
            simulated_misses=stats.misses,
            unpredicted=prediction.unpredicted,
            exact=prediction.exact,
            excuse=excuse,
        ))
    return rows


def format_static_predictor(rows):
    """Render the predictor-vs-simulator comparison."""
    body = []
    for row in rows:
        if row.exact:
            status = "exact, {}".format(
                "agrees" if row.agrees else "DISAGREES"
            )
        else:
            status = "excused ({})".format(row.excuse or "not exact")
        body.append([
            row.name,
            "{}/{}".format(row.predicted_hits, row.predicted_misses),
            "{}/{}".format(row.simulated_hits, row.simulated_misses),
            "{:.2f}".format(row.predicted_hit_ratio) if row.exact else "-",
            "{:.2f}".format(row.simulated_hit_ratio),
            status,
        ])
    table = format_table(
        ["benchmark", "predicted h/m", "simulated h/m",
         "pred hit%", "sim hit%", "status"],
        body,
        title="static-only predictor vs cache simulator",
    )
    exact_rows = [row for row in rows if row.exact]
    note = (
        "\n{} of {} benchmarks fully decided statically; every exact "
        "prediction {} the simulator".format(
            len(exact_rows), len(rows),
            "matches" if all(row.agrees for row in exact_rows)
            else "DOES NOT match",
        )
    )
    return table + note


def format_figure5(rows, include_chart=True):
    """Render the reproduced Figure 5 as table + bar chart."""
    avg = average_row(rows)
    table = format_table(
        ["benchmark", "static %unamb", "static %byp (analysis)",
         "dynamic %unamb", "cache-ref reduction %", "bus reduction %",
         "data refs"],
        [
            [
                row.name,
                "{:.1f}".format(row.static_percent_unambiguous),
                (
                    "{:.1f}".format(row.static_bypass_checked)
                    if row.static_bypass_checked is not None
                    else "-"
                ),
                "{:.1f}".format(row.dynamic_percent_unambiguous),
                "{:.1f}".format(row.cache_traffic_reduction),
                "{:.1f}".format(row.bus_traffic_reduction),
                row.dynamic_refs,
            ]
            for row in rows + [avg]
        ],
        title="Figure 5: percent of data cache reference traffic reduction",
    )
    if not include_chart:
        return table
    chart = format_bar_chart(
        [(row.name, row.cache_traffic_reduction) for row in rows],
        title="\ncache reference traffic reduction (the Figure 5 bars):",
    )
    note = (
        "\npaper bands: static 70-80% unambiguous, dynamic 45-75% "
        "unambiguous, reduction about 60%"
    )
    return "\n".join([table, chart, note])
