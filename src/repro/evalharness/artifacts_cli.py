"""``repro-artifacts`` — operate the on-disk artifact store.

Subcommands:

* ``stats`` — entry count, footprint, budget, quarantine size.
* ``verify`` — integrity-check every entry; corrupt ones are moved to
  quarantine (exit 1 when anything was bad).
* ``gc`` — reap stale staging directories and enforce the byte budget
  (``--budget``/``$REPRO_ARTIFACT_BUDGET``) with the configured
  eviction policy.
* ``quarantine ls`` / ``quarantine clear`` — inspect or discard the
  quarantined evidence.
"""

import argparse
import json
import os
import sys

from repro.evalharness.artifacts import ArtifactCache, parse_size


def _build_cache(args):
    return ArtifactCache(
        root=args.root,
        capacity_bytes=parse_size(args.budget) if args.budget else None,
        policy=args.policy,
    )


def _human(size):
    for unit in ("B", "KiB", "MiB", "GiB"):
        if size < 1024 or unit == "GiB":
            return (
                "{}{}".format(size, unit)
                if unit == "B"
                else "{:.1f}{}".format(size, unit)
            )
        size /= 1024.0
    return "{}B".format(size)


def cmd_stats(cache, args):
    stats = cache.stats()
    if args.json:
        print(json.dumps(stats, indent=2, sort_keys=True))
        return 0
    print("root             {}".format(stats["root"]))
    print("entries          {}".format(stats["entries"]))
    print("footprint        {}".format(_human(stats["bytes"])))
    print(
        "capacity         {}".format(
            _human(stats["capacity_bytes"])
            if stats["capacity_bytes"]
            else "unbounded"
        )
    )
    print("eviction policy  {}".format(stats["policy"]))
    print(
        "quarantine       {} entr{} ({})".format(
            stats["quarantine_entries"],
            "y" if stats["quarantine_entries"] == 1 else "ies",
            _human(stats["quarantine_bytes"]),
        )
    )
    return 0


def cmd_verify(cache, args):
    checked, bad = cache.verify()
    print("checked {} entr{}".format(checked, "y" if checked == 1 else "ies"))
    for key, reason in bad:
        print("  quarantined {}: {}".format(key[:12], reason))
    if bad:
        print("{} corrupt entr{} moved to quarantine".format(
            len(bad), "y" if len(bad) == 1 else "ies"))
        return 1
    print("all entries intact")
    return 0


def cmd_gc(cache, args):
    removed, evicted = cache.gc(max_staging_age=args.staging_age)
    print(
        "reaped {} stale staging dir(s), evicted {} entr{}".format(
            removed, evicted, "y" if evicted == 1 else "ies"
        )
    )
    stats = cache.stats()
    print(
        "store now holds {} entr{} ({})".format(
            stats["entries"],
            "y" if stats["entries"] == 1 else "ies",
            _human(stats["bytes"]),
        )
    )
    return 0


def cmd_quarantine(cache, args):
    if args.action == "clear":
        removed = cache.quarantine_clear()
        print("cleared {} quarantined entr{}".format(
            removed, "y" if removed == 1 else "ies"))
        return 0
    entries = cache.quarantine_entries()
    if not entries:
        print("quarantine is empty")
        return 0
    for key, path in entries:
        reason = "(no reason.json)"
        reason_path = os.path.join(path, "reason.json")
        try:
            with open(reason_path) as handle:
                record = json.load(handle)
            reason = "{} [{}]".format(
                record.get("reason", "?"), record.get("quarantined_at", "?")
            )
        except (OSError, ValueError):
            pass
        print("{}  {}".format(key[:16], reason))
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="repro-artifacts",
        description="Inspect and maintain the compile-once/trace-once "
                    "artifact store.",
    )
    parser.add_argument(
        "--root", default=None,
        help="store root (default: $REPRO_ARTIFACT_CACHE or "
             "~/.cache/repro/artifacts)")
    parser.add_argument(
        "--budget", default=None,
        help="capacity budget for gc, e.g. 64M (default: "
             "$REPRO_ARTIFACT_BUDGET)")
    parser.add_argument(
        "--policy", default=None, choices=["lru", "fifo", "random"],
        help="eviction policy (default: $REPRO_ARTIFACT_POLICY or lru)")
    commands = parser.add_subparsers(dest="command", required=True)

    stats = commands.add_parser("stats", help="store footprint and counters")
    stats.add_argument("--json", action="store_true")
    stats.set_defaults(func=cmd_stats)

    verify = commands.add_parser(
        "verify", help="checksum every entry; quarantine corrupt ones")
    verify.set_defaults(func=cmd_verify)

    gc = commands.add_parser(
        "gc", help="reap stale staging dirs and enforce the byte budget")
    gc.add_argument(
        "--staging-age", type=float, default=3600.0,
        help="only reap staging dirs older than this many seconds")
    gc.set_defaults(func=cmd_gc)

    quarantine = commands.add_parser(
        "quarantine", help="list or clear quarantined entries")
    quarantine.add_argument("action", choices=["ls", "clear"])
    quarantine.set_defaults(func=cmd_quarantine)

    args = parser.parse_args(argv)
    return args.func(_build_cache(args), args)


if __name__ == "__main__":
    sys.exit(main())
