"""Experiment harness: everything needed to regenerate the paper's
evaluation (Figure 5 and the in-text claims) plus the ablations that
probe each design decision.
"""

from repro.evalharness.artifacts import Artifact, ArtifactCache, artifact_key
from repro.evalharness.experiment import (
    DEFAULT_CACHE,
    ExperimentResult,
    evaluate_trace,
    evaluate_trace_multi,
    run_benchmark,
    run_compiled,
)
from repro.evalharness.figure5 import Figure5Row, figure5_table, format_figure5
from repro.evalharness.parallel import (
    EvalUnit,
    Journal,
    Supervisor,
    evaluate_unit,
    run_units,
    unit_fingerprint,
)
from repro.evalharness.sweeps import (
    cache_size_sweep,
    kill_bit_ablation,
    policy_ablation,
    promotion_ablation,
    spill_ablation,
)
from repro.evalharness.tables import format_table
from repro.evalharness.unifiedcache import (
    record_combined_trace,
    replay_combined,
    unified_cache_comparison,
)

__all__ = [
    "record_combined_trace",
    "replay_combined",
    "unified_cache_comparison",
    "Artifact",
    "ArtifactCache",
    "artifact_key",
    "DEFAULT_CACHE",
    "ExperimentResult",
    "EvalUnit",
    "Journal",
    "Supervisor",
    "evaluate_trace",
    "evaluate_trace_multi",
    "evaluate_unit",
    "run_benchmark",
    "run_compiled",
    "run_units",
    "unit_fingerprint",
    "Figure5Row",
    "figure5_table",
    "format_figure5",
    "cache_size_sweep",
    "policy_ablation",
    "kill_bit_ablation",
    "spill_ablation",
    "promotion_ablation",
    "format_table",
]
