"""Plain-text table rendering for harness output."""


def format_table(headers, rows, title=None):
    """Render a list-of-lists as an aligned ASCII table."""
    texts = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in texts:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells):
        return "  ".join(
            cell.rjust(width) if index else cell.ljust(width)
            for index, (cell, width) in enumerate(zip(cells, widths))
        )

    parts = []
    if title:
        parts.append(title)
    parts.append(line(headers))
    parts.append("  ".join("-" * width for width in widths))
    parts.extend(line(row) for row in texts)
    return "\n".join(parts)


def format_bar_chart(rows, width=40, title=None, suffix="%"):
    """Horizontal ASCII bar chart: rows of (label, value)."""
    if not rows:
        return title or ""
    peak = max(value for _label, value in rows)
    peak = max(peak, 1e-9)
    label_width = max(len(label) for label, _value in rows)
    parts = []
    if title:
        parts.append(title)
    for label, value in rows:
        bar = "#" * max(0, int(round(width * value / peak)))
        parts.append(
            "{}  {} {:5.1f}{}".format(label.ljust(label_width), bar.ljust(width),
                                      value, suffix)
        )
    return "\n".join(parts)
