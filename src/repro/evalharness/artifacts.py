"""Content-addressed, crash-safe, bounded cache of compiled programs
and traces.

The expensive half of every experiment is invariant across cache
geometries: compiling a benchmark under one annotation configuration
and executing it once on the VM to record the reference trace.  This
module stores exactly that pair — the pickled
:class:`~repro.unified.pipeline.CompiledProgram` and the serialized
:class:`~repro.vm.trace.TraceBuffer` — keyed by the SHA-256 of
``(artifact schema, compiler version, source text, normalized
compilation options)``, so each (benchmark × annotation-config) unit
is compiled and VM-executed exactly once no matter how many sweep
configurations replay it.

Layout under the cache root (``REPRO_ARTIFACT_CACHE`` or
``~/.cache/repro/artifacts``)::

    <key[:2]>/<key>/meta.json     name, output, steps, events, checksums
    <key[:2]>/<key>/program.pkl   pickled CompiledProgram
    <key[:2]>/<key>/trace.bin     serialized TraceBuffer
    <key[:2]>/<key>/stamp         empty; mtime = last access (LRU order)
    quarantine/<key>/             corrupt entries, plus reason.json

The store is built to survive a hostile disk (see
``docs/ROBUSTNESS.md`` and :mod:`repro.faultinject`):

* **Crash-safe writes** — entries are staged in a temp directory,
  every file is flushed and fsynced, and the entry appears via one
  atomic rename (the parent directory is fsynced after).  A crash or
  torn write mid-store leaves either no entry or a stale staging
  directory (reaped by ``gc``), never a partially visible one.
* **Integrity** — ``meta.json`` records the SHA-256 of ``program.pkl``
  and ``trace.bin``; loads verify the payload *before* unpickling, so
  a poisoned or bit-flipped pickle is never deserialized.
* **Quarantine, not re-serve** — a corrupt entry is moved to
  ``quarantine/<key>/`` with a ``reason.json`` and recomputed; it is
  never silently re-read on the next lookup, and ``repro-artifacts
  quarantine ls`` lists the evidence for triage.
* **Bounded capacity** — an optional byte budget
  (``capacity_bytes=...`` or ``$REPRO_ARTIFACT_BUDGET``, suffixes
  K/M/G) is enforced after every store by evicting whole entries; the
  victim order is chosen by our own
  :class:`~repro.cache.semantics.ReplacementPolicy` implementations
  (LRU by last access, FIFO by store time, seeded Random), the store
  dogfooding the very policies it exists to evaluate.

Invalidation is by key only: bump ``ARTIFACT_SCHEMA`` whenever the
trace format, the pickle layout, or any compilation semantics change
without a version bump.
"""

import hashlib
import json
import os
import pickle
import shutil
import tempfile
import time

from repro import __version__
from repro import faultinject
from repro.lang.errors import VMError
from repro.unified.pipeline import CompilationOptions, compile_source
from repro.vm.memory import RecordingMemory
from repro.vm.trace import TraceBuffer

#: Bump to invalidate every stored artifact (schema/semantics change).
#: 2: per-entry payload checksums + stored_at in meta.json.
ARTIFACT_SCHEMA = 2

#: Environment override for the default cache root.
CACHE_ROOT_ENV = "REPRO_ARTIFACT_CACHE"

#: Environment override for the capacity budget (bytes; K/M/G suffix).
CAPACITY_ENV = "REPRO_ARTIFACT_BUDGET"

#: Environment override for the eviction policy (lru/fifo/random).
POLICY_ENV = "REPRO_ARTIFACT_POLICY"

#: The files making up one entry; checksummed ones first.
_PAYLOAD_FILES = ("program.pkl", "trace.bin")
_ENTRY_FILES = _PAYLOAD_FILES + ("meta.json", "stamp")

#: Name of the quarantine directory under the root.
QUARANTINE_DIR = "quarantine"


def default_cache_root():
    root = os.environ.get(CACHE_ROOT_ENV)
    if root:
        return root
    return os.path.join(
        os.path.expanduser("~"), ".cache", "repro", "artifacts"
    )


def parse_size(text):
    """``"64M"`` -> bytes; plain integers pass through."""
    if text is None:
        return None
    if isinstance(text, int):
        return text
    text = text.strip().upper()
    factor = 1
    for suffix, mult in (("K", 1 << 10), ("M", 1 << 20), ("G", 1 << 30)):
        if text.endswith(suffix):
            factor = mult
            text = text[: -len(suffix)]
            break
    return int(float(text) * factor)


def options_fingerprint(options):
    """A JSON-stable description of everything that affects codegen."""
    options = options.normalized()
    machine = options.machine
    return {
        "scheme": options.scheme.value,
        "promotion": options.promotion.value,
        "promotion_budget": options.promotion_budget,
        "kill_bits": options.kill_bits,
        "spill_to_cache": options.spill_to_cache,
        "refine_points_to": options.refine_points_to,
        "cache_globals_in_blocks": options.cache_globals_in_blocks,
        "bypass_user_refs": options.bypass_user_refs,
        "merge_true_aliases": options.merge_true_aliases,
        "machine": {
            "num_regs": machine.num_regs,
            "num_arg_regs": machine.num_arg_regs,
            "ret_reg": machine.ret_reg,
            "num_caller_saved": machine.num_caller_saved,
        },
    }


def artifact_key(source, options):
    """The content address of one (source × options) compilation."""
    payload = json.dumps(
        {
            "schema": ARTIFACT_SCHEMA,
            "compiler": __version__,
            "source": source,
            "options": options_fingerprint(options),
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class Artifact:
    """One resolved compile-once/trace-once unit."""

    __slots__ = ("key", "name", "program", "trace", "output", "steps",
                 "from_cache")

    def __init__(self, key, name, program, trace, output, steps, from_cache):
        self.key = key
        self.name = name
        self.program = program
        self.trace = trace
        self.output = output
        self.steps = steps
        self.from_cache = from_cache


class _StoreGeometry:
    """The store viewed as one fully-associative cache set, so the
    :mod:`repro.cache.semantics` replacement policies can pick eviction
    victims without knowing they are ranking directories."""

    num_sets = 1

    def __init__(self, associativity, policy, seed):
        self.associativity = max(associativity, 1)
        self.policy = policy
        self.seed = seed


def _fsync_file(handle):
    handle.flush()
    os.fsync(handle.fileno())


def _fsync_dir(path):
    # Directory fsync is what makes the rename itself durable; not all
    # platforms/filesystems allow it, and losing it only weakens
    # durability, never atomicity.
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


class ArtifactCache:
    """Resolve (source × options) units, hitting disk when possible.

    ``capacity_bytes``/``policy``/``seed`` bound the store: after every
    write the total entry footprint is brought back under budget by
    evicting whole entries in the order the named
    :class:`~repro.cache.semantics.ReplacementPolicy` dictates.
    Instance counters (``hits``, ``misses``, ``store_errors``,
    ``quarantined``, ``evicted``) describe this process's view.
    """

    def __init__(self, root=None, capacity_bytes=None, policy=None,
                 seed=12345):
        self.root = root if root is not None else default_cache_root()
        if capacity_bytes is None:
            capacity_bytes = parse_size(os.environ.get(CAPACITY_ENV))
        self.capacity_bytes = capacity_bytes
        self.policy = policy or os.environ.get(POLICY_ENV) or "lru"
        self.seed = seed
        self.hits = 0
        self.misses = 0
        self.store_errors = 0
        self.quarantined = 0
        self.evicted = 0

    # ------------------------------------------------------------------

    def resolve(self, name, source, options=None, expected_output=None):
        """Compile and trace ``source`` exactly once.

        On a hit the program, trace, output and step count come back
        from disk; on a miss (or a corrupt/quarantined entry) the unit
        is recomputed and stored.  A store failure (disk full, injected
        ``OSError``) is counted and swallowed — the computed artifact
        is still returned, the cache just stays cold for that key.
        ``expected_output`` is enforced on both paths, matching
        ``run_compiled``'s guard.
        """
        options = (options or CompilationOptions()).normalized()
        key = artifact_key(source, options)
        artifact = self._load(key, name)
        if artifact is None:
            artifact = self._compute(key, name, source, options)
            try:
                self._store(artifact)
            except OSError:
                self.store_errors += 1
            self.misses += 1
        else:
            self.hits += 1
        if expected_output is not None and artifact.output != tuple(
            expected_output
        ):
            raise VMError(
                "benchmark {} produced {} instead of {}".format(
                    name, list(artifact.output), list(expected_output)
                )
            )
        return artifact

    def clear(self):
        """Delete every stored artifact under this root."""
        if os.path.isdir(self.root):
            shutil.rmtree(self.root)

    # -- maintenance (the ``repro-artifacts`` CLI drives these) --------

    def entries(self):
        """Yield ``(key, entry_dir)`` for every stored entry."""
        if not os.path.isdir(self.root):
            return
        for shard in sorted(os.listdir(self.root)):
            shard_dir = os.path.join(self.root, shard)
            if len(shard) != 2 or not os.path.isdir(shard_dir):
                continue
            for key in sorted(os.listdir(shard_dir)):
                entry = os.path.join(shard_dir, key)
                if not key.startswith(".") and os.path.isdir(entry):
                    yield key, entry

    def entry_size(self, entry):
        total = 0
        try:
            for item in os.scandir(entry):
                try:
                    total += item.stat().st_size
                except OSError:
                    pass
        except OSError:
            pass
        return total

    def stats(self):
        """A JSON-friendly snapshot: footprint, budget, quarantine."""
        entries = list(self.entries())
        total = sum(self.entry_size(entry) for _, entry in entries)
        quarantine = self.quarantine_entries()
        return {
            "root": self.root,
            "entries": len(entries),
            "bytes": total,
            "capacity_bytes": self.capacity_bytes,
            "policy": self.policy,
            "quarantine_entries": len(quarantine),
            "quarantine_bytes": sum(
                self.entry_size(path) for _, path in quarantine
            ),
            "session": {
                "hits": self.hits,
                "misses": self.misses,
                "store_errors": self.store_errors,
                "quarantined": self.quarantined,
                "evicted": self.evicted,
            },
        }

    def verify(self):
        """Integrity-check every entry; quarantine the corrupt ones.

        Returns ``(checked, bad)`` where ``bad`` lists ``(key,
        reason)`` for every entry that failed and was quarantined.
        """
        checked = 0
        bad = []
        for key, entry in list(self.entries()):
            checked += 1
            reason = self._verify_entry(key, entry)
            if reason is not None:
                self._quarantine(key, entry, reason)
                bad.append((key, reason))
        return checked, bad

    def gc(self, max_staging_age=3600.0):
        """Reap stale staging directories and enforce the byte budget.

        Returns ``(staging_removed, evicted)``.  Staging directories
        are only removed once older than ``max_staging_age`` seconds so
        a concurrent in-flight store is never swept from under the
        writer.
        """
        removed = 0
        now = time.time()
        if os.path.isdir(self.root):
            for shard in os.listdir(self.root):
                shard_dir = os.path.join(self.root, shard)
                if len(shard) != 2 or not os.path.isdir(shard_dir):
                    continue
                for item in os.listdir(shard_dir):
                    if not item.startswith(".staging-"):
                        continue
                    staging = os.path.join(shard_dir, item)
                    try:
                        if now - os.path.getmtime(staging) >= max_staging_age:
                            shutil.rmtree(staging, ignore_errors=True)
                            removed += 1
                    except OSError:
                        pass
        evicted = self._enforce_budget()
        return removed, evicted

    def quarantine_entries(self):
        """``(key, path)`` for every quarantined entry."""
        quarantine = os.path.join(self.root, QUARANTINE_DIR)
        if not os.path.isdir(quarantine):
            return []
        return [
            (key, os.path.join(quarantine, key))
            for key in sorted(os.listdir(quarantine))
            if os.path.isdir(os.path.join(quarantine, key))
        ]

    def quarantine_clear(self):
        """Delete the quarantine directory; returns entries removed."""
        entries = self.quarantine_entries()
        shutil.rmtree(
            os.path.join(self.root, QUARANTINE_DIR), ignore_errors=True
        )
        return len(entries)

    # ------------------------------------------------------------------

    def _entry_dir(self, key):
        return os.path.join(self.root, key[:2], key)

    def _compute(self, key, name, source, options):
        program = compile_source(source, options)
        memory = RecordingMemory()
        result = program.run(memory=memory)
        return Artifact(
            key,
            name,
            program,
            memory.buffer,
            tuple(result.output),
            result.steps,
            from_cache=False,
        )

    # -- load ----------------------------------------------------------

    def _read_payload(self, entry, key, filename, expected_checksum):
        """Read and integrity-check one payload file.

        The checksum is verified on the raw bytes *before* any parsing
        or unpickling — a poisoned pickle that does not match its
        recorded digest is never fed to ``pickle.loads``.
        """
        with open(os.path.join(entry, filename), "rb") as handle:
            data = handle.read()
        data = faultinject.corrupt_bytes(
            "bitflip", "{}/{}".format(key, filename), data
        )
        digest = hashlib.sha256(data).hexdigest()
        if digest != expected_checksum:
            raise _Corrupt(
                "{}: checksum mismatch (stored {}, found {})".format(
                    filename, expected_checksum[:12], digest[:12]
                )
            )
        return data

    def _load(self, key, name):
        entry = self._entry_dir(key)
        if not os.path.isdir(entry):
            return None
        try:
            faultinject.raise_oserror("load_oserror", key)
            with open(os.path.join(entry, "meta.json")) as handle:
                meta = json.load(handle)
            if meta.get("schema") != ARTIFACT_SCHEMA:
                raise _Corrupt(
                    "meta.json: schema {} != {}".format(
                        meta.get("schema"), ARTIFACT_SCHEMA
                    )
                )
            checksums = meta["checksums"]
            program_bytes = self._read_payload(
                entry, key, "program.pkl", checksums["program.pkl"]
            )
            trace_bytes = self._read_payload(
                entry, key, "trace.bin", checksums["trace.bin"]
            )
            program = pickle.loads(program_bytes)
            trace = TraceBuffer.from_bytes(trace_bytes)
            if len(trace) != meta["events"]:
                raise _Corrupt(
                    "trace.bin: {} events, meta promises {}".format(
                        len(trace), meta["events"]
                    )
                )
        except OSError:
            # Transient I/O failure (or a concurrent eviction): degrade
            # to a miss without condemning the entry.
            return None
        except (_Corrupt, ValueError, KeyError, TypeError,
                pickle.UnpicklingError, EOFError,
                json.JSONDecodeError) as error:
            # Corrupt: quarantine so the bad entry is never re-read and
            # re-parsed on the next lookup, then recompute.
            self._quarantine(key, entry, str(error))
            return None
        self._touch(entry)
        return Artifact(
            key,
            name,
            program,
            trace,
            tuple(meta["output"]),
            meta["steps"],
            from_cache=True,
        )

    def _touch(self, entry):
        """Refresh the LRU stamp; best-effort (hits must never fail)."""
        try:
            os.utime(os.path.join(entry, "stamp"))
        except OSError:
            pass

    def _verify_entry(self, key, entry):
        """The reason this entry is corrupt, or ``None`` if intact."""
        try:
            with open(os.path.join(entry, "meta.json")) as handle:
                meta = json.load(handle)
            if meta.get("schema") != ARTIFACT_SCHEMA:
                return "meta.json: schema {} != {}".format(
                    meta.get("schema"), ARTIFACT_SCHEMA
                )
            for filename in _PAYLOAD_FILES:
                expected = meta["checksums"][filename]
                with open(os.path.join(entry, filename), "rb") as handle:
                    digest = hashlib.sha256(handle.read()).hexdigest()
                if digest != expected:
                    return "{}: checksum mismatch".format(filename)
        except (OSError, ValueError, KeyError, TypeError,
                json.JSONDecodeError) as error:
            return "{}: {}".format(type(error).__name__, error)
        return None

    # -- quarantine ----------------------------------------------------

    def _quarantine(self, key, entry, reason):
        """Move a corrupt entry out of the lookup path, keeping it for
        triage; fall back to deletion if the move itself fails."""
        quarantine = os.path.join(self.root, QUARANTINE_DIR)
        destination = os.path.join(quarantine, key)
        try:
            os.makedirs(quarantine, exist_ok=True)
            if os.path.isdir(destination):
                shutil.rmtree(destination, ignore_errors=True)
            os.rename(entry, destination)
            with open(os.path.join(destination, "reason.json"),
                      "w") as handle:
                json.dump(
                    {
                        "key": key,
                        "reason": reason,
                        "quarantined_at": time.strftime(
                            "%Y-%m-%dT%H:%M:%SZ", time.gmtime()
                        ),
                    },
                    handle,
                    indent=2,
                    sort_keys=True,
                )
                handle.write("\n")
        except OSError:
            # Quarantine failed (another process won the race, or the
            # disk is sick): delete instead — a corrupt entry must not
            # stay in the lookup path either way.
            shutil.rmtree(entry, ignore_errors=True)
        self.quarantined += 1

    # -- store ---------------------------------------------------------

    def _write_staged(self, staging, filename, data, key):
        """Write one staged file durably, with torn-write injection."""
        data = faultinject.truncate_bytes(
            "torn_write", "{}/{}".format(key, filename), data
        )
        with open(os.path.join(staging, filename), "wb") as handle:
            handle.write(data)
            _fsync_file(handle)

    def _store(self, artifact):
        key = artifact.key
        entry = self._entry_dir(key)
        parent = os.path.dirname(entry)
        faultinject.raise_oserror("store_oserror", key)
        os.makedirs(parent, exist_ok=True)
        staging = tempfile.mkdtemp(prefix=".staging-", dir=parent)
        try:
            program_bytes = pickle.dumps(
                artifact.program, protocol=pickle.HIGHEST_PROTOCOL
            )
            trace_bytes = artifact.trace.to_bytes()
            meta = {
                "schema": ARTIFACT_SCHEMA,
                "compiler": __version__,
                "name": artifact.name,
                "output": list(artifact.output),
                "steps": artifact.steps,
                "events": len(artifact.trace),
                "stored_at": time.time(),
                "checksums": {
                    "program.pkl": hashlib.sha256(program_bytes).hexdigest(),
                    "trace.bin": hashlib.sha256(trace_bytes).hexdigest(),
                },
            }
            self._write_staged(staging, "program.pkl", program_bytes, key)
            self._write_staged(staging, "trace.bin", trace_bytes, key)
            self._write_staged(
                staging,
                "meta.json",
                (json.dumps(meta, indent=2, sort_keys=True) + "\n").encode(
                    "utf-8"
                ),
                key,
            )
            with open(os.path.join(staging, "stamp"), "wb") as handle:
                _fsync_file(handle)
            faultinject.stall_point("store_pause", key)
            if os.path.isdir(entry):
                # A concurrent worker already stored this key; its copy
                # is equivalent (same content address), keep it.
                shutil.rmtree(staging)
                return
            try:
                os.rename(staging, entry)
            except OSError:
                shutil.rmtree(staging, ignore_errors=True)
                return
            _fsync_dir(parent)
        except BaseException:
            shutil.rmtree(staging, ignore_errors=True)
            raise
        self._enforce_budget()

    # -- eviction ------------------------------------------------------

    def _enforce_budget(self):
        """Bring the store back under ``capacity_bytes``.

        Victims are chosen by the configured
        :class:`~repro.cache.semantics.ReplacementPolicy` over a
        one-set view of the store: every entry is installed with its
        policy-relevant timestamp (last access for LRU, store time for
        FIFO; Random draws from its seeded stream), then evicted one at
        a time until the footprint fits.  Returns entries evicted.
        """
        if not self.capacity_bytes:
            return 0
        entries = []
        total = 0
        for key, entry in self.entries():
            size = self.entry_size(entry)
            entries.append((key, entry, size))
            total += size
        if total <= self.capacity_bytes or not entries:
            return 0
        from repro.cache.semantics import make_policy

        geometry = _StoreGeometry(
            associativity=len(entries), policy=self.policy, seed=self.seed
        )
        policy = make_policy(geometry)
        policy.reset(geometry)
        by_key = {}
        for key, entry, size in entries:
            by_key[key] = (entry, size)
            policy.install(0, key, self._entry_stamp(entry), 0)
        evicted = 0
        while total > self.capacity_bytes and evicted < len(entries):
            victim_key, _line = policy.evict(0)
            entry, size = by_key[victim_key]
            shutil.rmtree(entry, ignore_errors=True)
            total -= size
            evicted += 1
        self.evicted += evicted
        return evicted

    def _entry_stamp(self, entry):
        """The policy clock for one entry.

        LRU ranks by last access (the ``stamp`` file's mtime, refreshed
        on every hit); FIFO ranks by the install clock, which
        ``_WayPolicy.install`` also takes from this value — for
        freshly-indexed entries that is store time (``stored_at``), so
        both orders are served from one number: last access, falling
        back to store time, falling back to directory mtime.
        """
        if self.policy == "fifo":
            try:
                with open(os.path.join(entry, "meta.json")) as handle:
                    return float(json.load(handle)["stored_at"])
            except (OSError, ValueError, KeyError, TypeError,
                    json.JSONDecodeError):
                pass
        try:
            return os.path.getmtime(os.path.join(entry, "stamp"))
        except OSError:
            try:
                return os.path.getmtime(entry)
            except OSError:
                return 0.0


class _Corrupt(ValueError):
    """Internal: an entry failed an integrity check."""
