"""Content-addressed on-disk cache of compiled programs and traces.

The expensive half of every experiment is invariant across cache
geometries: compiling a benchmark under one annotation configuration
and executing it once on the VM to record the reference trace.  This
module stores exactly that pair — the pickled
:class:`~repro.unified.pipeline.CompiledProgram` and the serialized
:class:`~repro.vm.trace.TraceBuffer` — keyed by the SHA-256 of
``(artifact schema, compiler version, source text, normalized
compilation options)``, so each (benchmark × annotation-config) unit
is compiled and VM-executed exactly once no matter how many sweep
configurations replay it.

Layout under the cache root (``REPRO_ARTIFACT_CACHE`` or
``~/.cache/repro/artifacts``)::

    <key[:2]>/<key>/meta.json     name, output, steps, event count
    <key[:2]>/<key>/program.pkl   pickled CompiledProgram
    <key[:2]>/<key>/trace.bin     serialized TraceBuffer

Entries are written atomically (temp directory + rename), so
concurrent workers racing on the same key produce one winner and no
torn artifacts; a corrupt or truncated entry is treated as a miss and
silently recomputed.  Invalidation is by key only: bump
``ARTIFACT_SCHEMA`` whenever the trace format, the pickle layout, or
any compilation semantics change without a version bump.
"""

import hashlib
import json
import os
import pickle
import shutil
import tempfile

from repro import __version__
from repro.lang.errors import VMError
from repro.unified.pipeline import CompilationOptions, compile_source
from repro.vm.memory import RecordingMemory
from repro.vm.trace import TraceBuffer

#: Bump to invalidate every stored artifact (schema/semantics change).
ARTIFACT_SCHEMA = 1

#: Environment override for the default cache root.
CACHE_ROOT_ENV = "REPRO_ARTIFACT_CACHE"


def default_cache_root():
    root = os.environ.get(CACHE_ROOT_ENV)
    if root:
        return root
    return os.path.join(
        os.path.expanduser("~"), ".cache", "repro", "artifacts"
    )


def options_fingerprint(options):
    """A JSON-stable description of everything that affects codegen."""
    options = options.normalized()
    machine = options.machine
    return {
        "scheme": options.scheme.value,
        "promotion": options.promotion.value,
        "promotion_budget": options.promotion_budget,
        "kill_bits": options.kill_bits,
        "spill_to_cache": options.spill_to_cache,
        "refine_points_to": options.refine_points_to,
        "cache_globals_in_blocks": options.cache_globals_in_blocks,
        "bypass_user_refs": options.bypass_user_refs,
        "merge_true_aliases": options.merge_true_aliases,
        "machine": {
            "num_regs": machine.num_regs,
            "num_arg_regs": machine.num_arg_regs,
            "ret_reg": machine.ret_reg,
            "num_caller_saved": machine.num_caller_saved,
        },
    }


def artifact_key(source, options):
    """The content address of one (source × options) compilation."""
    payload = json.dumps(
        {
            "schema": ARTIFACT_SCHEMA,
            "compiler": __version__,
            "source": source,
            "options": options_fingerprint(options),
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class Artifact:
    """One resolved compile-once/trace-once unit."""

    __slots__ = ("key", "name", "program", "trace", "output", "steps",
                 "from_cache")

    def __init__(self, key, name, program, trace, output, steps, from_cache):
        self.key = key
        self.name = name
        self.program = program
        self.trace = trace
        self.output = output
        self.steps = steps
        self.from_cache = from_cache


class ArtifactCache:
    """Resolve (source × options) units, hitting disk when possible."""

    def __init__(self, root=None):
        self.root = root if root is not None else default_cache_root()
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------

    def resolve(self, name, source, options=None, expected_output=None):
        """Compile and trace ``source`` exactly once.

        On a hit the program, trace, output and step count come back
        from disk; on a miss (or a corrupt entry) the unit is
        recomputed and stored.  ``expected_output`` is enforced on both
        paths, matching ``run_compiled``'s guard.
        """
        options = (options or CompilationOptions()).normalized()
        key = artifact_key(source, options)
        artifact = self._load(key, name)
        if artifact is None:
            artifact = self._compute(key, name, source, options)
            self._store(artifact)
            self.misses += 1
        else:
            self.hits += 1
        if expected_output is not None and artifact.output != tuple(
            expected_output
        ):
            raise VMError(
                "benchmark {} produced {} instead of {}".format(
                    name, list(artifact.output), list(expected_output)
                )
            )
        return artifact

    def clear(self):
        """Delete every stored artifact under this root."""
        if os.path.isdir(self.root):
            shutil.rmtree(self.root)

    # ------------------------------------------------------------------

    def _entry_dir(self, key):
        return os.path.join(self.root, key[:2], key)

    def _compute(self, key, name, source, options):
        program = compile_source(source, options)
        memory = RecordingMemory()
        result = program.run(memory=memory)
        return Artifact(
            key,
            name,
            program,
            memory.buffer,
            tuple(result.output),
            result.steps,
            from_cache=False,
        )

    def _load(self, key, name):
        entry = self._entry_dir(key)
        try:
            with open(os.path.join(entry, "meta.json")) as handle:
                meta = json.load(handle)
            with open(os.path.join(entry, "program.pkl"), "rb") as handle:
                program = pickle.load(handle)
            trace = TraceBuffer.load(os.path.join(entry, "trace.bin"))
            if len(trace) != meta["events"]:
                raise ValueError(
                    "trace holds {} events, meta promises {}".format(
                        len(trace), meta["events"]
                    )
                )
        except (OSError, ValueError, KeyError, pickle.UnpicklingError,
                EOFError, json.JSONDecodeError):
            # Missing or corrupt: treat as a miss, recompute, overwrite.
            return None
        return Artifact(
            key,
            name,
            program,
            trace,
            tuple(meta["output"]),
            meta["steps"],
            from_cache=True,
        )

    def _store(self, artifact):
        entry = self._entry_dir(artifact.key)
        parent = os.path.dirname(entry)
        os.makedirs(parent, exist_ok=True)
        staging = tempfile.mkdtemp(prefix=".staging-", dir=parent)
        try:
            with open(os.path.join(staging, "meta.json"), "w") as handle:
                json.dump(
                    {
                        "schema": ARTIFACT_SCHEMA,
                        "compiler": __version__,
                        "name": artifact.name,
                        "output": list(artifact.output),
                        "steps": artifact.steps,
                        "events": len(artifact.trace),
                    },
                    handle,
                    indent=2,
                    sort_keys=True,
                )
                handle.write("\n")
            with open(os.path.join(staging, "program.pkl"), "wb") as handle:
                pickle.dump(artifact.program, handle,
                            protocol=pickle.HIGHEST_PROTOCOL)
            artifact.trace.save(os.path.join(staging, "trace.bin"))
            if os.path.isdir(entry):
                # A concurrent worker already stored this key; its copy
                # is equivalent (same content address), keep it.
                shutil.rmtree(staging)
                return
            try:
                os.rename(staging, entry)
            except OSError:
                shutil.rmtree(staging, ignore_errors=True)
        except BaseException:
            shutil.rmtree(staging, ignore_errors=True)
            raise
