"""The parallel compile-once/trace-once evaluation engine.

The unit of work is one (benchmark × annotation-config): compiling it
and tracing it on the VM happens exactly once (amortized to zero by
the on-disk :class:`~repro.evalharness.artifacts.ArtifactCache`),
after which any number of cache geometries are scored against the
stored trace through the single-pass multi-configuration replay core.
Units fan out over a :class:`~concurrent.futures.ProcessPoolExecutor`
and merge deterministically: results come back in unit order, failures
are recorded in unit order, and every replay is bit-identical to the
serial ``run_benchmark`` path (the equivalence battery in
``tests/test_parallel_equivalence.py`` holds the engine to that).
"""

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

from repro.errors import failure_record
from repro.evalharness.artifacts import ArtifactCache
from repro.evalharness.experiment import (
    DEFAULT_CACHE,
    evaluate_trace,
    evaluate_trace_multi,
)
from repro.programs import get_benchmark
from repro.unified.pipeline import CompilationOptions, compile_source
from repro.vm.memory import RecordingMemory


@dataclass(frozen=True)
class EvalUnit:
    """One (benchmark × annotation-config) work item.

    ``cache_configs`` lists every geometry to score against the unit's
    single reference trace; one entry uses the reference serial replay
    path, several share the single-pass multi-configuration core.
    """

    name: str
    paper_scale: bool = False
    options: object = None
    cache_configs: tuple = field(default=(DEFAULT_CACHE,))


def evaluate_unit(unit, artifact_cache=None, keep_trace=False):
    """Resolve one unit's artifact and score all its geometries.

    Returns the list of :class:`ExperimentResult`, one per entry of
    ``unit.cache_configs``, in order.

    A single-geometry unit normally scores through the reference
    serial replay (:func:`~repro.evalharness.experiment.evaluate_trace`);
    setting ``REPRO_SWEEP_ENGINE`` routes even that case through the
    sweep dispatcher so CI can force the stack-distance path end to
    end.
    """
    bench = get_benchmark(unit.name, unit.paper_scale)
    options = unit.options or CompilationOptions()
    if artifact_cache is not None:
        artifact = artifact_cache.resolve(
            bench.name,
            bench.source,
            options,
            expected_output=bench.expected_output,
        )
        program = artifact.program
        trace = artifact.trace
        output = artifact.output
        steps = artifact.steps
    else:
        program = compile_source(bench.source, options)
        memory = RecordingMemory()
        result = program.run(memory=memory)
        if tuple(result.output) != tuple(bench.expected_output):
            from repro.lang.errors import VMError

            raise VMError(
                "benchmark {} produced {} instead of {}".format(
                    bench.name, result.output, list(bench.expected_output)
                )
            )
        trace = memory.buffer
        output = tuple(result.output)
        steps = result.steps
    configs = tuple(unit.cache_configs)
    forced_engine = os.environ.get("REPRO_SWEEP_ENGINE")
    if len(configs) == 1 and not forced_engine:
        return [
            evaluate_trace(
                bench.name, program, trace, output, steps,
                cache_config=configs[0], keep_trace=keep_trace,
            )
        ]
    return evaluate_trace_multi(
        bench.name, program, trace, output, steps, configs,
        keep_trace=keep_trace,
    )


def _unit_worker(payload):
    """Top-level worker so ProcessPoolExecutor can pickle it.

    With ``capture`` set the worker converts any failure into a
    :func:`~repro.errors.failure_record`; otherwise the exception
    propagates (the pool re-raises it in the parent), preserving the
    serial harness's error-propagation contract.
    """
    unit, artifact_root, section, capture = payload
    cache = ArtifactCache(artifact_root) if artifact_root else None
    if not capture:
        return "ok", evaluate_unit(unit, artifact_cache=cache)
    try:
        return "ok", evaluate_unit(unit, artifact_cache=cache)
    except Exception as error:  # noqa: BLE001 - serialized as a record
        return "error", failure_record(section, unit.name, error)


def run_units(
    units,
    jobs=None,
    artifact_cache=None,
    failures=None,
    section="evalharness",
):
    """Evaluate every unit; returns one result list per unit, aligned.

    ``jobs`` of ``None``/``0``/``1`` runs in-process (still
    artifact-aware); higher values fan out over a process pool.  With
    ``failures`` (a list), a failing unit contributes ``None`` to the
    output and a :func:`~repro.errors.failure_record` to ``failures``
    (in unit order); without it, the unit's own exception propagates,
    exactly as in the serial harness.
    """
    units = list(units)
    capture = failures is not None
    root = artifact_cache.root if artifact_cache is not None else None
    payloads = [(unit, root, section, capture) for unit in units]
    if not jobs or jobs <= 1:
        outcomes = [_unit_worker(payload) for payload in payloads]
    else:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            outcomes = list(pool.map(_unit_worker, payloads))
    results = []
    for status, value in outcomes:
        if status == "ok":
            results.append(value)
        else:
            failures.append(value)
            results.append(None)
    return results


def pool_map(worker, payloads, jobs=None):
    """Order-preserving fan-out of ``worker`` over ``payloads``.

    The shared fan-out primitive for harness layers that are not
    unit-shaped (sweep batteries, the static-analysis gate): ``jobs``
    of ``None``/``0``/``1`` runs inline, anything higher uses a
    process pool.  ``worker`` must be a module-level function and
    every payload/return value picklable; exceptions are the worker's
    responsibility to catch and encode.
    """
    payloads = list(payloads)
    if not jobs or jobs <= 1:
        return [worker(payload) for payload in payloads]
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        return list(pool.map(worker, payloads))
