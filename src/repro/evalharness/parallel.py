"""The supervised parallel compile-once/trace-once evaluation engine.

The unit of work is one (benchmark × annotation-config): compiling it
and tracing it on the VM happens exactly once (amortized to zero by
the on-disk :class:`~repro.evalharness.artifacts.ArtifactCache`),
after which any number of cache geometries are scored against the
stored trace through the single-pass multi-configuration replay core.
Units fan out over a :class:`~concurrent.futures.ProcessPoolExecutor`
and merge deterministically: results come back in unit order, failures
are recorded in unit order, and every replay is bit-identical to the
serial ``run_benchmark`` path (the equivalence battery in
``tests/test_parallel_equivalence.py`` holds the engine to that).

On top of the deterministic merge sits a *supervisor*
(:class:`Supervisor`): per-unit watchdog timeouts reap hung workers,
transient failures (injected faults, ``OSError``, crashed workers) are
retried a bounded number of times with seeded exponential backoff, a
unit that keeps failing is quarantined — recorded as a
:class:`~repro.errors.WorkerQuarantined` failure, never raised past a
``failures`` collector — and when the pool itself dies more often than
the rebuild budget allows, the remaining units fall back to supervised
serial execution.  A :class:`Journal` checkpoints each completed
unit's outcome to disk so a killed sweep resumes from completed units
bit-identically.  The fault classes themselves live in
:mod:`repro.faultinject`; this module only promises that every one of
them ends in retry-success, quarantine-with-recorded-reason, or serial
fallback — never a wrong result.
"""

import hashlib
import json
import os
import pickle
import struct
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    ProcessPoolExecutor,
    wait,
)
from dataclasses import dataclass, field

from repro import faultinject
from repro.errors import (
    FaultInjected,
    WorkerQuarantined,
    failure_record,
)
from repro.evalharness.artifacts import (
    ARTIFACT_SCHEMA,
    ArtifactCache,
    options_fingerprint,
)
from repro.evalharness.experiment import (
    DEFAULT_CACHE,
    evaluate_trace,
    evaluate_trace_multi,
)
from repro.programs import get_benchmark
from repro.unified.pipeline import CompilationOptions, compile_source
from repro.vm.memory import RecordingMemory

#: Environment overrides for the supervisor defaults.
TIMEOUT_ENV = "REPRO_UNIT_TIMEOUT"
RETRIES_ENV = "REPRO_UNIT_RETRIES"


@dataclass(frozen=True)
class EvalUnit:
    """One (benchmark × annotation-config) work item.

    ``cache_configs`` lists every geometry to score against the unit's
    single reference trace; one entry uses the reference serial replay
    path, several share the single-pass multi-configuration core.
    ``engine`` pins the sweep engine for this unit
    (``auto``/``stackdist``/``vectorized``/``multi``); ``None`` defers
    to ``REPRO_SWEEP_ENGINE`` / auto-selection.  All engines are
    bit-identical (the conformance battery holds them to it), so the
    choice never changes a result — it is deliberately excluded from
    :func:`unit_fingerprint` and journal identity.

    ``hierarchy`` switches the unit from flat geometries to hierarchy
    scoring: each entry is a :func:`~repro.cache.hierarchy.parse_hierarchy`
    spec string (inline ``inclusive``/``bypass=`` tokens welcome),
    ``cache_configs[0]`` supplies the non-geometry base knobs, and the
    unit's results are the ordered
    :meth:`~repro.cache.hierarchy.HierarchyStats.as_dict` rows.
    """

    name: str
    paper_scale: bool = False
    options: object = None
    cache_configs: tuple = field(default=(DEFAULT_CACHE,))
    engine: object = None
    hierarchy: tuple = ()


def unit_fingerprint(unit):
    """A stable content address for one unit's *inputs*.

    Journals key completed outcomes by this, and the fault-injection
    sites key worker-level decisions by it, so a unit keeps its
    identity no matter which process (or which resumed run) evaluates
    it.  ``unit.engine`` is deliberately *not* part of the payload:
    engines are bit-identical, so a journal written under one engine
    resumes correctly under another.
    """
    options = (unit.options or CompilationOptions()).normalized()
    fields = {
        "schema": ARTIFACT_SCHEMA,
        "name": unit.name,
        "paper_scale": bool(unit.paper_scale),
        "options": options_fingerprint(options),
        "cache_configs": [repr(c) for c in unit.cache_configs],
    }
    if unit.hierarchy:
        # Keyed only when present so every pre-hierarchy journal keeps
        # resolving its recorded fingerprints.
        fields["hierarchy"] = list(unit.hierarchy)
    payload = json.dumps(fields, sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def evaluate_unit(unit, artifact_cache=None, keep_trace=False):
    """Resolve one unit's artifact and score all its geometries.

    Returns the list of :class:`ExperimentResult`, one per entry of
    ``unit.cache_configs``, in order.

    A single-geometry unit normally scores through the reference
    serial replay (:func:`~repro.evalharness.experiment.evaluate_trace`);
    setting ``unit.engine`` (the ``--engine`` flag) or
    ``REPRO_SWEEP_ENGINE`` routes even that case through the sweep
    dispatcher so CI can force any engine end to end.  The explicit
    unit field wins over the environment.
    """
    bench = get_benchmark(unit.name, unit.paper_scale)
    options = unit.options or CompilationOptions()
    if artifact_cache is not None:
        artifact = artifact_cache.resolve(
            bench.name,
            bench.source,
            options,
            expected_output=bench.expected_output,
        )
        program = artifact.program
        trace = artifact.trace
        output = artifact.output
        steps = artifact.steps
    else:
        program = compile_source(bench.source, options)
        memory = RecordingMemory()
        result = program.run(memory=memory)
        if tuple(result.output) != tuple(bench.expected_output):
            from repro.lang.errors import VMError

            raise VMError(
                "benchmark {} produced {} instead of {}".format(
                    bench.name, result.output, list(bench.expected_output)
                )
            )
        trace = memory.buffer
        output = tuple(result.output)
        steps = result.steps
    if unit.hierarchy:
        from repro.cache.hierarchy import hierarchy_stats, parse_hierarchy

        base = unit.cache_configs[0] if unit.cache_configs else None
        rows = []
        for spec_text in unit.hierarchy:
            spec = parse_hierarchy(spec_text, base=base)
            row = hierarchy_stats(trace, spec).as_dict()
            row["benchmark"] = unit.name
            rows.append(row)
        return rows
    configs = tuple(unit.cache_configs)
    engine = unit.engine or os.environ.get("REPRO_SWEEP_ENGINE")
    if len(configs) == 1 and not engine:
        return [
            evaluate_trace(
                bench.name, program, trace, output, steps,
                cache_config=configs[0], keep_trace=keep_trace,
            )
        ]
    return evaluate_trace_multi(
        bench.name, program, trace, output, steps, configs,
        keep_trace=keep_trace, engine=engine,
    )


# ----------------------------------------------------------------------
# The supervisor
# ----------------------------------------------------------------------


@dataclass
class Supervisor:
    """Retry/timeout/fallback policy plus an event log of what it did.

    ``timeout`` is the per-unit watchdog in seconds (``None`` disables
    it); ``retries`` is how many *extra* attempts a transiently-failing
    unit gets before quarantine; backoff between attempts is
    ``min(cap, base * 2**attempt)`` scaled by a seeded jitter in
    ``[0.5, 1.5)`` so concurrent retries do not stampede yet every
    schedule replays.  ``rebuilds`` bounds how many times a broken or
    hung pool is rebuilt before the remaining units fall back to
    supervised serial execution.  ``events`` records every supervision
    decision (``retry``, ``timeout``, ``pool-rebuild``,
    ``serial-fallback``, ``quarantine``, ``journal-hit``,
    ``checkpoint``) for tests and post-mortems.
    """

    timeout: object = None
    retries: object = None
    backoff_base: float = 0.05
    backoff_cap: float = 1.0
    seed: int = 0
    rebuilds: int = 3
    tick: float = 0.05
    events: list = field(default_factory=list)

    #: retries used when nothing (argument, env, plan) says otherwise.
    DEFAULT_RETRIES = 2

    @classmethod
    def from_environment(cls):
        timeout = os.environ.get(TIMEOUT_ENV)
        retries = os.environ.get(RETRIES_ENV)
        return cls(
            timeout=float(timeout) if timeout else None,
            retries=int(retries) if retries else None,
        )

    def record(self, event, **info):
        entry = {"event": event}
        entry.update(info)
        self.events.append(entry)

    def count(self, event):
        return sum(1 for entry in self.events if entry["event"] == event)

    # -- effective knobs (an active fault plan can carry overrides) ----

    def effective_timeout(self):
        if self.timeout is not None:
            return self.timeout
        plan = faultinject.active_plan()
        return plan.timeout if plan is not None else None

    def effective_attempts(self):
        retries = self.retries
        if retries is None:
            plan = faultinject.active_plan()
            if plan is not None and plan.retries is not None:
                retries = plan.retries
            else:
                retries = self.DEFAULT_RETRIES
        return max(int(retries), 0) + 1

    def backoff(self, fingerprint, attempt):
        """Seconds to sleep before retry number ``attempt`` (1-based)."""
        base = min(self.backoff_cap, self.backoff_base * (2 ** (attempt - 1)))
        jitter = 0.5 + faultinject.decision_fraction(
            self.seed, "backoff", fingerprint, attempt
        )
        return base * jitter


def _is_transient_error(error):
    """May a retry plausibly clear this failure?

    Injected faults are transient by design; ``OSError`` and broken
    pools model the environment misbehaving.  Anything else —
    a parse error, a differential mismatch, a real pipeline bug — is
    deterministic and retrying it only burns time, so it propagates or
    records exactly as the unsupervised engine did.
    """
    return isinstance(
        error, (FaultInjected, OSError, TimeoutError, BrokenExecutor)
    )


#: Worker failures come back as records in capture mode; classify from
#: the signature the record carries instead of the (gone) exception.
_TRANSIENT_RECORD_TYPES = frozenset(
    {"FaultInjected", "WorkerCrash", "OSError", "TimeoutError"}
)


def _is_transient_record(record):
    return (
        record.get("stage") == "faultinject"
        or record.get("error_type") in _TRANSIENT_RECORD_TYPES
        or record.get("original_type") in _TRANSIENT_RECORD_TYPES
    )


class _UnitTimeout(TimeoutError):
    """A unit overran the watchdog; transient, counted per attempt."""


# ----------------------------------------------------------------------
# The journal
# ----------------------------------------------------------------------


class Journal:
    """Append-only checkpoint log of completed unit outcomes.

    Each frame is ``<u32 length><8-byte sha256 prefix><pickle>`` of
    ``(fingerprint, outcome)``; loading stops at the first torn or
    corrupt frame, so a crash mid-append costs at most the interrupted
    record.  Outcomes are the exact objects ``run_units`` would have
    produced, so a resumed sweep is bit-identical to an uninterrupted
    one.
    """

    MAGIC = b"RPJRNL1\n"

    def __init__(self, path):
        self.path = path
        self.entries = {}
        self.records_written = 0
        self._load()

    def _load(self):
        try:
            with open(self.path, "rb") as handle:
                data = handle.read()
        except OSError:
            return
        if not data.startswith(self.MAGIC):
            return
        offset = len(self.MAGIC)
        while offset + 12 <= len(data):
            (length,) = struct.unpack_from("<I", data, offset)
            digest = data[offset + 4:offset + 12]
            payload = data[offset + 12:offset + 12 + length]
            if len(payload) != length:
                break  # torn tail
            if hashlib.sha256(payload).digest()[:8] != digest:
                break  # corrupt frame; everything after is suspect
            try:
                fingerprint, outcome = pickle.loads(payload)
            except Exception:  # noqa: BLE001 - treat as corruption
                break
            self.entries[fingerprint] = outcome
            offset += 12 + length
        self.records_written = len(self.entries)

    def get(self, fingerprint):
        return self.entries.get(fingerprint)

    def record(self, fingerprint, outcome):
        payload = pickle.dumps(
            (fingerprint, outcome), protocol=pickle.HIGHEST_PROTOCOL
        )
        frame = (
            struct.pack("<I", len(payload))
            + hashlib.sha256(payload).digest()[:8]
            + payload
        )
        fresh = not os.path.exists(self.path)
        with open(self.path, "ab") as handle:
            if fresh or os.path.getsize(self.path) == 0:
                handle.write(self.MAGIC)
            handle.write(frame)
            handle.flush()
            os.fsync(handle.fileno())
        self.entries[fingerprint] = outcome
        self.records_written += 1


# ----------------------------------------------------------------------
# Workers
# ----------------------------------------------------------------------


def _unit_worker(payload):
    """Top-level worker so ProcessPoolExecutor can pickle it.

    With ``capture`` set the worker converts any failure into a
    :func:`~repro.errors.failure_record`; otherwise the exception
    propagates (the pool re-raises it in the parent), preserving the
    serial harness's error-propagation contract.  ``attempt`` keys the
    injected worker faults so a retry replays the *next* decision in
    the plan's stream no matter which process hosts it; ``in_pool``
    tells the crash site whether ``os._exit`` has a pool to break.
    """
    (unit, artifact_root, section, capture, fingerprint, attempt,
     in_pool) = payload
    cache = ArtifactCache(artifact_root) if artifact_root else None
    if not capture:
        faultinject.crash_point(fingerprint, attempt, allow_exit=in_pool)
        return "ok", evaluate_unit(unit, artifact_cache=cache)
    try:
        faultinject.crash_point(fingerprint, attempt, allow_exit=in_pool)
        return "ok", evaluate_unit(unit, artifact_cache=cache)
    except Exception as error:  # noqa: BLE001 - serialized as a record
        return "error", failure_record(section, unit.name, error)


def _quarantine_outcome(section, unit, attempts, last):
    """The recorded (never raised) outcome of an exhausted unit."""
    if isinstance(last, dict):
        summary = "{} (stage {}): {}".format(
            last.get("error_type"), last.get("stage"), last.get("message")
        )
        cause = FaultInjected(summary)
        cause.stage = last.get("stage", "faultinject")
    else:
        cause = last
    return "error", failure_record(
        section, unit.name, WorkerQuarantined(unit.name, attempts, cause)
    )


# ----------------------------------------------------------------------
# run_units
# ----------------------------------------------------------------------


def run_units(
    units,
    jobs=None,
    artifact_cache=None,
    failures=None,
    section="evalharness",
    supervisor=None,
    journal=None,
):
    """Evaluate every unit; returns one result list per unit, aligned.

    ``jobs`` of ``None``/``0``/``1`` runs in-process (still
    artifact-aware and supervised); higher values fan out over a
    process pool under the watchdog.  With ``failures`` (a list), a
    failing unit contributes ``None`` to the output and a
    :func:`~repro.errors.failure_record` to ``failures`` (in unit
    order) — a unit that exhausts its retry budget on *transient*
    failures is recorded as :class:`~repro.errors.WorkerQuarantined`;
    without it, the unit's own exception (or the quarantine) propagates,
    exactly as in the serial harness.  ``journal`` (a path or
    :class:`Journal`) checkpoints completed outcomes; a rerun with the
    same journal skips completed units and reproduces their results
    bit-identically.  ``KeyboardInterrupt`` cancels outstanding work
    promptly and propagates.
    """
    units = list(units)
    capture = failures is not None
    sup = supervisor if supervisor is not None else Supervisor.from_environment()
    if isinstance(journal, str):
        journal = Journal(journal)
    root = artifact_cache.root if artifact_cache is not None else None
    fingerprints = [unit_fingerprint(unit) for unit in units]
    outcomes = [None] * len(units)
    pending = []
    for index, fingerprint in enumerate(fingerprints):
        cached = journal.get(fingerprint) if journal is not None else None
        if cached is not None:
            outcomes[index] = cached
            sup.record("journal-hit", item=units[index].name)
        else:
            pending.append(index)

    def payload_for(index, attempt, in_pool):
        return (
            units[index], root, section, capture,
            fingerprints[index], attempt, in_pool,
        )

    def checkpoint(index, outcome):
        outcomes[index] = outcome
        if journal is not None:
            journal.record(fingerprints[index], outcome)
            sup.record("checkpoint", item=units[index].name)
            faultinject.interrupt_point(journal.records_written)

    if pending:
        if not jobs or jobs <= 1:
            for index in pending:
                checkpoint(
                    index,
                    _run_one_serial(
                        units[index], fingerprints[index], payload_for,
                        index, sup, capture, section,
                    ),
                )
        else:
            _run_pool(
                pending, units, fingerprints, payload_for, checkpoint,
                jobs, sup, capture, section,
            )

    results = []
    for status, value in outcomes:
        if status == "ok":
            results.append(value)
        else:
            failures.append(value)
            results.append(None)
    return results


def _run_one_serial(unit, fingerprint, payload_for, index, sup, capture,
                    section):
    """Supervised in-process evaluation of one unit.

    The watchdog cannot preempt in-process work, so only the
    retry/quarantine half of the policy applies here; it is also the
    fallback lane when the pool dies.
    """
    attempts = sup.effective_attempts()
    attempt = 0
    while True:
        try:
            status, value = _unit_worker(payload_for(index, attempt, False))
        except Exception as error:  # noqa: BLE001 - classified below
            if not _is_transient_error(error):
                raise
            attempt += 1
            if attempt < attempts:
                sup.record("retry", item=unit.name, attempt=attempt,
                           error=type(error).__name__)
                time.sleep(sup.backoff(fingerprint, attempt))
                continue
            sup.record("quarantine", item=unit.name, attempts=attempt)
            if capture:
                return _quarantine_outcome(section, unit, attempt, error)
            raise WorkerQuarantined(unit.name, attempt, error) from error
        if status == "error" and _is_transient_record(value):
            attempt += 1
            if attempt < attempts:
                sup.record("retry", item=unit.name, attempt=attempt,
                           error=value.get("error_type"))
                time.sleep(sup.backoff(fingerprint, attempt))
                continue
            sup.record("quarantine", item=unit.name, attempts=attempt)
            return _quarantine_outcome(section, unit, attempt, value)
        return status, value


def _run_pool(pending, units, fingerprints, payload_for, checkpoint, jobs,
              sup, capture, section):
    """Supervised pool execution of the pending unit indices.

    Hung workers (no completion within the watchdog timeout) and
    broken pools are handled the same way: the pool is abandoned and
    rebuilt, affected in-flight units are charged one attempt, and
    unstarted units resubmit free of charge.  When the rebuild budget
    runs out the remaining units finish on the supervised serial lane.
    """
    attempts = sup.effective_attempts()
    timeout = sup.effective_timeout()
    attempt_no = {index: 0 for index in pending}
    queue = list(pending)
    resubmit_at = {}
    rebuilds = 0
    pool = ProcessPoolExecutor(max_workers=jobs)
    futures = {}
    running_since = {}

    def submit_ready():
        now = time.monotonic()
        held = []
        for index in queue:
            if resubmit_at.get(index, 0.0) > now:
                held.append(index)
                continue
            future = pool.submit(
                _unit_worker, payload_for(index, attempt_no[index], True)
            )
            futures[future] = index
        queue[:] = held

    def charge_attempt(index, label, detail):
        """One failed attempt; retry, or quarantine/fall to caller."""
        attempt_no[index] += 1
        if attempt_no[index] < attempts:
            sup.record("retry", item=units[index].name,
                       attempt=attempt_no[index], error=label)
            resubmit_at[index] = time.monotonic() + sup.backoff(
                fingerprints[index], attempt_no[index]
            )
            queue.append(index)
            return None
        sup.record("quarantine", item=units[index].name,
                   attempts=attempt_no[index])
        return _quarantine_outcome(
            section, units[index], attempt_no[index], detail
        )

    def rebuild(reason):
        nonlocal pool, rebuilds
        rebuilds += 1
        pool.shutdown(wait=False, cancel_futures=True)
        running_since.clear()
        if rebuilds > sup.rebuilds:
            return False
        sup.record("pool-rebuild", reason=reason, rebuild=rebuilds)
        pool = ProcessPoolExecutor(max_workers=jobs)
        return True

    try:
        while queue or futures:
            submit_ready()
            if not futures:
                # Everything runnable is backing off; sleep to the
                # earliest resubmit time instead of spinning.
                if queue:
                    now = time.monotonic()
                    soonest = min(
                        resubmit_at.get(index, now) for index in queue
                    )
                    time.sleep(max(0.0, min(soonest - now, sup.backoff_cap)))
                continue
            done, _ = wait(
                list(futures), timeout=sup.tick,
                return_when=FIRST_COMPLETED,
            )
            now = time.monotonic()
            for future in list(futures):
                if future not in done and future not in running_since \
                        and future.running():
                    running_since[future] = now
            broken_indices = []
            broken_error = None
            for future in done:
                index = futures.pop(future)
                running_since.pop(future, None)
                try:
                    status, value = future.result()
                except BrokenExecutor as error:
                    broken_indices.append(index)
                    broken_error = error
                    continue
                except Exception as error:  # noqa: BLE001
                    if not _is_transient_error(error):
                        raise
                    outcome = charge_attempt(
                        index, type(error).__name__, error
                    )
                    if outcome is not None:
                        if not capture:
                            raise WorkerQuarantined(
                                units[index].name, attempt_no[index], error
                            ) from error
                        checkpoint(index, outcome)
                    continue
                if status == "error" and _is_transient_record(value):
                    outcome = charge_attempt(
                        index, value.get("error_type"), value
                    )
                    if outcome is not None:
                        checkpoint(index, outcome)
                    continue
                checkpoint(index, (status, value))
            if broken_indices:
                # The pool died: every unit whose future surfaced the
                # breakage is charged an attempt (the guilty one cannot
                # be told apart); in-flight units whose futures were
                # still pending resubmit free.
                for index in broken_indices:
                    outcome = charge_attempt(
                        index, "BrokenProcessPool", broken_error
                    )
                    if outcome is not None:
                        if not capture:
                            raise WorkerQuarantined(
                                units[index].name, attempt_no[index],
                                broken_error,
                            ) from broken_error
                        checkpoint(index, outcome)
                queue.extend(futures.values())
                futures.clear()
                if not rebuild("broken-pool"):
                    break
                continue
            if timeout is not None and running_since:
                hung = [
                    future for future, since in running_since.items()
                    if now - since > timeout
                ]
                if hung:
                    # A worker is stuck past the watchdog.  The pool
                    # gives no way to reap one worker, so abandon it:
                    # hung units are charged a (timeout) attempt, the
                    # rest of the in-flight set resubmits free.
                    for future in hung:
                        index = futures.pop(future)
                        sup.record("timeout", item=units[index].name)
                        outcome = charge_attempt(
                            index, "timeout",
                            _UnitTimeout(
                                "unit {} exceeded the {:.3g}s watchdog"
                                .format(units[index].name, timeout)
                            ),
                        )
                        if outcome is not None:
                            if not capture:
                                raise WorkerQuarantined(
                                    units[index].name, attempt_no[index],
                                    _UnitTimeout(units[index].name),
                                )
                            checkpoint(index, outcome)
                    queue.extend(futures.values())
                    futures.clear()
                    if not rebuild("hung-worker"):
                        break
        else:
            pool.shutdown()
            return
        # The while-else did not run: the rebuild budget is spent.
        # Finish the remaining units on the supervised serial lane.
        pool.shutdown(wait=False, cancel_futures=True)
        remaining = sorted(set(queue) | set(futures.values()))
        sup.record("serial-fallback", remaining=len(remaining))
        for index in remaining:
            checkpoint(
                index,
                _run_one_serial(
                    units[index], fingerprints[index], payload_for, index,
                    sup, capture, section,
                ),
            )
    except BaseException:
        # KeyboardInterrupt (user or injected) and fatal errors both
        # cancel outstanding futures promptly instead of waiting out
        # in-flight units.
        pool.shutdown(wait=False, cancel_futures=True)
        raise


def pool_map(worker, payloads, jobs=None):
    """Order-preserving fan-out of ``worker`` over ``payloads``.

    The shared fan-out primitive for harness layers that are not
    unit-shaped (sweep batteries, the static-analysis gate): ``jobs``
    of ``None``/``0``/``1`` runs inline, anything higher uses a
    process pool.  ``worker`` must be a module-level function and
    every payload/return value picklable; exceptions are the worker's
    responsibility to catch and encode.  ``KeyboardInterrupt`` cancels
    the outstanding futures and propagates immediately instead of
    draining the queue.
    """
    payloads = list(payloads)
    if not jobs or jobs <= 1:
        return [worker(payload) for payload in payloads]
    pool = ProcessPoolExecutor(max_workers=jobs)
    try:
        futures = [pool.submit(worker, payload) for payload in payloads]
        results = [future.result() for future in futures]
    except BaseException:
        pool.shutdown(wait=False, cancel_futures=True)
        raise
    pool.shutdown()
    return results
