"""Combined instruction + data cache experiment.

The unified model's reference taxonomy (paper Section 4.2, Figure 4)
has three classes: unambiguous data (registers + bypass), ambiguous
data (cache), and **instructions** (cache — "most computers do not
have an execute-register instruction", Section 2.3).  In a combined
I+D cache, the abstract's claim that "cache space is wasted to hold
inaccessible copies of values in registers" has a measurable dual:
bypassing the unambiguous data references frees lines that instruction
words then occupy, so the *instruction* hit rate improves even though
the unified model never touches how instructions are cached.

This module records a combined trace (one event per instruction fetch,
interleaved with the data references it causes) and replays it through
one shared cache, keeping per-class statistics.
"""

from dataclasses import dataclass

from repro.cache.cache import Cache, CacheConfig
from repro.evalharness.figure5 import figure5_options
from repro.programs import get_benchmark
from repro.unified.pipeline import compile_source
from repro.vm.memory import RecordingMemory
from repro.vm.trace import (
    FLAG_BYPASS,
    FLAG_INSTRUCTION,
    FLAG_KILL,
    FLAG_WRITE,
)


@dataclass
class SplitStats:
    """Hit/miss accounting split by reference class."""

    i_refs: int = 0
    i_hits: int = 0
    d_refs: int = 0
    d_hits: int = 0
    d_bypassed: int = 0

    @property
    def i_hit_rate(self):
        return self.i_hits / self.i_refs if self.i_refs else 0.0

    @property
    def d_hit_rate(self):
        cached = self.d_refs - self.d_bypassed
        return self.d_hits / cached if cached else 0.0


def record_combined_trace(name, paper_scale=False, options=None):
    """Execute one benchmark recording instructions and data together."""
    bench = get_benchmark(name, paper_scale)
    program = compile_source(bench.source, options or figure5_options())
    memory = RecordingMemory()
    buffer = memory.buffer

    def ifetch(address):
        buffer.append(address, FLAG_INSTRUCTION)

    vm = program.machine(memory=memory, instruction_sink=ifetch)
    result = vm.run()
    assert tuple(result.output) == bench.expected_output
    return buffer, program


def replay_combined(trace, config=None, honor_annotations=True, **kwargs):
    """Replay a combined trace through one shared cache.

    Instruction events are plain cached reads; data events carry their
    bypass/kill annotations (ignored when ``honor_annotations`` is
    False, giving the conventional baseline).
    """
    if config is None:
        config = CacheConfig(**kwargs)
    cache = Cache(config)
    split = SplitStats()
    access = cache.access
    for address, flags in trace:
        if flags & FLAG_INSTRUCTION:
            split.i_refs += 1
            if access(address, False) == "hit":
                split.i_hits += 1
            continue
        split.d_refs += 1
        bypass = honor_annotations and bool(flags & FLAG_BYPASS)
        kill = honor_annotations and bool(flags & FLAG_KILL)
        outcome = access(address, bool(flags & FLAG_WRITE), bypass, kill)
        if outcome == "hit":
            split.d_hits += 1
        elif outcome == "bypass":
            split.d_bypassed += 1
    return split, cache.stats


def unified_cache_comparison(name, size_words=256, associativity=4,
                             paper_scale=False, options=None):
    """Unified-vs-conventional on one shared I+D cache; returns a dict."""
    trace, _program = record_combined_trace(name, paper_scale, options)
    config = CacheConfig(size_words=size_words, associativity=associativity)
    unified, unified_stats = replay_combined(trace, config)
    conventional, conventional_stats = replay_combined(
        trace, config, honor_annotations=False
    )
    return {
        "benchmark": name,
        "size_words": size_words,
        "i_refs": unified.i_refs,
        "d_refs": unified.d_refs,
        "unified_i_hit_rate": unified.i_hit_rate,
        "conventional_i_hit_rate": conventional.i_hit_rate,
        "unified_d_hit_rate": unified.d_hit_rate,
        "conventional_d_hit_rate": conventional.d_hit_rate,
        "unified_bus_words": unified_stats.bus_words,
        "conventional_bus_words": conventional_stats.bus_words,
    }
