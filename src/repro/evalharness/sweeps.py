"""Ablation sweeps for the design decisions called out in DESIGN.md.

Every function returns a list of plain dict rows so the pytest
benchmarks and the examples can both render or assert on them.
"""

from repro.cache.cache import CacheConfig
from repro.cache.replay import replay_trace
from repro.evalharness.experiment import DEFAULT_CACHE, run_benchmark
from repro.programs import BENCHMARK_NAMES, get_benchmark
from repro.unified.pipeline import CompilationOptions, compile_source
from repro.vm.memory import RecordingMemory


def _trace_for(name, paper_scale=False, options=None):
    """Compile + run once, returning the annotated trace.

    Defaults to the Figure 5 configuration so every sweep measures the
    same reference stream the headline experiment uses.
    """
    from repro.evalharness.figure5 import figure5_options

    bench = get_benchmark(name, paper_scale)
    program = compile_source(bench.source, options or figure5_options())
    memory = RecordingMemory()
    result = program.run(memory=memory)
    assert tuple(result.output) == bench.expected_output, (
        name, result.output, bench.expected_output)
    return memory.buffer, program


def _variant(config, **overrides):
    values = {
        "size_words": config.size_words,
        "line_words": config.line_words,
        "associativity": config.associativity,
        "policy": config.policy,
        "honor_bypass": config.honor_bypass,
        "honor_kill": config.honor_kill,
        "kill_mode": config.kill_mode,
        "write_policy": config.write_policy,
        "allocate_on_write": config.allocate_on_write,
        "seed": config.seed,
    }
    values.update(overrides)
    return CacheConfig(**values)


def cache_size_sweep(
    name,
    sizes=(64, 128, 256, 512, 1024, 4096),
    base=DEFAULT_CACHE,
    paper_scale=False,
    options=None,
):
    """Unified-vs-conventional across cache sizes (Section 2.2)."""
    trace, _program = _trace_for(name, paper_scale, options)
    rows = []
    for size in sizes:
        unified = replay_trace(trace, _variant(base, size_words=size))
        baseline = replay_trace(
            trace,
            _variant(base, size_words=size, honor_bypass=False,
                     honor_kill=False),
        )
        rows.append(
            {
                "benchmark": name,
                "size_words": size,
                "unified_miss_rate": unified.miss_rate,
                "conventional_miss_rate": baseline.miss_rate,
                "cache_traffic_reduction":
                    unified.cache_traffic_reduction_vs(baseline),
                "bus_traffic_reduction":
                    unified.bus_traffic_reduction_vs(baseline),
            }
        )
    return rows


def policy_ablation(
    name,
    policies=("lru", "fifo", "random", "min"),
    base=DEFAULT_CACHE,
    paper_scale=False,
    options=None,
):
    """The dead-line modification applied to each policy (Section 3.2)."""
    trace, _program = _trace_for(name, paper_scale, options)
    rows = []
    for policy in policies:
        for honor_kill in (True, False):
            if policy == "min":
                stats = replay_trace(
                    trace,
                    policy="min",
                    size_words=base.size_words,
                    line_words=base.line_words,
                    associativity=base.associativity,
                    honor_kill=honor_kill,
                )
            else:
                stats = replay_trace(
                    trace, _variant(base, policy=policy, honor_kill=honor_kill)
                )
            rows.append(
                {
                    "benchmark": name,
                    "policy": policy,
                    "kill_bits": honor_kill,
                    "miss_rate": stats.miss_rate,
                    "misses": stats.misses,
                    "writebacks": stats.writebacks,
                    "dead_drops": stats.dead_drops,
                    "bus_words": stats.bus_words,
                }
            )
    return rows


def kill_bit_ablation(name, base=DEFAULT_CACHE, paper_scale=False,
                      sizes=(32, 64, 128, 256), options=None):
    """Kill bits on/off and invalidate-vs-demote (Section 3.2).

    Small caches make the LRU-decay waste visible: without kill bits a
    dead line occupies a slot for O(associativity) further misses.
    """
    trace, _program = _trace_for(name, paper_scale, options)
    rows = []
    for size in sizes:
        for mode in ("invalidate", "demote", "off"):
            config = _variant(
                base,
                size_words=size,
                honor_kill=mode != "off",
                kill_mode=mode if mode != "off" else "invalidate",
            )
            stats = replay_trace(trace, config)
            rows.append(
                {
                    "benchmark": name,
                    "size_words": size,
                    "kill_mode": mode,
                    "miss_rate": stats.miss_rate,
                    "misses": stats.misses,
                    "writebacks": stats.writebacks,
                    "dead_drops": stats.dead_drops,
                    "dead_line_frees": stats.dead_line_frees,
                    "bus_words": stats.bus_words,
                }
            )
    return rows


#: A kernel with twenty simultaneously-live values: graph coloring must
#: spill on any realistic register file.  The benchmark programs'
#: functions are all small enough to color without spilling, so the
#: spill experiment needs its own workload.
SPILL_KERNEL = """
int main() {
    int a; int b; int c; int d; int e; int f; int g; int h;
    int i; int j; int k; int l; int m; int n; int o; int p;
    int q; int r; int s; int t;
    int round;
    for (round = 0; round < 200; round++) {
        a = round + 1;  b = a + 1;  c = b + 1;  d = c + 1;
        e = d + 1;      f = e + 1;  g = f + 1;  h = g + 1;
        i = h + 1;      j = i + 1;  k = j + 1;  l = k + 1;
        m = l + 1;      n = m + 1;  o = n + 1;  p = o + 1;
        q = p + 1;      r = q + 1;  s = r + 1;  t = s + 1;
        print(a + b + c + d + e + f + g + h + i + j
              + k + l + m + n + o + p + q + r + s + t
              + a * t + b * s + c * r + d * q + e * p
              + f * o + g * n + h * m + i * l + j * k);
    }
    return 0;
}
"""


def spill_ablation(name="pressure-kernel", base=DEFAULT_CACHE,
                   paper_scale=False, num_regs=8):
    """Spill-to-cache vs spill-bypass (Section 4.2).

    Compiles for a small register file (default 8 registers) with
    aggressive promotion so graph coloring genuinely spills, then
    routes the spill/save traffic through the cache (the paper's
    choice) or around it.  ``name`` may be a benchmark name or the
    default built-in pressure kernel.
    """
    from repro.ir.instructions import MachineConfig

    machine = MachineConfig(num_regs=num_regs,
                            num_caller_saved=num_regs // 2)
    if name == "pressure-kernel":
        source = SPILL_KERNEL
    else:
        source = get_benchmark(name, paper_scale).source
    rows = []
    for spill_to_cache in (True, False):
        options = CompilationOptions(
            scheme="unified",
            promotion="aggressive",
            machine=machine,
            spill_to_cache=spill_to_cache,
        )
        program = compile_source(source, options)
        memory = RecordingMemory()
        program.run(memory=memory)
        stats = replay_trace(memory.buffer, base)
        summary = memory.buffer.summary()
        rows.append(
            {
                "benchmark": name,
                "spill_to_cache": spill_to_cache,
                "refs_cached": stats.refs_cached,
                "refs_bypassed": stats.refs_bypassed,
                "miss_rate": stats.miss_rate,
                "bus_words": stats.bus_words,
                "spill_refs": summary["by_origin"]["spill"],
                "save_refs": summary["by_origin"]["callee_save"],
            }
        )
    return rows


def promotion_ablation(name, base=DEFAULT_CACHE, paper_scale=False,
                       levels=("none", "modest", "aggressive")):
    """Classification fractions vs allocator aggressiveness."""
    rows = []
    for level in levels:
        options = CompilationOptions(scheme="unified", promotion=level)
        result = run_benchmark(
            name, paper_scale=paper_scale, options=options, cache_config=base
        )
        rows.append(
            {
                "benchmark": name,
                "promotion": level,
                "static_percent_unambiguous":
                    result.static_percent_unambiguous,
                "dynamic_percent_unambiguous":
                    result.dynamic_percent_unambiguous,
                "cache_traffic_reduction": result.cache_traffic_reduction,
                "dynamic_refs": result.dynamic["total"],
                "steps": result.steps,
            }
        )
    return rows


def all_benchmarks_sweep(sweep, names=BENCHMARK_NAMES, failures=None, **kwargs):
    """Apply one of the sweeps above to every benchmark.

    With ``failures`` (a list), a benchmark that breaks is recorded
    there and skipped instead of aborting the whole sweep; without it,
    errors propagate.
    """
    from repro.errors import failure_record

    rows = []
    for name in names:
        try:
            rows.extend(sweep(name, **kwargs))
        except Exception as error:  # noqa: BLE001 - recorded, reported
            if failures is None:
                raise
            failures.append(
                failure_record(getattr(sweep, "__name__", "sweep"), name, error)
            )
    return rows
