"""Ablation sweeps for the design decisions called out in DESIGN.md.

Every function returns a list of plain dict rows so the pytest
benchmarks and the examples can both render or assert on them.

Each sweep obtains its reference trace once (compile + VM run, or an
:class:`~repro.evalharness.artifacts.ArtifactCache` hit) and scores
every configuration of the battery through the single-pass
sweep dispatcher (:func:`~repro.cache.stackdist.replay_trace_sweep`):
LRU geometries share one stack-distance profiling pass per flavor,
everything else runs the single-pass multi-replay core
(:func:`~repro.cache.replay.replay_trace_multi`) — either way the
per-configuration cost is far below a full compile-run-replay
pipeline.
"""

from repro.cache.cache import CacheConfig
from repro.cache.hierarchy import hierarchy_stats, parse_hierarchy
from repro.cache.replay import MinConfig, replay_trace
from repro.cache.stackdist import replay_trace_sweep
from repro.evalharness.experiment import DEFAULT_CACHE, run_benchmark
from repro.programs import BENCHMARK_NAMES, get_benchmark
from repro.unified.pipeline import CompilationOptions, compile_source
from repro.vm.memory import RecordingMemory


def _trace_for(name, paper_scale=False, options=None, artifact_cache=None):
    """Compile + run once, returning the annotated trace.

    Defaults to the Figure 5 configuration so every sweep measures the
    same reference stream the headline experiment uses.  With
    ``artifact_cache`` the compile and VM run resolve through the
    on-disk artifact store instead.
    """
    from repro.evalharness.figure5 import figure5_options

    bench = get_benchmark(name, paper_scale)
    options = options or figure5_options()
    if artifact_cache is not None:
        artifact = artifact_cache.resolve(
            bench.name, bench.source, options,
            expected_output=bench.expected_output,
        )
        return artifact.trace, artifact.program
    program = compile_source(bench.source, options)
    memory = RecordingMemory()
    result = program.run(memory=memory)
    assert tuple(result.output) == bench.expected_output, (
        name, result.output, bench.expected_output)
    return memory.buffer, program


def _variant(config, **overrides):
    values = {
        "size_words": config.size_words,
        "line_words": config.line_words,
        "associativity": config.associativity,
        "policy": config.policy,
        "honor_bypass": config.honor_bypass,
        "honor_kill": config.honor_kill,
        "kill_mode": config.kill_mode,
        "write_policy": config.write_policy,
        "allocate_on_write": config.allocate_on_write,
        "seed": config.seed,
    }
    values.update(overrides)
    return CacheConfig(**values)


def cache_size_sweep(
    name,
    sizes=(64, 128, 256, 512, 1024, 4096),
    base=DEFAULT_CACHE,
    paper_scale=False,
    options=None,
    artifact_cache=None,
):
    """Unified-vs-conventional across cache sizes (Section 2.2)."""
    trace, _program = _trace_for(name, paper_scale, options, artifact_cache)
    specs = []
    for size in sizes:
        specs.append(_variant(base, size_words=size))
        specs.append(
            _variant(base, size_words=size, honor_bypass=False,
                     honor_kill=False)
        )
    stats = replay_trace_sweep(trace, specs)
    rows = []
    for index, size in enumerate(sizes):
        unified = stats[2 * index]
        baseline = stats[2 * index + 1]
        rows.append(
            {
                "benchmark": name,
                "size_words": size,
                "unified_miss_rate": unified.miss_rate,
                "conventional_miss_rate": baseline.miss_rate,
                "cache_traffic_reduction":
                    unified.cache_traffic_reduction_vs(baseline),
                "bus_traffic_reduction":
                    unified.bus_traffic_reduction_vs(baseline),
            }
        )
    return rows


def policy_ablation(
    name,
    policies=("lru", "fifo", "random", "min"),
    base=DEFAULT_CACHE,
    paper_scale=False,
    options=None,
    artifact_cache=None,
):
    """The dead-line modification applied to each policy (Section 3.2)."""
    trace, _program = _trace_for(name, paper_scale, options, artifact_cache)
    cells = []
    specs = []
    for policy in policies:
        for honor_kill in (True, False):
            if policy == "min":
                specs.append(
                    MinConfig(
                        size_words=base.size_words,
                        line_words=base.line_words,
                        associativity=base.associativity,
                        honor_kill=honor_kill,
                    )
                )
            else:
                specs.append(
                    _variant(base, policy=policy, honor_kill=honor_kill)
                )
            cells.append((policy, honor_kill))
    all_stats = replay_trace_sweep(trace, specs)
    rows = []
    for (policy, honor_kill), stats in zip(cells, all_stats):
        rows.append(
            {
                "benchmark": name,
                "policy": policy,
                "kill_bits": honor_kill,
                "miss_rate": stats.miss_rate,
                "misses": stats.misses,
                "writebacks": stats.writebacks,
                "dead_drops": stats.dead_drops,
                "bus_words": stats.bus_words,
            }
        )
    return rows


#: The E17 policy zoo: the paper's baseline plus the predictive
#: lineage (docs/POLICIES.md).  BRRIP rides along inside DRRIP.
ZOO_POLICIES = ("lru", "srrip", "drrip", "ship", "hawkeye")

#: The zoo members that predict reuse in hardware (everything but the
#: LRU baseline) — the "prediction alone" side of the E17 headline.
ZOO_PREDICTIVE = ("srrip", "drrip", "ship", "hawkeye")

#: E17's geometry, shared with the golden pin and the cost benchmark:
#: at 64 words / 4-way every benchmark outgrows the cache, so
#: replacement decisions (and the compiler's kill bits) have real
#: work to do; at the 256-word default the policies barely separate.
ZOO_GEOMETRY = CacheConfig(size_words=64, line_words=1, associativity=4)


def policy_zoo_sweep(
    name,
    policies=ZOO_POLICIES,
    base=DEFAULT_CACHE,
    paper_scale=False,
    options=None,
    artifact_cache=None,
):
    """E17: hardware reuse prediction vs. compiler reuse knowledge.

    Each policy replays the same annotated trace twice: once
    *conventional* (annotation bits ignored — prediction alone) and
    once *unified* (bypass and kill honored — prediction plus the
    compiler's liveness).  One :func:`replay_trace_sweep` call scores
    the whole grid; the LRU pairs ride the one-pass engines while the
    predictive policies take the multi-replay fallback.
    """
    trace, _program = _trace_for(name, paper_scale, options, artifact_cache)
    cells = []
    specs = []
    for policy in policies:
        for scheme in ("conventional", "unified"):
            honor = scheme == "unified"
            specs.append(
                _variant(
                    base, policy=policy,
                    honor_bypass=honor, honor_kill=honor,
                )
            )
            cells.append((policy, scheme))
    all_stats = replay_trace_sweep(trace, specs)
    rows = []
    for (policy, scheme), stats in zip(cells, all_stats):
        rows.append(
            {
                "benchmark": name,
                "policy": policy,
                "scheme": scheme,
                "hit_rate": stats.hit_rate,
                "miss_rate": stats.miss_rate,
                "hits": stats.hits,
                "misses": stats.misses,
                "refs_cached": stats.refs_cached,
                "dead_drops": stats.dead_drops,
                "bus_words": stats.bus_words,
            }
        )
    return rows


def kill_bit_ablation(name, base=DEFAULT_CACHE, paper_scale=False,
                      sizes=(32, 64, 128, 256), options=None,
                      artifact_cache=None):
    """Kill bits on/off and invalidate-vs-demote (Section 3.2).

    Small caches make the LRU-decay waste visible: without kill bits a
    dead line occupies a slot for O(associativity) further misses.
    """
    trace, _program = _trace_for(name, paper_scale, options, artifact_cache)
    cells = []
    specs = []
    for size in sizes:
        for mode in ("invalidate", "demote", "off"):
            specs.append(
                _variant(
                    base,
                    size_words=size,
                    honor_kill=mode != "off",
                    kill_mode=mode if mode != "off" else "invalidate",
                )
            )
            cells.append((size, mode))
    all_stats = replay_trace_sweep(trace, specs)
    rows = []
    for (size, mode), stats in zip(cells, all_stats):
        rows.append(
            {
                "benchmark": name,
                "size_words": size,
                "kill_mode": mode,
                "miss_rate": stats.miss_rate,
                "misses": stats.misses,
                "writebacks": stats.writebacks,
                "dead_drops": stats.dead_drops,
                "dead_line_frees": stats.dead_line_frees,
                "bus_words": stats.bus_words,
            }
        )
    return rows


#: A kernel with twenty simultaneously-live values: graph coloring must
#: spill on any realistic register file.  The benchmark programs'
#: functions are all small enough to color without spilling, so the
#: spill experiment needs its own workload.
SPILL_KERNEL = """
int main() {
    int a; int b; int c; int d; int e; int f; int g; int h;
    int i; int j; int k; int l; int m; int n; int o; int p;
    int q; int r; int s; int t;
    int round;
    for (round = 0; round < 200; round++) {
        a = round + 1;  b = a + 1;  c = b + 1;  d = c + 1;
        e = d + 1;      f = e + 1;  g = f + 1;  h = g + 1;
        i = h + 1;      j = i + 1;  k = j + 1;  l = k + 1;
        m = l + 1;      n = m + 1;  o = n + 1;  p = o + 1;
        q = p + 1;      r = q + 1;  s = r + 1;  t = s + 1;
        print(a + b + c + d + e + f + g + h + i + j
              + k + l + m + n + o + p + q + r + s + t
              + a * t + b * s + c * r + d * q + e * p
              + f * o + g * n + h * m + i * l + j * k);
    }
    return 0;
}
"""


def spill_ablation(name="pressure-kernel", base=DEFAULT_CACHE,
                   paper_scale=False, num_regs=8, artifact_cache=None):
    """Spill-to-cache vs spill-bypass (Section 4.2).

    Compiles for a small register file (default 8 registers) with
    aggressive promotion so graph coloring genuinely spills, then
    routes the spill/save traffic through the cache (the paper's
    choice) or around it.  ``name`` may be a benchmark name or the
    default built-in pressure kernel.
    """
    from repro.ir.instructions import MachineConfig

    machine = MachineConfig(num_regs=num_regs,
                            num_caller_saved=num_regs // 2)
    if name == "pressure-kernel":
        source = SPILL_KERNEL
    else:
        source = get_benchmark(name, paper_scale).source
    rows = []
    for spill_to_cache in (True, False):
        options = CompilationOptions(
            scheme="unified",
            promotion="aggressive",
            machine=machine,
            spill_to_cache=spill_to_cache,
        )
        if artifact_cache is not None:
            artifact = artifact_cache.resolve(name, source, options)
            trace = artifact.trace
        else:
            program = compile_source(source, options)
            memory = RecordingMemory()
            program.run(memory=memory)
            trace = memory.buffer
        stats = replay_trace(trace, base)
        summary = trace.summary()
        rows.append(
            {
                "benchmark": name,
                "spill_to_cache": spill_to_cache,
                "refs_cached": stats.refs_cached,
                "refs_bypassed": stats.refs_bypassed,
                "miss_rate": stats.miss_rate,
                "bus_words": stats.bus_words,
                "spill_refs": summary["by_origin"]["spill"],
                "save_refs": summary["by_origin"]["callee_save"],
            }
        )
    return rows


def promotion_ablation(name, base=DEFAULT_CACHE, paper_scale=False,
                       levels=("none", "modest", "aggressive"),
                       artifact_cache=None):
    """Classification fractions vs allocator aggressiveness."""
    rows = []
    for level in levels:
        options = CompilationOptions(scheme="unified", promotion=level)
        result = run_benchmark(
            name, paper_scale=paper_scale, options=options, cache_config=base,
            artifact_cache=artifact_cache,
        )
        rows.append(
            {
                "benchmark": name,
                "promotion": level,
                "static_percent_unambiguous":
                    result.static_percent_unambiguous,
                "dynamic_percent_unambiguous":
                    result.dynamic_percent_unambiguous,
                "cache_traffic_reduction": result.cache_traffic_reduction,
                "dynamic_refs": result.dynamic["total"],
                "steps": result.steps,
            }
        )
    return rows


#: Default two-level geometry for the hierarchy ablation: a small
#: 64-word 2-way L1 (where bypass pressure is visible) backed by a
#: 512-word 8-way L2, nested so the inclusive discipline is scorable.
DEFAULT_HIERARCHY = "L1:64x2,L2:512x8"

#: The three-level variant the golden-pin matrix covers: a paper-scale
#: L1 under a mid L2 and a 4K-word 16-way last level.
DEFAULT_HIERARCHY3 = "L1:64x2,L2:512x8,L3:4096x16"


def hierarchy_sweep(
    name,
    hierarchy=DEFAULT_HIERARCHY,
    base=DEFAULT_CACHE,
    inclusions=("non-inclusive", "inclusive"),
    bypass_levels=("l1", "both"),
    paper_scale=False,
    options=None,
    artifact_cache=None,
):
    """L1/L2 hierarchy scores with the bypass-level ablation.

    For each inclusion discipline and each ``bypass_level`` the
    benchmark's reference trace is scored through
    :func:`~repro.cache.hierarchy.hierarchy_stats`; the row set
    answers *which level the compiler's bypassed references skip*:
    comparing ``bypass_level="l1"`` against ``"both"`` isolates the
    L2 consequences of routing ``UmAm_*`` traffic around the whole
    hierarchy versus around the first level only.
    """
    trace, _program = _trace_for(name, paper_scale, options, artifact_cache)
    rows = []
    for inclusion in inclusions:
        for bypass_level in bypass_levels:
            spec = parse_hierarchy(
                hierarchy, base=base,
                inclusion=inclusion, bypass_level=bypass_level,
            )
            row = hierarchy_stats(trace, spec).as_dict()
            row["benchmark"] = name
            rows.append(row)
    return rows


#: Private-L1 and shared-level geometries for the E18 contention
#: experiment: each core keeps the paper-scale 64-word 2-way first
#: level; the contended level is the E16 L2 (512 words, 8 ways — room
#: for meaningful way partitions).
MULTICORE_L1 = CacheConfig(size_words=64, line_words=1, associativity=2)
MULTICORE_SHARED = CacheConfig(size_words=512, line_words=1,
                               associativity=8)

#: Default E18 core groupings: two contrasting pairs (a blocked
#: compute kernel against a streaming scan, and the two recursive
#: benchmarks) plus a four-core mix.
MULTICORE_PAIRINGS = (
    ("intmm", "sieve"),
    ("queen", "towers"),
    ("bubble", "intmm", "puzzle", "sieve"),
)


def multicore_sweep(
    names,
    l1=MULTICORE_L1,
    shared=MULTICORE_SHARED,
    partition="umon",
    seed=0,
    chunk=8,
    paper_scale=False,
    options=None,
    artifact_cache=None,
):
    """E18 rows: one core grouping through the kill/partitioning grid.

    ``names`` lists the benchmarks acting as cores; their reference
    traces are interleaved once and replayed under every
    :data:`~repro.cache.multicore.MULTICORE_CONFIGS` cell, so the four
    rows differ only in the two levers (kill bits, way quotas).
    ``partition`` picks the quota policy for the partitioned cells:
    ``"umon"`` (utility-monitor greedy allocation) or ``"even"``.
    """
    from repro.cache.hierarchy import HierarchyError
    from repro.cache.multicore import (
        even_partition,
        multicore_grid,
        utility_curves,
        utility_partition,
    )

    traces = [
        _trace_for(name, paper_scale, options, artifact_cache)[0]
        for name in names
    ]
    if partition == "umon":
        curves = utility_curves(traces, l1, shared)
        quotas = utility_partition(curves, shared.associativity)
    elif partition == "even":
        quotas = even_partition(len(names), shared.associativity)
    else:
        raise HierarchyError(
            "unknown partition policy {!r} "
            "(expected 'umon' or 'even')".format(partition)
        )
    grid = multicore_grid(traces, l1, shared, quotas,
                          seed=seed, chunk=chunk, names=names)
    rows = []
    for config, result in grid.items():
        row = result.as_dict()
        row["config"] = config
        row["partition"] = partition
        rows.append(row)
    return rows


def _sweep_worker(payload):
    """Top-level worker for :func:`all_benchmarks_sweep` fan-out."""
    from repro.errors import failure_record
    from repro.evalharness.artifacts import ArtifactCache

    sweep_name, name, artifact_root, kwargs, capture = payload
    sweep = globals()[sweep_name]
    if artifact_root:
        kwargs = dict(kwargs, artifact_cache=ArtifactCache(artifact_root))
    if not capture:
        return "ok", sweep(name, **kwargs)
    try:
        return "ok", sweep(name, **kwargs)
    except Exception as error:  # noqa: BLE001 - serialized as a record
        return "error", failure_record(sweep_name, name, error)


def all_benchmarks_sweep(sweep, names=BENCHMARK_NAMES, failures=None,
                         jobs=None, artifact_cache=None, **kwargs):
    """Apply one of the sweeps above to every benchmark.

    With ``failures`` (a list), a benchmark that breaks is recorded
    there and skipped instead of aborting the whole sweep; without it,
    errors propagate.  ``jobs`` fans the per-benchmark sweeps out over
    a process pool (the sweep must be one of this module's functions so
    workers can resolve it by name); ``artifact_cache`` lets every
    benchmark resolve its trace from the on-disk store.
    """
    from repro.errors import failure_record

    if jobs and jobs > 1:
        from repro.evalharness.parallel import pool_map

        sweep_name = sweep.__name__
        if globals().get(sweep_name) is not sweep:
            raise ValueError(
                "all_benchmarks_sweep(jobs=N) requires one of the "
                "module-level sweeps, got {!r}".format(sweep)
            )
        root = artifact_cache.root if artifact_cache is not None else None
        capture = failures is not None
        payloads = [
            (sweep_name, name, root, kwargs, capture) for name in names
        ]
        rows = []
        for status, value in pool_map(_sweep_worker, payloads, jobs=jobs):
            if status == "ok":
                rows.extend(value)
            else:
                failures.append(value)
        return rows

    if artifact_cache is not None:
        kwargs = dict(kwargs, artifact_cache=artifact_cache)
    rows = []
    for name in names:
        try:
            rows.extend(sweep(name, **kwargs))
        except Exception as error:  # noqa: BLE001 - recorded, reported
            if failures is None:
                raise
            failures.append(
                failure_record(getattr(sweep, "__name__", "sweep"), name, error)
            )
    return rows
