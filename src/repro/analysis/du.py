"""D-U chains and webs ("values, not variables").

The paper (Section 4.1.1.1, Definition 2) splits a user name into one
*aliased-object name per value* by merging U-D chains that share
definitions.  For registers this is the classic *web* construction:
definitions of the same register are unioned whenever they reach a
common use, and each resulting web is an independently allocatable
value.  After :func:`rename_webs` every web owns a fresh virtual
register, so the register allocator automatically works on values.
"""

from repro.analysis.reaching import ReachingDefs
from repro.ir.instructions import VReg


class UnionFind:
    """Tiny union-find with path compression."""

    def __init__(self):
        self.parent = {}

    def find(self, item):
        parent = self.parent.setdefault(item, item)
        if parent is item or parent == item:
            return parent
        root = self.find(parent)
        self.parent[item] = root
        return root

    def union(self, a, b):
        root_a = self.find(a)
        root_b = self.find(b)
        if root_a != root_b:
            self.parent[root_b] = root_a
        return self.find(a)

    def groups(self):
        result = {}
        for item in list(self.parent):
            result.setdefault(self.find(item), []).append(item)
        return result


class DefUseChains:
    """For every use site, the def sites that reach it (register level)."""

    def __init__(self, function):
        self.function = function
        self.use_to_defs = {}  # (block, index, reg) -> frozenset[def site]
        self.def_to_uses = {}  # def site -> set[(block, index, reg)]
        reaching = ReachingDefs(function)
        for block in function.block_list():
            per_inst = reaching.defs_reaching_uses(block)
            for index, uses in enumerate(per_inst):
                for register, def_sites in uses.items():
                    use_site = (block.name, index, register)
                    self.use_to_defs[use_site] = def_sites
                    for def_site in def_sites:
                        self.def_to_uses.setdefault(def_site, set()).add(use_site)


class Web:
    """One value: a maximal def/use closure of a single register."""

    def __init__(self, register, defs, uses):
        self.register = register
        self.defs = frozenset(defs)
        self.uses = frozenset(uses)

    def __repr__(self):
        return "Web({}, {} defs, {} uses)".format(
            self.register, len(self.defs), len(self.uses)
        )


def build_du_chains(function):
    return DefUseChains(function)


def build_webs(function, chains=None):
    """Group defs/uses of each virtual register into webs.

    Physical registers are ABI-fixed and never form webs.
    """
    if chains is None:
        chains = DefUseChains(function)
    uf = UnionFind()
    # Union all defs that reach a common use.
    for use_site, def_sites in chains.use_to_defs.items():
        register = use_site[2]
        if not isinstance(register, VReg):
            continue
        def_list = [site for site in def_sites]
        for def_site in def_list:
            uf.union(def_list[0], def_site)

    # Collect all def sites (including dead defs with no uses).
    all_defs = {}
    for block in function.block_list():
        for index, instruction in enumerate(block.instructions):
            for register in instruction.defs():
                if isinstance(register, VReg):
                    site = (block.name, index, register)
                    uf.find(site)
                    all_defs[site] = True

    webs = []
    web_of_def = {}
    groups = uf.groups()
    for root, def_sites in groups.items():
        register = root[2]
        uses = set()
        for def_site in def_sites:
            uses |= chains.def_to_uses.get(def_site, set())
        web = Web(register, def_sites, uses)
        webs.append(web)
        for def_site in def_sites:
            web_of_def[def_site] = web
    return webs, web_of_def


def rename_webs(function):
    """Give every web its own fresh virtual register.

    Returns the list of (web, new_register) pairs.  Uses with no
    reaching definition keep their original register (they can only be
    reached along no path, or read an uninitialised value).
    """
    chains = DefUseChains(function)
    webs, _web_of_def = build_webs(function, chains)

    # Decide the new register of each web; single-web registers keep
    # their register to limit churn in dumps.
    webs_by_register = {}
    for web in webs:
        webs_by_register.setdefault(web.register, []).append(web)
    renamed = []
    def_map = {}  # def site -> new register
    use_map = {}  # use site -> new register
    for register, register_webs in webs_by_register.items():
        for ordinal, web in enumerate(register_webs):
            if len(register_webs) == 1:
                new_register = register
            else:
                new_register = function.new_vreg(
                    "{}w{}".format(register.hint or "v", ordinal)
                )
            renamed.append((web, new_register))
            for def_site in web.defs:
                def_map[def_site] = new_register
            for use_site in web.uses:
                use_map[use_site] = new_register

    for block in function.block_list():
        for index, instruction in enumerate(block.instructions):
            _rewrite_instruction(instruction, block.name, index, def_map, use_map)
    return renamed


def _rewrite_instruction(instruction, block_name, index, def_map, use_map):
    relevant = {}
    for register in instruction.defs():
        if not isinstance(register, VReg):
            continue
        new_register = def_map.get((block_name, index, register))
        if new_register is not None and new_register is not register:
            relevant[register] = ("def", new_register)
    for register in instruction.uses():
        if not isinstance(register, VReg):
            continue
        new_register = use_map.get((block_name, index, register))
        if new_register is not None and new_register is not register:
            previous = relevant.get(register)
            if previous is not None and previous[1] is not new_register:
                raise AssertionError(
                    "instruction both defines and uses {} in different webs"
                    .format(register)
                )
            relevant[register] = ("use", new_register)
    if not relevant:
        return

    def mapping(register):
        entry = relevant.get(register)
        if entry is None:
            return register
        return entry[1]

    instruction.rewrite_registers(mapping)
