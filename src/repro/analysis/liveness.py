"""Live-register analysis (virtual and physical registers together).

Classic backward may-analysis: a register is live at a point if some
path from that point reads it before writing it.  Register allocation
builds interference from this; last-use marking and the spill rewriter
consume the per-instruction walk helpers.
"""

from repro.analysis.dataflow import DataflowProblem, solve_dataflow


class _LivenessProblem(DataflowProblem):
    direction = "backward"

    def gen_kill(self, block):
        gen = set()   # upward-exposed uses
        kill = set()  # defs
        for instruction in block.instructions:
            for register in instruction.uses():
                if register not in kill:
                    gen.add(register)
            for register in instruction.defs():
                kill.add(register)
        return frozenset(gen), frozenset(kill)


class LivenessInfo:
    """Block-level live-in/live-out plus instruction-level walking."""

    def __init__(self, function):
        self.function = function
        solution = solve_dataflow(function, _LivenessProblem())
        self.live_in = {name: in_set for name, (in_set, _out) in solution.items()}
        self.live_out = {name: out_set for name, (_in, out_set) in solution.items()}

    def walk_block_backward(self, block):
        """Yield ``(index, instruction, live_after)`` from last to first.

        ``live_after`` is the live set immediately *after* the
        instruction executes.
        """
        live = set(self.live_out[block.name])
        for index in range(len(block.instructions) - 1, -1, -1):
            instruction = block.instructions[index]
            yield index, instruction, frozenset(live)
            for register in instruction.defs():
                live.discard(register)
            for register in instruction.uses():
                live.add(register)

    def live_after_each(self, block):
        """List of live-after sets, aligned with ``block.instructions``."""
        after = [None] * len(block.instructions)
        for index, _instruction, live_after in self.walk_block_backward(block):
            after[index] = live_after
        return after

    def live_before_each(self, block):
        """List of live-before sets, aligned with ``block.instructions``."""
        result = []
        for instruction, live_after in zip(
            block.instructions, self.live_after_each(block)
        ):
            before = set(live_after)
            for register in instruction.defs():
                before.discard(register)
            for register in instruction.uses():
                before.add(register)
            result.append(frozenset(before))
        return result


def compute_liveness(function):
    return LivenessInfo(function)
