"""Alias sets and reference classification (paper Section 4.1).

The analysis has two layers:

1. A flow-insensitive, interprocedural **points-to** analysis over
   MiniC pointer variables.  MiniC's type system keeps this sound and
   simple: there is no pointer-to-pointer type and arrays hold only
   ``int``, so pointer values can only flow through scalar pointer
   variables, argument registers, and return values — never through
   memory reached indirectly.

2. **Alias sets**: names (scalars, arrays-as-wholes, ``*p`` deref
   names) grouped by closure of the ambiguous-alias relation using
   union-find, exactly the construction of Section 4.1.1.2.  The sets
   satisfy the paper's *uniqueness* and *completeness* properties by
   construction.

Classification then follows Section 4.2: a directly named scalar whose
address is never taken is **unambiguous** (register-worthy, cache
bypass); array elements, pointer dereferences and address-taken scalars
are **ambiguous** (cache-managed).  Compiler-created spill slots are
unambiguous by construction but are deliberately routed *through* the
cache by the unified model (``AmSp_STORE``).
"""

from repro.analysis.du import UnionFind
from repro.ir.function import SpillSlot
from repro.ir.instructions import (
    AddrOfSym,
    BinOp,
    Call,
    Load,
    Move,
    PReg,
    RefClass,
    RegionKind,
    Ret,
    Store,
    SymMem,
    VReg,
)

#: Sentinel region for pointer values the analysis cannot pin down.
UNKNOWN_REGION = ("unknown", None)


def _region_of_symbol(symbol):
    if symbol.is_array():
        return ("array", symbol)
    return ("scalar", symbol)


def _is_pointer_symbol(symbol):
    return (
        not isinstance(symbol, SpillSlot)
        and symbol.type is not None
        and symbol.type.is_pointer()
    )


class AliasSet:
    """One closure class of the ambiguous-alias relation."""

    def __init__(self, names, ambiguous):
        self.names = tuple(sorted(names))
        self.ambiguous = ambiguous

    def __repr__(self):
        flavor = "ambiguous" if self.ambiguous else "unambiguous"
        return "AliasSet({}: {})".format(flavor, ", ".join(self.names))

    def __len__(self):
        return len(self.names)


class AliasAnalysis:
    """Module-level points-to facts plus the classification oracle."""

    def __init__(self, module, refine_points_to=False):
        self.module = module
        self.refine_points_to = refine_points_to
        self.points_to = {}  # pointer Symbol -> set[region]
        self.return_regions = {}  # function name -> set[region]
        self._vreg_regions = {}  # VReg -> set[region]
        self._dereferenced = set()  # pointer Symbols that are deref'd
        self._has_unknown_deref = False
        self._solve()
        self._scan_derefs()
        self._pointer_reachable = self._compute_pointer_reachable()

    # ------------------------------------------------------------------
    # Points-to solving.
    # ------------------------------------------------------------------

    def _solve(self):
        for name in self.module.functions:
            self.return_regions.setdefault(name, set())
        changed = True
        while changed:
            changed = False
            for function in self.module.functions.values():
                if self._transfer_function(function):
                    changed = True

    def _regions(self, operand):
        if isinstance(operand, VReg):
            return self._vreg_regions.get(operand, frozenset())
        return frozenset()

    def _add_regions(self, register, regions):
        if not regions or not isinstance(register, VReg):
            return False
        current = self._vreg_regions.setdefault(register, set())
        before = len(current)
        current |= regions
        return len(current) != before

    def _transfer_function(self, function):
        changed = False
        for block in function.block_list():
            preg_values = {}
            last_call = None
            for instruction in block.instructions:
                if isinstance(instruction, AddrOfSym):
                    region = _region_of_symbol(instruction.symbol)
                    changed |= self._add_regions(instruction.dest, {region})
                    last_call = None
                elif isinstance(instruction, Move):
                    changed |= self._transfer_move(
                        instruction, preg_values, last_call
                    )
                    if isinstance(instruction.dest, PReg):
                        preg_values[instruction.dest.index] = instruction.src
                    if not (
                        isinstance(instruction.src, PReg)
                        and instruction.src.index == 0
                    ):
                        if isinstance(instruction.dest, PReg):
                            last_call = None
                elif isinstance(instruction, BinOp):
                    if instruction.op in ("add", "sub"):
                        regions = self._regions(instruction.left) | self._regions(
                            instruction.right
                        )
                        changed |= self._add_regions(instruction.dest, regions)
                    last_call = None
                elif isinstance(instruction, Load):
                    changed |= self._transfer_load(instruction)
                    last_call = None
                elif isinstance(instruction, Store):
                    changed |= self._transfer_store(instruction)
                elif isinstance(instruction, Call):
                    changed |= self._bind_call_args(instruction, preg_values)
                    preg_values.clear()
                    last_call = instruction.callee
                elif isinstance(instruction, Ret):
                    if instruction.has_value:
                        operand = preg_values.get(0)
                        if operand is not None:
                            regions = self._regions(operand)
                            target = self.return_regions[function.name]
                            before = len(target)
                            target |= regions
                            changed |= len(target) != before
        return changed

    def _transfer_move(self, instruction, preg_values, last_call):
        if isinstance(instruction.src, PReg) and instruction.src.index == 0:
            if last_call is not None and last_call in self.return_regions:
                return self._add_regions(
                    instruction.dest, self.return_regions[last_call]
                )
            return False
        return self._add_regions(instruction.dest, self._regions(instruction.src))

    def _transfer_load(self, instruction):
        if isinstance(instruction.mem, SymMem):
            symbol = instruction.mem.symbol
            if _is_pointer_symbol(symbol):
                regions = self.points_to.get(symbol, frozenset())
                return self._add_regions(instruction.dest, regions)
        # Indirect loads produce ints only (no pointer-to-pointer in
        # MiniC), so no regions flow out of them.
        return False

    def _transfer_store(self, instruction):
        if isinstance(instruction.mem, SymMem):
            symbol = instruction.mem.symbol
            if _is_pointer_symbol(symbol):
                regions = self._regions(instruction.src)
                if regions:
                    target = self.points_to.setdefault(symbol, set())
                    before = len(target)
                    target |= regions
                    return len(target) != before
        return False

    def _bind_call_args(self, instruction, preg_values):
        callee = self.module.functions.get(instruction.callee)
        if callee is None:
            return False
        changed = False
        for index, param in enumerate(callee.params):
            if index >= instruction.num_args:
                break
            operand = preg_values.get(index)
            if operand is None or not _is_pointer_symbol(param):
                continue
            regions = self._regions(operand)
            if regions:
                target = self.points_to.setdefault(param, set())
                before = len(target)
                target |= regions
                changed = len(target) != before or changed
        return changed

    # ------------------------------------------------------------------
    # Deref inventory and reachability.
    # ------------------------------------------------------------------

    def _scan_derefs(self):
        for function in self.module.functions.values():
            for instruction in function.instructions():
                if not isinstance(instruction, (Load, Store)):
                    continue
                ref = instruction.ref
                if ref.region_kind is RegionKind.POINTER:
                    self._dereferenced.add(ref.region_symbol)
                elif ref.region_kind is RegionKind.UNKNOWN:
                    self._has_unknown_deref = True

    def _compute_pointer_reachable(self):
        """Scalar symbols that some executed dereference may touch."""
        reachable = set()
        unknown_somewhere = self._has_unknown_deref
        for pointer in self._dereferenced:
            for region in self.points_to.get(pointer, ()):  # noqa: B007
                if region == UNKNOWN_REGION:
                    unknown_somewhere = True
                elif region[0] == "scalar":
                    reachable.add(region[1])
        if unknown_somewhere:
            # An untracked pointer may target any address-taken scalar.
            for function in self.module.functions.values():
                for symbol in function.frame._offsets:
                    if symbol.address_taken:
                        reachable.add(symbol)
            for symbol in self.module.globals:
                if symbol.address_taken:
                    reachable.add(symbol)
        return reachable

    # ------------------------------------------------------------------
    # Classification (the oracle used by the unified model).
    # ------------------------------------------------------------------

    def classify(self, ref):
        """Classify one :class:`RefInfo` as ambiguous or unambiguous."""
        kind = ref.region_kind
        if kind is RegionKind.DIRECT:
            symbol = ref.region_symbol
            if isinstance(symbol, SpillSlot):
                return RefClass.UNAMBIGUOUS
            if not symbol.address_taken:
                return RefClass.UNAMBIGUOUS
            if self.refine_points_to and symbol not in self._pointer_reachable:
                return RefClass.UNAMBIGUOUS
            return RefClass.AMBIGUOUS
        return RefClass.AMBIGUOUS

    def symbol_is_register_worthy(self, symbol):
        """May this scalar live in a register across its whole range?"""
        if isinstance(symbol, SpillSlot):
            return False
        if symbol.is_array() or symbol.is_global():
            return False
        if not symbol.address_taken:
            return True
        if self.refine_points_to:
            return symbol not in self._pointer_reachable
        return False

    # ------------------------------------------------------------------
    # Alias sets (reporting / Section 4.1.1.2).
    # ------------------------------------------------------------------

    def alias_sets(self):
        """Alias sets over names, per the paper's closure construction."""
        uf = UnionFind()
        names = {}

        def name_of(key, text):
            names[key] = text
            uf.find(key)
            return key

        for symbol in self._all_data_symbols():
            if symbol.is_array():
                name_of(("array", symbol), "{}[]".format(symbol.storage_name()))
            else:
                name_of(("scalar", symbol), symbol.storage_name())
        unknown_key = None
        if self._has_unknown_deref:
            unknown_key = name_of(("deref", None), "*<unknown>")

        for pointer in sorted(
            self.points_to, key=lambda symbol: symbol.id
        ):
            deref_key = name_of(("deref", pointer), "*" + pointer.storage_name())
            for region in self.points_to[pointer]:
                if region == UNKNOWN_REGION:
                    if unknown_key is None:
                        unknown_key = name_of(("deref", None), "*<unknown>")
                    uf.union(deref_key, unknown_key)
                else:
                    if region not in names:
                        kind, symbol = region
                        text = symbol.storage_name()
                        if kind == "array":
                            text += "[]"
                        name_of(region, text)
                    uf.union(deref_key, region)
        if unknown_key is not None:
            for key in list(names):
                kind, symbol = key
                if kind == "scalar" and symbol.address_taken:
                    uf.union(unknown_key, key)
                elif kind == "array" and symbol.escapes:
                    uf.union(unknown_key, key)

        groups = {}
        for key in names:
            groups.setdefault(uf.find(key), []).append(key)
        result = []
        for members in groups.values():
            member_names = [names[key] for key in members]
            ambiguous = len(members) > 1 or any(
                key[0] in ("array", "deref") for key in members
            )
            if not ambiguous:
                symbol = members[0][1]
                ambiguous = bool(symbol.address_taken)
            result.append(AliasSet(member_names, ambiguous))
        result.sort(key=lambda alias_set: alias_set.names)
        return result

    def _all_data_symbols(self):
        seen = []
        for symbol in self.module.globals:
            seen.append(symbol)
        for function in self.module.functions.values():
            for symbol in function.frame._offsets:
                if not isinstance(symbol, SpillSlot):
                    seen.append(symbol)
        return seen


def analyze_aliases(module, refine_points_to=False):
    return AliasAnalysis(module, refine_points_to)
