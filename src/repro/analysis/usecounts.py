"""Loop-weighted usage counts (Freiburghouse 1974).

``symbol_use_counts`` drives the usage-count promotion policy: how many
times each memory-resident scalar is referenced, weighting a reference
at loop depth ``d`` by ``10**d``.  ``web_spill_costs`` provides the same
estimate for webs, used as the Chaitin spill heuristic numerator.
"""

from repro.ir.instructions import Load, Store, SymMem
from repro.ir.loops import LoopInfo


def symbol_use_counts(function, loop_info=None):
    """Weighted reference counts of directly accessed scalar symbols."""
    if loop_info is None:
        loop_info = LoopInfo(function)
    counts = {}
    for block in function.block_list():
        weight = loop_info.weight_of(block.name)
        for instruction in block.instructions:
            if isinstance(instruction, (Load, Store)) and isinstance(
                instruction.mem, SymMem
            ):
                symbol = instruction.mem.symbol
                counts[symbol] = counts.get(symbol, 0) + weight
    return counts


def web_spill_costs(function, webs, loop_info=None):
    """Weighted def+use counts per web (spill cost estimate).

    Returns ``{web: cost}`` where cost approximates the number of
    memory operations spilling that web would add at run time.
    """
    if loop_info is None:
        loop_info = LoopInfo(function)
    costs = {}
    for web in webs:
        cost = 0
        for block_name, _index, _register in web.defs:
            cost += loop_info.weight_of(block_name)
        for block_name, _index, _register in web.uses:
            cost += loop_info.weight_of(block_name)
        costs[web] = cost
    return costs
