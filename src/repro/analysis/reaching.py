"""Reaching definitions over registers.

A definition site is identified as ``(block_name, index)``; the def-use
chain builder joins these with uses to recover the paper's D-U chains
(Definition 1/2 in Section 4.1.1.1 are phrased in exactly these terms).
"""

from repro.analysis.dataflow import DataflowProblem, solve_dataflow


class _ReachingProblem(DataflowProblem):
    direction = "forward"

    def __init__(self, function):
        # All def sites per register, for kill sets.
        self.defs_of = {}
        for block in function.block_list():
            for index, instruction in enumerate(block.instructions):
                for register in instruction.defs():
                    self.defs_of.setdefault(register, set()).add(
                        (block.name, index, register)
                    )

    def gen_kill(self, block):
        gen = {}
        kill = set()
        for index, instruction in enumerate(block.instructions):
            for register in instruction.defs():
                site = (block.name, index, register)
                kill |= self.defs_of[register]
                gen = {
                    reg: s for reg, s in gen.items() if reg is not register
                }
                gen[register] = site
        gen_set = frozenset(gen.values())
        return gen_set, frozenset(kill - gen_set)


class ReachingDefs:
    """Per-block reaching-definition sets plus per-use resolution."""

    def __init__(self, function):
        self.function = function
        problem = _ReachingProblem(function)
        solution = solve_dataflow(function, problem)
        self.reach_in = {name: in_set for name, (in_set, _o) in solution.items()}
        self.reach_out = {name: out for name, (_i, out) in solution.items()}

    def defs_reaching_uses(self, block):
        """For each instruction, the defs of each used register.

        Returns a list aligned with ``block.instructions``; each element
        maps a used register to the frozenset of def sites that reach
        that use.
        """
        current = {}
        for site in self.reach_in[block.name]:
            current.setdefault(site[2], set()).add(site)
        result = []
        for index, instruction in enumerate(block.instructions):
            uses = {}
            for register in instruction.uses():
                uses[register] = frozenset(current.get(register, ()))
            result.append(uses)
            for register in instruction.defs():
                current[register] = {(block.name, index, register)}
        return result


def compute_reaching_defs(function):
    return ReachingDefs(function)
