"""Program analyses: dataflow, liveness, chains/webs, aliasing.

These are the compiler technologies the paper's Section 4.1 calls for:
live ranges of *values* (D-U chain webs, not variables), and alias sets
built by closing the ambiguous-alias relation.
"""

from repro.analysis.dataflow import DataflowProblem, solve_dataflow
from repro.analysis.liveness import LivenessInfo, compute_liveness
from repro.analysis.reaching import ReachingDefs, compute_reaching_defs
from repro.analysis.du import DefUseChains, Web, build_du_chains, build_webs
from repro.analysis.alias import AliasAnalysis, AliasSet, analyze_aliases
from repro.analysis.memliveness import MemoryLiveness, compute_memory_liveness
from repro.analysis.usecounts import symbol_use_counts, web_spill_costs

__all__ = [
    "DataflowProblem",
    "solve_dataflow",
    "LivenessInfo",
    "compute_liveness",
    "ReachingDefs",
    "compute_reaching_defs",
    "DefUseChains",
    "Web",
    "build_du_chains",
    "build_webs",
    "AliasAnalysis",
    "AliasSet",
    "analyze_aliases",
    "MemoryLiveness",
    "compute_memory_liveness",
    "symbol_use_counts",
    "web_spill_costs",
]
