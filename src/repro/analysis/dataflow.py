"""A generic iterative dataflow solver over basic blocks.

Problems describe their direction and per-block transfer as gen/kill
sets; the solver iterates a worklist to the (unique, because all our
transfer functions are monotone over finite powersets) fixpoint.
"""

from collections import deque

from repro.ir.cfg import postorder, reverse_postorder


class DataflowProblem:
    """Subclass and fill in the four hooks.

    * ``direction`` — ``"forward"`` or ``"backward"``.
    * ``boundary()`` — set at the entry (forward) / exits (backward).
    * ``initial()`` — starting value for interior blocks (∅ for may
      problems, the universe for must problems).
    * ``gen_kill(block)`` — returns ``(gen, kill)`` frozensets.
    """

    direction = "forward"

    def boundary(self):
        return frozenset()

    def initial(self):
        return frozenset()

    def gen_kill(self, block):
        raise NotImplementedError

    def meet(self, values):
        """Union by default (may analysis).  Override for must problems."""
        result = set()
        for value in values:
            result |= value
        return frozenset(result)


def solve_dataflow(function, problem):
    """Run ``problem`` on ``function``; returns ``{name: (in, out)}``."""
    if problem.direction == "forward":
        return _solve(function, problem, forward=True)
    return _solve(function, problem, forward=False)


def _solve(function, problem, forward):
    blocks = function.block_list()
    order = reverse_postorder(function) if forward else postorder(function)
    gen = {}
    kill = {}
    for block in blocks:
        gen[block.name], kill[block.name] = problem.gen_kill(block)

    entry_name = function.entry_name
    in_sets = {}
    out_sets = {}
    for block in blocks:
        in_sets[block.name] = problem.initial()
        out_sets[block.name] = problem.initial()

    worklist = deque(order)
    queued = {block.name for block in order}
    while worklist:
        block = worklist.popleft()
        queued.discard(block.name)
        if forward:
            if block.name == entry_name:
                preds_values = [problem.boundary()]
            else:
                preds_values = [out_sets[pred.name] for pred in block.preds]
                if not preds_values:
                    preds_values = [problem.boundary()]
            new_in = problem.meet(preds_values)
            new_out = frozenset((new_in - kill[block.name]) | gen[block.name])
            in_sets[block.name] = new_in
            if new_out != out_sets[block.name]:
                out_sets[block.name] = new_out
                for successor in block.succs:
                    if successor.name not in queued:
                        worklist.append(successor)
                        queued.add(successor.name)
        else:
            succs_values = [in_sets[succ.name] for succ in block.succs]
            if not succs_values:
                succs_values = [problem.boundary()]
            new_out = problem.meet(succs_values)
            new_in = frozenset((new_out - kill[block.name]) | gen[block.name])
            out_sets[block.name] = new_out
            if new_in != in_sets[block.name]:
                in_sets[block.name] = new_in
                for pred in block.preds:
                    if pred.name not in queued:
                        worklist.append(pred)
                        queued.add(pred.name)

    return {block.name: (in_sets[block.name], out_sets[block.name])
            for block in blocks}
