"""A generic iterative dataflow solver over basic blocks.

Two kinds of problems are supported:

* **Gen/kill problems** describe their direction and per-block transfer
  as gen/kill sets over finite powersets (liveness, reaching defs,
  memory liveness).  Subclass :class:`DataflowProblem` and fill in the
  four hooks.
* **General lattice problems** (the abstract cache analysis in
  :mod:`repro.staticcheck`) override :meth:`DataflowProblem.transfer`
  directly with an arbitrary monotone function over an arbitrary
  join-semilattice, and represent the bottom element (an unreached
  block) as ``None``; :meth:`DataflowProblem.meet` must then skip
  ``None`` inputs.

The solver iterates a worklist to the (unique, because all transfer
functions are required to be monotone over a finite-height lattice)
fixpoint.  Iteration order is deterministic: blocks are processed in
reverse-postorder for forward problems (postorder for backward ones),
and re-queued blocks re-enter the worklist at their priority position
rather than at the back.  Determinism makes both the results *and* the
iteration counts reproducible across runs, so golden tests can pin
them (see ``tests/test_dataflow.py``).
"""

import heapq

from repro.ir.cfg import postorder, reverse_postorder


class DataflowProblem:
    """Subclass and fill in the hooks.

    * ``direction`` — ``"forward"`` or ``"backward"``.
    * ``boundary()`` — value at the entry (forward) / exits (backward).
    * ``initial()`` — starting value for interior blocks (∅ for may
      problems, the universe for must problems, ``None`` for general
      lattice problems that track reachability as bottom).
    * ``gen_kill(block)`` — returns ``(gen, kill)`` frozensets; only
      consulted by the default :meth:`transfer`.
    * ``transfer(block, value)`` — override for non-gen/kill lattices.
    """

    direction = "forward"

    def __init__(self):
        self._gen_kill_cache = {}

    def boundary(self):
        return frozenset()

    def initial(self):
        return frozenset()

    def gen_kill(self, block):
        raise NotImplementedError

    def transfer(self, block, value):
        """Apply the block's transfer function to an input value.

        The default implements the classic gen/kill form, memoizing
        the per-block sets.  Lattice problems override this wholesale
        (and then never need :meth:`gen_kill`).
        """
        cache = getattr(self, "_gen_kill_cache", None)
        if cache is None:
            cache = self._gen_kill_cache = {}
        sets = cache.get(block.name)
        if sets is None:
            sets = cache[block.name] = self.gen_kill(block)
        gen, kill = sets
        return frozenset((value - kill) | gen)

    def meet(self, values):
        """Union by default (may analysis).  Override for must problems.

        General lattice problems must treat ``None`` inputs as bottom
        (skip them) and return ``None`` when every input is bottom.
        """
        result = set()
        for value in values:
            result |= value
        return frozenset(result)


class DataflowSolution(dict):
    """``{block_name: (in_value, out_value)}`` plus solver telemetry.

    ``iterations`` counts how many block transfers the worklist ran
    before reaching the fixpoint; with the deterministic priority
    worklist this number is reproducible run to run and is pinned by
    golden tests.  ``order`` records the block names in the traversal
    order the worklist was seeded with.
    """

    def __init__(self, mapping, iterations, order):
        super().__init__(mapping)
        self.iterations = iterations
        self.order = tuple(order)


def solve_dataflow(function, problem):
    """Run ``problem`` on ``function``; returns a :class:`DataflowSolution`."""
    return _solve(function, problem, forward=problem.direction == "forward")


def _solve(function, problem, forward):
    blocks = function.block_list()
    order = reverse_postorder(function) if forward else postorder(function)
    # Blocks unreachable in the chosen direction (e.g. no path to an
    # exit for a backward problem over an infinite loop) still need a
    # slot in the result; append them after the ordered ones.
    ordered_names = {block.name for block in order}
    trailing = [block for block in blocks if block.name not in ordered_names]
    order = order + trailing
    priority = {block.name: index for index, block in enumerate(order)}

    entry_name = function.entry_name
    in_sets = {}
    out_sets = {}
    for block in blocks:
        in_sets[block.name] = problem.initial()
        out_sets[block.name] = problem.initial()

    # A deterministic priority worklist: pop the pending block with the
    # smallest traversal index.  Seeded with every block in order.
    heap = list(range(len(order)))
    heapq.heapify(heap)
    queued = set(heap)
    by_index = {index: block for index, block in enumerate(order)}
    iterations = 0

    def push(block):
        index = priority[block.name]
        if index not in queued:
            queued.add(index)
            heapq.heappush(heap, index)

    while heap:
        index = heapq.heappop(heap)
        queued.discard(index)
        block = by_index[index]
        iterations += 1
        if forward:
            preds_values = [out_sets[pred.name] for pred in block.preds]
            if block.name == entry_name or not preds_values:
                preds_values = preds_values + [problem.boundary()]
            new_in = problem.meet(preds_values)
            new_out = problem.transfer(block, new_in)
            in_sets[block.name] = new_in
            if new_out != out_sets[block.name]:
                out_sets[block.name] = new_out
                for successor in block.succs:
                    push(successor)
        else:
            succs_values = [in_sets[succ.name] for succ in block.succs]
            if not succs_values:
                succs_values = [problem.boundary()]
            new_out = problem.meet(succs_values)
            new_in = problem.transfer(block, new_out)
            out_sets[block.name] = new_out
            if new_in != in_sets[block.name]:
                in_sets[block.name] = new_in
                for pred in block.preds:
                    push(pred)

    return DataflowSolution(
        {
            block.name: (in_sets[block.name], out_sets[block.name])
            for block in blocks
        },
        iterations=iterations,
        order=[block.name for block in order],
    )
