"""Liveness of memory-resident scalar values (paper Section 3.1).

The paper's Definition 1 gives the live range of a *value*; when the
value lives in memory rather than a register, knowing that a load is
the **last use** lets the compiler set the kill bit so the cache can
mark the line empty (and skip the write-back of a dead dirty line).

This is a backward may-analysis over directly addressed scalar
locations.  Conservatism:

* a dereference (pointer/array/unknown region) *uses* every scalar it
  may reach, per the alias analysis;
* a call uses and defines every global scalar and everything reachable
  from pointers (our functions may read/write globals freely);
* address-taken locals are treated as used by any call as well (a
  callee may hold a pointer to them).
"""

from repro.analysis.dataflow import DataflowProblem, solve_dataflow
from repro.ir.function import SpillSlot
from repro.ir.instructions import Call, Load, RegionKind, Store, SymMem


class _MemLivenessProblem(DataflowProblem):
    direction = "backward"

    def __init__(self, summaries, exit_live):
        self._summaries = summaries
        self._exit_live = frozenset(exit_live)

    def boundary(self):
        # Globals and address-taken locals must be treated as live at
        # return: the caller (or a saved pointer) may still read them.
        return self._exit_live

    def gen_kill(self, block):
        gen = set()
        kill = set()
        for instruction in block.instructions:
            uses, defs = self._summaries(instruction)
            for symbol in uses:
                if symbol not in kill:
                    gen.add(symbol)
            kill |= defs
        return frozenset(gen), frozenset(kill)


class MemoryLiveness:
    """Per-function liveness of scalar memory locations."""

    def __init__(self, function, module, alias_analysis):
        self.function = function
        self.module = module
        self.alias = alias_analysis
        self._globals = frozenset(
            symbol for symbol in module.globals if symbol.is_scalar()
        )
        self._escaped_locals = frozenset(
            symbol
            for symbol in function.frame._offsets
            if not isinstance(symbol, SpillSlot)
            and symbol.is_scalar()
            and symbol.address_taken
        )
        #: Locations that must be considered live at every return; also
        #: consulted by the staticcheck linter's kill-path check.
        self.exit_live = self._globals | self._escaped_locals
        solution = solve_dataflow(
            function, _MemLivenessProblem(self._summaries, self.exit_live)
        )
        self.live_in = {name: in_set for name, (in_set, _o) in solution.items()}
        self.live_out = {name: out for name, (_i, out) in solution.items()}

    # ------------------------------------------------------------------

    def _deref_may_use(self, ref):
        """Scalars possibly read/written by an indirect reference."""
        if ref.region_kind is RegionKind.POINTER:
            result = set()
            unknown = False
            for region in self.alias.points_to.get(ref.region_symbol, ()):
                if region[0] == "scalar":
                    result.add(region[1])
                elif region[0] == "unknown":
                    unknown = True
            if unknown:
                result |= self.alias._pointer_reachable
            return result
        if ref.region_kind is RegionKind.UNKNOWN:
            return set(self.alias._pointer_reachable)
        return set()

    def _summaries(self, instruction):
        """(uses, defs) over scalar memory locations for one instruction."""
        if isinstance(instruction, Load):
            if isinstance(instruction.mem, SymMem):
                return {instruction.mem.symbol}, set()
            return self._deref_may_use(instruction.ref), set()
        if isinstance(instruction, Store):
            if isinstance(instruction.mem, SymMem):
                return set(), {instruction.mem.symbol}
            # A may-def through a pointer is not a must-def: it kills
            # nothing, and it does not read the scalar either.
            return set(), set()
        if isinstance(instruction, Call):
            uses = set(self._globals) | set(self._escaped_locals)
            # Calls may also write them, but a may-def kills nothing.
            return uses, set()
        return set(), set()

    def summaries(self, instruction):
        """Public (uses, defs) view over scalar memory locations —
        the per-instruction semantics external checkers (the
        staticcheck linter's kill-path walk) must agree with."""
        return self._summaries(instruction)

    # ------------------------------------------------------------------

    def last_use_loads(self):
        """Yield every Load instruction that is the last use of its value.

        A direct scalar load is a last use when the location is dead
        immediately after the load (no later read before a redefinition
        on every path).
        """
        result = []
        for block in self.function.block_list():
            live = set(self.live_out[block.name])
            for index in range(len(block.instructions) - 1, -1, -1):
                instruction = block.instructions[index]
                uses, defs = self._summaries(instruction)
                live_after = frozenset(live)
                live -= defs
                live |= uses
                if (
                    isinstance(instruction, Load)
                    and isinstance(instruction.mem, SymMem)
                    and instruction.mem.symbol not in live_after
                ):
                    result.append(instruction)
        return result


def compute_memory_liveness(function, module, alias_analysis):
    return MemoryLiveness(function, module, alias_analysis)
