"""True-alias merging (paper Section 4.1.1.1, Definition 1).

"The user-created names α and β can be merged into a single
aliased-object name within some region of code iff the values
associated with the names α and β are known to be the same throughout
that region" — e.g. after ``p = &i``, references to ``i`` and ``*p``
share one aliased-object name.

The flow-insensitive realisation: when the points-to set of a pointer
``p`` is exactly one region, every dereference of ``p`` *is* a
reference to that region, so the compiler can rewrite the reference's
metadata — and, for a scalar target, the access itself — to the direct
form.  After the rewrite the pointer may no longer be the reason the
scalar counts as pointer-reachable, letting the refined classification
(``refine_points_to=True``) recover it as unambiguous and
register-worthy.

Soundness: flow-insensitively, ``p`` can never hold any other valid
address (the only other values it could hold are null/uninitialised,
whose dereference is undefined behaviour the VM traps anyway).
"""

from repro.analysis.alias import UNKNOWN_REGION
from repro.ir.instructions import (
    Load,
    RefInfo,
    RegionKind,
    Store,
    SymMem,
)


def _single_target(alias_analysis, pointer_symbol):
    regions = alias_analysis.points_to.get(pointer_symbol)
    if regions is None or len(regions) != 1:
        return None
    region = next(iter(regions))
    if region == UNKNOWN_REGION:
        return None
    return region


def merge_true_aliases(module, alias_analysis):
    """Rewrite single-target dereferences module-wide.

    * scalar target: the access becomes a direct ``SymMem`` reference
      (the address register stays computed but unused; dead-code level
      cost only);
    * array target: the reference metadata is sharpened from
      ``POINTER`` to ``ARRAY``, which improves memory-liveness
      precision (the dereference no longer conservatively reads every
      pointer-reachable scalar).

    Returns counts of each rewrite kind.
    """
    scalars_redirected = 0
    arrays_sharpened = 0
    for function in module.functions.values():
        for instruction in function.instructions():
            if not isinstance(instruction, (Load, Store)):
                continue
            ref = instruction.ref
            if ref.region_kind is not RegionKind.POINTER:
                continue
            target = _single_target(alias_analysis, ref.region_symbol)
            if target is None:
                continue
            kind, symbol = target
            if kind == "scalar":
                # A direct rewrite is only addressable when the target
                # lives in the global segment or in *this* function's
                # frame — another function's local is reached through
                # the pointer, not through our frame pointer.
                if not (symbol.is_global()
                        or function.frame.contains(symbol)):
                    continue
                new_ref = RefInfo(
                    access_path=symbol.storage_name(),
                    region_kind=RegionKind.DIRECT,
                    region_symbol=symbol,
                    origin=ref.origin,
                )
                instruction.mem = SymMem(symbol)
                instruction.ref = new_ref
                scalars_redirected += 1
            elif kind == "array":
                instruction.ref = RefInfo(
                    access_path="{}[*]".format(symbol.storage_name()),
                    region_kind=RegionKind.ARRAY,
                    region_symbol=symbol,
                    origin=ref.origin,
                )
                arrays_sharpened += 1
    if scalars_redirected or arrays_sharpened:
        # Deref inventories changed; refresh the analysis caches.
        alias_analysis._dereferenced.clear()
        alias_analysis._has_unknown_deref = False
        alias_analysis._scan_derefs()
        alias_analysis._pointer_reachable = (
            alias_analysis._compute_pointer_reachable()
        )
    return {
        "scalars_redirected": scalars_redirected,
        "arrays_sharpened": arrays_sharpened,
    }
