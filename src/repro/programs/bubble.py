"""Bubble — "a typical bubble sort program, executed on a set of
500 random data" (paper Section 5).

Faithful to the Stanford suite: the array is filled by the Stanford
linear-congruential generator (seed 74755), sorted, and checked.  The
program prints the smallest element, the largest element, and a
checksum; a sortedness flag of 1 means success.
"""

#: Paper scale: 500 elements.
PAPER_N = 500
DEFAULT_N = 200

_TEMPLATE = """
// Bubble sort of {n} pseudo-random integers (Stanford 'Bubble').
int seed;
int a[{n}];

int nextrand() {{
    seed = (seed * 1309 + 13849) % 65536;
    return seed;
}}

void initarr() {{
    int i;
    seed = 74755;
    for (i = 0; i < {n}; i++) {{
        a[i] = nextrand();
    }}
}}

void bsort() {{
    int top;
    int i;
    top = {n} - 1;
    while (top > 0) {{
        i = 0;
        while (i < top) {{
            if (a[i] > a[i + 1]) {{
                int t;
                t = a[i];
                a[i] = a[i + 1];
                a[i + 1] = t;
            }}
            i = i + 1;
        }}
        top = top - 1;
    }}
}}

int main() {{
    int i;
    int sorted;
    int check;
    initarr();
    bsort();
    sorted = 1;
    for (i = 0; i < {n} - 1; i++) {{
        if (a[i] > a[i + 1]) {{
            sorted = 0;
        }}
    }}
    check = 0;
    for (i = 0; i < {n}; i++) {{
        check = (check + a[i] * (i + 1)) % 1000000;
    }}
    print(a[0]);
    print(a[{n} - 1]);
    print(sorted);
    print(check);
    return 0;
}}
"""


def source(n=DEFAULT_N):
    return _TEMPLATE.format(n=n)


def reference_output(n=DEFAULT_N):
    """Python mirror of the MiniC program above."""
    seed = 74755
    values = []
    for _ in range(n):
        seed = (seed * 1309 + 13849) % 65536
        values.append(seed)
    values.sort()
    check = 0
    for index, value in enumerate(values):
        check = (check + value * (index + 1)) % 1000000
    return [values[0], values[-1], 1, check]
