"""Towers — "the standard recursive tower-of-Hanoi solution, given the
problem of moving 18 disks" (paper Section 5).

Faithful to the Stanford ``Towers`` program: discs live in a cell pool
(``cellspace``) threaded through ``next`` indices, with a free list and
the original runtime error checks, so the workload mixes recursion,
global-array "pointer" chasing and argument traffic exactly as the
original does.  Prints the number of moves (2**n - 1) followed by the
error count (0 on success).
"""

PAPER_DISKS = 18
DEFAULT_DISKS = 12

_TEMPLATE = """
// Towers of Hanoi with Stanford-style cellspace stacks, {n} discs.
int stackp[4];
int cellsize[{cells}];
int cellnext[{cells}];
int freelist;
int movesdone;
int errors;

void error(int code) {{
    errors = errors + 1;
    print(-code);
}}

int getelement() {{
    int temp;
    temp = 0;
    if (freelist > 0) {{
        temp = freelist;
        freelist = cellnext[freelist];
    }} else {{
        error(1);
    }}
    return temp;
}}

void push(int i, int s) {{
    int localel;
    int errorfound;
    errorfound = 0;
    if (stackp[s] > 0) {{
        if (cellsize[stackp[s]] <= i) {{
            errorfound = 1;
            error(2);
        }}
    }}
    if (errorfound == 0) {{
        localel = getelement();
        cellnext[localel] = stackp[s];
        stackp[s] = localel;
        cellsize[localel] = i;
    }}
}}

void initstack(int s, int n) {{
    int discctr;
    stackp[s] = 0;
    for (discctr = n; discctr >= 1; discctr--) {{
        push(discctr, s);
    }}
}}

int pop(int s) {{
    int temp;
    int temp1;
    if (stackp[s] > 0) {{
        temp1 = cellsize[stackp[s]];
        temp = cellnext[stackp[s]];
        cellnext[stackp[s]] = freelist;
        freelist = stackp[s];
        stackp[s] = temp;
        return temp1;
    }}
    error(3);
    return 0;
}}

void mv(int s1, int s2) {{
    push(pop(s1), s2);
    movesdone = movesdone + 1;
}}

void tower(int i, int j, int k) {{
    int other;
    if (k == 1) {{
        mv(i, j);
    }} else {{
        other = 6 - i - j;
        tower(i, other, k - 1);
        mv(i, j);
        tower(other, j, k - 1);
    }}
}}

int main() {{
    int i;
    errors = 0;
    movesdone = 0;
    for (i = 1; i < {cells} - 1; i++) {{
        cellnext[i] = i + 1;
    }}
    cellnext[{cells} - 1] = 0;
    freelist = 1;
    initstack(1, {n});
    stackp[2] = 0;
    stackp[3] = 0;
    tower(1, 2, {n});
    print(movesdone);
    print(errors);
    return 0;
}}
"""


def source(n=DEFAULT_DISKS):
    # One pool cell per disc plus slot 0 (the "null" index).
    return _TEMPLATE.format(n=n, cells=n + 2)


def reference_output(n=DEFAULT_DISKS):
    return [2 ** n - 1, 0]
