"""Sieve — "calculate the number of primes between 0 and 8190"
(paper Section 5).

The classic BYTE/Stanford sieve over odd candidates: ``flags[i]``
stands for the number ``2*i + 3``, so size 8190 yields the well-known
count of 1899 primes.  The paper-scale run repeats the sieve 10 times,
as the Stanford driver does.
"""

PAPER_SIZE = 8190
PAPER_ITERATIONS = 10
DEFAULT_SIZE = 8190
DEFAULT_ITERATIONS = 1

_TEMPLATE = """
// Sieve of Eratosthenes, size {size}, {iterations} iteration(s)
// (Stanford/BYTE 'Sieve').
int flags[{flags}];

int main() {{
    int i;
    int k;
    int prime;
    int count;
    int iter;
    count = 0;
    for (iter = 0; iter < {iterations}; iter++) {{
        count = 0;
        for (i = 0; i <= {size}; i++) {{
            flags[i] = 1;
        }}
        for (i = 0; i <= {size}; i++) {{
            if (flags[i]) {{
                prime = i + i + 3;
                for (k = i + prime; k <= {size}; k += prime) {{
                    flags[k] = 0;
                }}
                count = count + 1;
            }}
        }}
    }}
    print(count);
    return 0;
}}
"""


def source(size=DEFAULT_SIZE, iterations=DEFAULT_ITERATIONS):
    return _TEMPLATE.format(size=size, iterations=iterations, flags=size + 1)


def reference_output(size=DEFAULT_SIZE, iterations=DEFAULT_ITERATIONS):
    count = 0
    for _ in range(iterations):
        count = 0
        flags = [1] * (size + 1)
        for i in range(size + 1):
            if flags[i]:
                prime = i + i + 3
                for k in range(i + prime, size + 1, prime):
                    flags[k] = 0
                count += 1
    return [count]
