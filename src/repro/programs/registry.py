"""Benchmark registry: name -> (MiniC source, reference oracle)."""

from dataclasses import dataclass, field

from repro.programs import bubble, extras, intmm, puzzle, queen, sieve, towers

#: Benchmark names in the order the paper's Figure 5 lists them.
BENCHMARK_NAMES = ("bubble", "intmm", "puzzle", "queen", "sieve", "towers")

#: Additional Stanford-suite workloads (not part of Figure 5).
EXTRA_BENCHMARK_NAMES = ("quicksort", "perm")


@dataclass(frozen=True)
class Benchmark:
    """One ready-to-compile workload."""

    name: str
    description: str
    source: str
    expected_output: tuple
    params: dict = field(default_factory=dict)


def _bubble(paper_scale):
    n = bubble.PAPER_N if paper_scale else bubble.DEFAULT_N
    return Benchmark(
        "bubble",
        "bubble sort of {} random integers".format(n),
        bubble.source(n),
        tuple(bubble.reference_output(n)),
        {"n": n},
    )


def _intmm(paper_scale):
    n = intmm.PAPER_N if paper_scale else intmm.DEFAULT_N
    return Benchmark(
        "intmm",
        "{0}x{0} integer matrix multiply".format(n),
        intmm.source(n),
        tuple(intmm.reference_output(n)),
        {"n": n},
    )


def _puzzle(paper_scale):
    scale = puzzle.PAPER_SCALE if paper_scale else puzzle.DEFAULT_SCALE
    return Benchmark(
        "puzzle",
        "Baskett's 3-D packing puzzle (scale '{}')".format(scale),
        puzzle.source(scale),
        tuple(puzzle.reference_output(scale)),
        {"scale": scale},
    )


def _queen(paper_scale):
    n = queen.PAPER_N if paper_scale else queen.DEFAULT_N
    return Benchmark(
        "queen",
        "{}-queens solution counting".format(n),
        queen.source(n),
        tuple(queen.reference_output(n)),
        {"n": n},
    )


def _sieve(paper_scale):
    size = sieve.PAPER_SIZE if paper_scale else sieve.DEFAULT_SIZE
    iterations = (
        sieve.PAPER_ITERATIONS if paper_scale else sieve.DEFAULT_ITERATIONS
    )
    return Benchmark(
        "sieve",
        "sieve of Eratosthenes, size {}, {} iteration(s)".format(
            size, iterations
        ),
        sieve.source(size, iterations),
        tuple(sieve.reference_output(size, iterations)),
        {"size": size, "iterations": iterations},
    )


def _towers(paper_scale):
    n = towers.PAPER_DISKS if paper_scale else towers.DEFAULT_DISKS
    return Benchmark(
        "towers",
        "towers of Hanoi, {} discs".format(n),
        towers.source(n),
        tuple(towers.reference_output(n)),
        {"n": n},
    )


def _quicksort(paper_scale):
    n = extras.QUICKSORT_PAPER_N if paper_scale else extras.QUICKSORT_DEFAULT_N
    return Benchmark(
        "quicksort",
        "recursive quicksort of {} random integers".format(n),
        extras.quicksort_source(n),
        tuple(extras.quicksort_reference(n)),
        {"n": n},
    )


def _perm(paper_scale):
    n = extras.PERM_PAPER_N if paper_scale else extras.PERM_DEFAULT_N
    return Benchmark(
        "perm",
        "permutation counting, n = {}".format(n),
        extras.perm_source(n),
        tuple(extras.perm_reference(n)),
        {"n": n},
    )


_FACTORIES = {
    "bubble": _bubble,
    "intmm": _intmm,
    "puzzle": _puzzle,
    "queen": _queen,
    "sieve": _sieve,
    "towers": _towers,
    "quicksort": _quicksort,
    "perm": _perm,
}


def get_benchmark(name, paper_scale=False):
    """Build the named benchmark at default or paper scale."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise KeyError(
            "unknown benchmark {!r}; choose from {}".format(
                name, ", ".join(BENCHMARK_NAMES + EXTRA_BENCHMARK_NAMES)
            )
        ) from None
    return factory(paper_scale)


def iter_benchmarks(paper_scale=False, names=None):
    """Yield benchmarks in Figure 5 order."""
    for name in names or BENCHMARK_NAMES:
        yield get_benchmark(name, paper_scale)
