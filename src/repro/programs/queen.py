"""Queen — "a program to solve the 8 queens problem" (paper Section 5).

Counts every solution by recursive backtracking over column and
diagonal occupancy arrays (8 queens: 92 solutions).
"""

PAPER_N = 8
DEFAULT_N = 8

_TEMPLATE = """
// N-queens solution counter, n = {n} (Stanford 'Queen').
int count;
int usedcol[{n}];
int diag1[{d}];
int diag2[{d}];

void solve(int row) {{
    int c;
    if (row == {n}) {{
        count = count + 1;
        return;
    }}
    for (c = 0; c < {n}; c++) {{
        if (usedcol[c] == 0 && diag1[row + c] == 0
                && diag2[row - c + {n} - 1] == 0) {{
            usedcol[c] = 1;
            diag1[row + c] = 1;
            diag2[row - c + {n} - 1] = 1;
            solve(row + 1);
            usedcol[c] = 0;
            diag1[row + c] = 0;
            diag2[row - c + {n} - 1] = 0;
        }}
    }}
}}

int main() {{
    count = 0;
    solve(0);
    print(count);
    return 0;
}}
"""


def source(n=DEFAULT_N):
    return _TEMPLATE.format(n=n, d=2 * n - 1)


def reference_output(n=DEFAULT_N):
    count = 0
    usedcol = [0] * n
    diag1 = [0] * (2 * n - 1)
    diag2 = [0] * (2 * n - 1)

    def solve(row):
        nonlocal count
        if row == n:
            count += 1
            return
        for c in range(n):
            if not usedcol[c] and not diag1[row + c] and not diag2[row - c + n - 1]:
                usedcol[c] = diag1[row + c] = diag2[row - c + n - 1] = 1
                solve(row + 1)
                usedcol[c] = diag1[row + c] = diag2[row - c + n - 1] = 0

    solve(0)
    return [count]
