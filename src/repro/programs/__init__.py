"""The paper's six benchmark programs, written in MiniC.

Section 5 of the paper evaluates on benchmarks "taken from the DARPA
MIPS package" — the classic Stanford small-integer suite.  Each module
here provides the MiniC source (faithful to the Stanford algorithm,
including the original linear-congruential generators and seeds) plus a
line-by-line Python mirror whose output serves as the differential-
testing oracle.

Each benchmark accepts a scale parameter.  ``paper`` scale matches the
sizes in the paper (Bubble 500, Intmm 40x40, Puzzle 511, Queen 8,
Sieve 8190, Towers 18); ``default`` scale is smaller so the whole
harness runs quickly under a pure-Python VM.  The size-sweep ablation
bench verifies the reported fractions are stable across scales.
"""

from repro.programs.registry import (
    BENCHMARK_NAMES,
    EXTRA_BENCHMARK_NAMES,
    Benchmark,
    get_benchmark,
    iter_benchmarks,
)

__all__ = [
    "Benchmark",
    "BENCHMARK_NAMES",
    "EXTRA_BENCHMARK_NAMES",
    "get_benchmark",
    "iter_benchmarks",
]
