"""Puzzle — "a compute-bound program from Forest Baskett, which runs
with a size of 511" (paper Section 5).

The classic 3-D packing puzzle: a 5x5x5 cavity inside an 8x8x8 tray is
filled with 13+3+1+1 pieces by exhaustive recursive trial.  Pieces are
bitmaps over the flattened tray (``i*64 + j*8 + k``), matching the
original's ``p[type][size]`` tables.

The tray array carries a 200-word sentinel margin of occupied cells so
that ``fit`` probes beyond position 511 read a deterministic "occupied"
value instead of whatever happens to live after the array — the
original C program really does read past ``puzzle[size]`` and survives
only by the accident of memory layout.

Scales:

* ``paper`` — the full Baskett configuration (solution after 2005
  trial calls in the original).
* ``small`` — same tray and code paths, but a 3x3x3 cavity packed by
  nine 1x1x3 rods; the search is two orders of magnitude cheaper.
"""

PAPER_SCALE = "paper"
DEFAULT_SCALE = "small"

_D = 8
_SIZE = 511
_MARGIN = 200  # >= max piecemax
_TRAY = _SIZE + 1 + _MARGIN

#: (imax, jmax, kmax, class) per piece type, in trial order.
_PAPER_PIECES = [
    (3, 1, 0, 0),
    (1, 0, 3, 0),
    (0, 3, 1, 0),
    (1, 3, 0, 0),
    (3, 0, 1, 0),
    (0, 1, 3, 0),
    (2, 0, 0, 1),
    (0, 2, 0, 1),
    (0, 0, 2, 1),
    (1, 1, 0, 2),
    (1, 0, 1, 2),
    (0, 1, 1, 2),
    (1, 1, 1, 3),
]
_PAPER_COUNTS = [13, 3, 1, 1]
_PAPER_HOLE = 5

_SMALL_PIECES = [
    (2, 0, 0, 1),
    (0, 2, 0, 1),
    (0, 0, 2, 1),
]
_SMALL_COUNTS = [0, 9, 0, 0]
_SMALL_HOLE = 3


def _config(scale):
    if scale == PAPER_SCALE:
        return _PAPER_PIECES, _PAPER_COUNTS, _PAPER_HOLE
    if scale == "small":
        return _SMALL_PIECES, _SMALL_COUNTS, _SMALL_HOLE
    raise ValueError("unknown puzzle scale {!r}".format(scale))


_TEMPLATE = """
// Baskett's Puzzle, tray 8x8x8 (size 511), scale '{scale}'.
int puzzle[{tray}];
int p[{ptotal}];
int klass[{ntypes}];
int piecemax[{ntypes}];
int piececount[4];
int kount;
int defkmax;

int fit(int i, int j) {{
    int k;
    for (k = 0; k <= piecemax[i]; k++) {{
        if (p[i * {tray} + k]) {{
            if (puzzle[j + k]) {{
                return 0;
            }}
        }}
    }}
    return 1;
}}

int place(int i, int j) {{
    int k;
    for (k = 0; k <= piecemax[i]; k++) {{
        if (p[i * {tray} + k]) {{
            puzzle[j + k] = 1;
        }}
    }}
    piececount[klass[i]] = piececount[klass[i]] - 1;
    for (k = j; k <= {size}; k++) {{
        if (puzzle[k] == 0) {{
            return k;
        }}
    }}
    return 0;
}}

void removep(int i, int j) {{
    int k;
    for (k = 0; k <= piecemax[i]; k++) {{
        if (p[i * {tray} + k]) {{
            puzzle[j + k] = 0;
        }}
    }}
    piececount[klass[i]] = piececount[klass[i]] + 1;
}}

int trial(int j) {{
    int i;
    int k;
    kount = kount + 1;
    for (i = 0; i < {ntypes}; i++) {{
        if (piececount[klass[i]] != 0) {{
            if (fit(i, j)) {{
                k = place(i, j);
                if (trial(k) || k == 0) {{
                    return 1;
                }}
                removep(i, j);
            }}
        }}
    }}
    return 0;
}}

void definepiece(int index, int imax, int jmax) {{
    // kmax rides in the global 'defkmax' to stay within 4 arguments.
    int i;
    int j;
    int k;
    for (i = 0; i <= imax; i++) {{
        for (j = 0; j <= jmax; j++) {{
            for (k = 0; k <= defkmax; k++) {{
                p[index * {tray} + i * {dd} + j * {d} + k] = 1;
            }}
        }}
    }}
    piecemax[index] = imax * {dd} + jmax * {d} + defkmax;
}}

int main() {{
    int i;
    int j;
    int k;
    int m;
    int n;
    for (m = 0; m < {tray}; m++) {{
        puzzle[m] = 1;
    }}
    for (i = 1; i <= {hole}; i++) {{
        for (j = 1; j <= {hole}; j++) {{
            for (k = 1; k <= {hole}; k++) {{
                puzzle[i * {dd} + j * {d} + k] = 0;
            }}
        }}
    }}
    for (m = 0; m < {ptotal}; m++) {{
        p[m] = 0;
    }}
{piece_defs}
{count_inits}
    m = {dd} + {d} + 1;
    kount = 0;
    if (fit(0, m)) {{
        n = place(0, m);
    }} else {{
        print(-1);
        n = 0;
    }}
    if (trial(n)) {{
        print(kount);
    }} else {{
        print(-2);
        print(kount);
    }}
    return 0;
}}
"""


def source(scale=DEFAULT_SCALE):
    pieces, counts, hole = _config(scale)
    piece_defs = []
    for index, (imax, jmax, kmax, cls) in enumerate(pieces):
        piece_defs.append("    defkmax = {};".format(kmax))
        piece_defs.append(
            "    definepiece({}, {}, {});".format(index, imax, jmax)
        )
        piece_defs.append("    klass[{}] = {};".format(index, cls))
    count_inits = [
        "    piececount[{}] = {};".format(index, count)
        for index, count in enumerate(counts)
    ]
    return _TEMPLATE.format(
        scale=scale,
        tray=_TRAY,
        ptotal=len(pieces) * _TRAY,
        ntypes=len(pieces),
        size=_SIZE,
        d=_D,
        dd=_D * _D,
        hole=hole,
        piece_defs="\n".join(piece_defs),
        count_inits="\n".join(count_inits),
    )


def reference_output(scale=DEFAULT_SCALE):
    """Python mirror of the program above."""
    pieces, counts, hole = _config(scale)
    ntypes = len(pieces)
    puzzle = [1] * _TRAY
    for i in range(1, hole + 1):
        for j in range(1, hole + 1):
            for k in range(1, hole + 1):
                puzzle[i * 64 + j * 8 + k] = 0
    p = [[0] * _TRAY for _ in range(ntypes)]
    piecemax = [0] * ntypes
    klass = [0] * ntypes
    for index, (imax, jmax, kmax, cls) in enumerate(pieces):
        for i in range(imax + 1):
            for j in range(jmax + 1):
                for k in range(kmax + 1):
                    p[index][i * 64 + j * 8 + k] = 1
        piecemax[index] = imax * 64 + jmax * 8 + kmax
        klass[index] = cls
    piececount = list(counts)
    output = []
    kount = 0

    def fit(i, j):
        row = p[i]
        for k in range(piecemax[i] + 1):
            if row[k] and puzzle[j + k]:
                return False
        return True

    def place(i, j):
        row = p[i]
        for k in range(piecemax[i] + 1):
            if row[k]:
                puzzle[j + k] = 1
        piececount[klass[i]] -= 1
        for k in range(j, _SIZE + 1):
            if puzzle[k] == 0:
                return k
        return 0

    def removep(i, j):
        row = p[i]
        for k in range(piecemax[i] + 1):
            if row[k]:
                puzzle[j + k] = 0
        piececount[klass[i]] += 1

    def trial(j):
        nonlocal kount
        kount += 1
        for i in range(ntypes):
            if piececount[klass[i]] and fit(i, j):
                k = place(i, j)
                if trial(k) or k == 0:
                    return True
                removep(i, j)
        return False

    m = 64 + 8 + 1
    if fit(0, m):
        n = place(0, m)
    else:
        output.append(-1)
        n = 0
    if trial(n):
        output.append(kount)
    else:
        output.append(-2)
        output.append(kount)
    return output
