"""Extra Stanford-suite workloads beyond the paper's six.

The paper evaluates on six programs from the DARPA MIPS package; the
full Stanford small-integer suite also contains Quicksort and Perm,
which stress recursion-plus-array traffic in ways the six do not
(Quicksort: recursive partitioning over one shared array; Perm:
deep recursion with an array permuted in place).  They are provided as
additional workloads for the sweeps and as harder end-to-end compiler
tests; they are *not* part of the Figure 5 reproduction.
"""

QUICKSORT_DEFAULT_N = 200
QUICKSORT_PAPER_N = 5000  # Stanford's sortelements

_QUICKSORT_TEMPLATE = """
// Recursive quicksort of {n} pseudo-random integers (Stanford 'Quick').
int seed;
int a[{n}];

int nextrand() {{
    seed = (seed * 1309 + 13849) % 65536;
    return seed;
}}

void initarr() {{
    int i;
    seed = 74755;
    for (i = 0; i < {n}; i++) {{
        a[i] = nextrand();
    }}
}}

void quicksort(int lo, int hi) {{
    int i;
    int j;
    int pivot;
    int t;
    i = lo;
    j = hi;
    pivot = a[(lo + hi) / 2];
    while (i <= j) {{
        while (a[i] < pivot) {{
            i = i + 1;
        }}
        while (pivot < a[j]) {{
            j = j - 1;
        }}
        if (i <= j) {{
            t = a[i];
            a[i] = a[j];
            a[j] = t;
            i = i + 1;
            j = j - 1;
        }}
    }}
    if (lo < j) {{
        quicksort(lo, j);
    }}
    if (i < hi) {{
        quicksort(i, hi);
    }}
}}

int main() {{
    int i;
    int sorted;
    int check;
    initarr();
    quicksort(0, {n} - 1);
    sorted = 1;
    for (i = 0; i < {n} - 1; i++) {{
        if (a[i] > a[i + 1]) {{
            sorted = 0;
        }}
    }}
    check = 0;
    for (i = 0; i < {n}; i++) {{
        check = (check + a[i] * (i + 1)) % 1000000;
    }}
    print(a[0]);
    print(a[{n} - 1]);
    print(sorted);
    print(check);
    return 0;
}}
"""


def quicksort_source(n=QUICKSORT_DEFAULT_N):
    return _QUICKSORT_TEMPLATE.format(n=n)


def quicksort_reference(n=QUICKSORT_DEFAULT_N):
    seed = 74755
    values = []
    for _ in range(n):
        seed = (seed * 1309 + 13849) % 65536
        values.append(seed)
    values.sort()
    check = 0
    for index, value in enumerate(values):
        check = (check + value * (index + 1)) % 1000000
    return [values[0], values[-1], 1, check]


PERM_DEFAULT_N = 6
PERM_PAPER_N = 7  # Stanford runs permute(7) five times.

_PERM_TEMPLATE = """
// Permutation counter (Stanford 'Perm'), n = {n}.
int permarray[{slots}];
int pctr;

void swapelm(int i, int j) {{
    int t;
    t = permarray[i];
    permarray[i] = permarray[j];
    permarray[j] = t;
}}

void permute(int n) {{
    int k;
    pctr = pctr + 1;
    if (n != 1) {{
        permute(n - 1);
        for (k = n - 1; k >= 1; k--) {{
            swapelm(n - 1, k - 1);
            permute(n - 1);
            swapelm(n - 1, k - 1);
        }}
    }}
}}

int main() {{
    int i;
    pctr = 0;
    for (i = 0; i < {n}; i++) {{
        permarray[i] = i;
    }}
    permute({n});
    print(pctr);
    return 0;
}}
"""


def perm_source(n=PERM_DEFAULT_N):
    return _PERM_TEMPLATE.format(n=n, slots=n + 1)


def perm_reference(n=PERM_DEFAULT_N):
    """Mirror of the MiniC program; pctr follows a(n) = n*a(n-1) + 1
    (Stanford Perm.c checks a(7) == 8660)."""
    permarray = list(range(n + 1))
    pctr = 0

    def swapelm(i, j):
        permarray[i], permarray[j] = permarray[j], permarray[i]

    def permute(m):
        nonlocal pctr
        pctr += 1
        if m != 1:
            permute(m - 1)
            for k in range(m - 1, 0, -1):
                swapelm(m - 1, k - 1)
                permute(m - 1)
                swapelm(m - 1, k - 1)

    permute(n)
    return [pctr]
