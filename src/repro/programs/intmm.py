"""Intmm — integer matrix multiplication of two n-by-n matrices
(paper Section 5: 40 by 40).

Matrices are stored flattened (MiniC arrays are one-dimensional, like
the word-addressed machine itself); indexing is explicit ``i*n + j``
arithmetic, which is exactly the "intersection alias" array traffic the
paper classifies as ambiguous.
"""

PAPER_N = 40
DEFAULT_N = 24

_TEMPLATE = """
// Integer matrix multiply, {n} x {n} (Stanford 'Intmm').
int seed;
int ima[{nn}];
int imb[{nn}];
int imr[{nn}];

int nextrand() {{
    seed = (seed * 1309 + 13849) % 65536;
    return seed;
}}

void initmat(int *m) {{
    int i;
    int j;
    for (i = 0; i < {n}; i++) {{
        for (j = 0; j < {n}; j++) {{
            m[i * {n} + j] = nextrand() % 121 - 60;
        }}
    }}
}}

int innerproduct(int *row, int *col) {{
    int sum;
    int k;
    sum = 0;
    for (k = 0; k < {n}; k++) {{
        sum = sum + row[k] * col[k * {n}];
    }}
    return sum;
}}

int main() {{
    int i;
    int j;
    int check;
    seed = 74755;
    initmat(ima);
    initmat(imb);
    for (i = 0; i < {n}; i++) {{
        for (j = 0; j < {n}; j++) {{
            imr[i * {n} + j] = innerproduct(&ima[i * {n}], &imb[j]);
        }}
    }}
    check = 0;
    for (i = 0; i < {nn}; i++) {{
        check = (check + imr[i]) % 1000000;
        if (check < 0) {{
            check = check + 1000000;
        }}
    }}
    print(imr[0]);
    print(imr[{nn} - 1]);
    print(check);
    return 0;
}}
"""


def source(n=DEFAULT_N):
    return _TEMPLATE.format(n=n, nn=n * n)


def reference_output(n=DEFAULT_N):
    seed = 74755

    def nextrand():
        nonlocal seed
        seed = (seed * 1309 + 13849) % 65536
        return seed

    def c_mod(a, b):
        q = abs(a) // abs(b)
        if (a < 0) != (b < 0):
            q = -q
        return a - q * b

    def initmat():
        return [
            [c_mod(nextrand(), 121) - 60 for _j in range(n)] for _i in range(n)
        ]

    ima = initmat()
    imb = initmat()
    imr = [
        [
            sum(ima[i][k] * imb[k][j] for k in range(n))
            for j in range(n)
        ]
        for i in range(n)
    ]
    check = 0
    for i in range(n):
        for j in range(n):
            check = c_mod(check + imr[i][j], 1000000)
            if check < 0:
                check += 1000000
    return [imr[0][0], imr[n - 1][n - 1], check]
