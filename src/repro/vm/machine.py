"""The register-machine interpreter.

Executes fully allocated IR: sixteen physical registers, a word-
addressed memory, a downward-growing stack of frames.  Every data
memory access goes through the pluggable memory system together with
its :class:`RefInfo`, which is how traces and cache models observe the
reference stream with the paper's bypass/kill annotations attached.
"""

from dataclasses import dataclass, field

from repro.lang.errors import ResourceExhausted, VMError
from repro.ir.function import GLOBAL_BASE
from repro.ir.instructions import (
    MACHINE,
    AddrOfSym,
    BinOp,
    Call,
    CJump,
    Jump,
    Load,
    Move,
    PReg,
    Print,
    Ret,
    Store,
    SymMem,
    UnOp,
)
from repro.vm.memory import FlatMemory

#: Default top-of-stack word address (stack grows downward from here).
DEFAULT_STACK_BASE = 1 << 22

#: Base address of the text segment (instruction fetches in combined
#: I+D traces).  Above the stack, so code and data never collide.
TEXT_BASE = 1 << 23

#: Default execution budget; generous enough for paper-scale workloads.
#: Read at Machine construction time, so tools (the CLIs' --max-steps
#: flag, the fuzz driver) can tighten it process-wide via
#: :func:`set_default_max_steps`.
DEFAULT_MAX_STEPS = 2_000_000_000

#: Maximum call-stack depth before the VM refuses to recurse further.
MAX_CALL_DEPTH = 100_000


def set_default_max_steps(max_steps):
    """Set the process-wide default VM fuel budget (None keeps it)."""
    global DEFAULT_MAX_STEPS
    if max_steps is not None:
        DEFAULT_MAX_STEPS = max_steps
    return DEFAULT_MAX_STEPS


def _c_div(a, b):
    """C-style integer division: truncation toward zero."""
    if b == 0:
        raise VMError("division by zero")
    quotient = abs(a) // abs(b)
    if (a < 0) != (b < 0):
        quotient = -quotient
    return quotient


def _c_mod(a, b):
    return a - _c_div(a, b) * b


_BINOPS = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "div": _c_div,
    "mod": _c_mod,
    "eq": lambda a, b: 1 if a == b else 0,
    "ne": lambda a, b: 1 if a != b else 0,
    "lt": lambda a, b: 1 if a < b else 0,
    "le": lambda a, b: 1 if a <= b else 0,
    "gt": lambda a, b: 1 if a > b else 0,
    "ge": lambda a, b: 1 if a >= b else 0,
}


@dataclass
class ExecutionResult:
    """What one program run produced."""

    return_value: int
    output: list = field(default_factory=list)
    steps: int = 0


class Machine:
    """Interprets an allocated :class:`IRModule`."""

    def __init__(
        self,
        module,
        memory=None,
        machine=MACHINE,
        stack_base=DEFAULT_STACK_BASE,
        max_steps=None,
        instruction_sink=None,
    ):
        self.module = module
        self.memory = memory if memory is not None else FlatMemory()
        self.machine = machine
        self.stack_base = stack_base
        self.max_steps = max_steps if max_steps is not None else DEFAULT_MAX_STEPS
        #: Optional callable(address) invoked for every instruction
        #: fetch; used to build combined I+D traces.
        self.instruction_sink = instruction_sink
        self.regs = [0] * machine.num_regs
        self.output = []
        self.steps = 0
        self._global_top = GLOBAL_BASE + module.global_size
        self._offsets = {}
        for function in module.functions.values():
            self._offsets[function.name] = dict(function.frame._offsets)
        self._initialize_globals()
        self._layout_code()

    def _layout_code(self):
        """Assign every basic block a text-segment address so fetches
        can be traced.  One word per instruction, blocks laid out in
        function order — a plausible linker layout."""
        address = TEXT_BASE
        for function in self.module.functions.values():
            for block in function.blocks.values():
                block.code_address = address
                address += len(block.instructions)
        self.code_size = address - TEXT_BASE

    def _initialize_globals(self):
        for symbol in self.module.globals:
            base = symbol.global_address
            if symbol.is_array():
                for offset in range(symbol.type.size_words()):
                    self.memory.poke(base + offset, 0)
            else:
                self.memory.poke(base, self.module.global_inits.get(symbol, 0))

    # ------------------------------------------------------------------

    def set_global(self, name, value, index=None):
        """Initialise a global scalar or array element before running."""
        symbol = self._find_global(name)
        address = symbol.global_address
        if index is not None:
            if not symbol.is_array():
                raise VMError("global {} is not an array".format(name))
            if not 0 <= index < symbol.type.size_words():
                raise VMError("index {} out of range for {}".format(index, name))
            address += index
        self.memory.poke(address, value)

    def get_global(self, name, index=None):
        symbol = self._find_global(name)
        address = symbol.global_address
        if index is not None:
            address += index
        return self.memory.peek(address)

    def _find_global(self, name):
        for symbol in self.module.globals:
            if symbol.name == name:
                return symbol
        raise VMError("no global named {}".format(name))

    # ------------------------------------------------------------------

    def run(self, entry="main", max_steps=None):
        """Execute ``entry()`` to completion; returns ExecutionResult."""
        if entry not in self.module.functions:
            raise VMError("no function named {}".format(entry))
        budget = max_steps if max_steps is not None else self.max_steps
        function = self.module.functions[entry]
        fp = self.stack_base - function.frame.size
        if fp < self._global_top:
            raise VMError("stack overflow on entry")
        call_stack = []
        offsets = self._offsets[function.name]
        block = function.entry
        instructions = block.instructions
        index = 0
        regs = self.regs
        memory = self.memory
        steps = self.steps
        instruction_sink = self.instruction_sink

        while True:
            instruction = instructions[index]
            if instruction_sink is not None:
                instruction_sink(block.code_address + index)
            index += 1
            steps += 1
            if steps > budget:
                self.steps = steps
                raise ResourceExhausted(
                    "execution exceeded {} steps (infinite loop?)".format(budget)
                )
            cls = instruction.__class__

            if cls is BinOp:
                left = instruction.left
                right = instruction.right
                a = regs[left.index] if left.__class__ is PReg else left.value
                b = regs[right.index] if right.__class__ is PReg else right.value
                regs[instruction.dest.index] = _BINOPS[instruction.op](a, b)
            elif cls is Move:
                src = instruction.src
                regs[instruction.dest.index] = (
                    regs[src.index] if src.__class__ is PReg else src.value
                )
            elif cls is Load:
                mem = instruction.mem
                if mem.__class__ is SymMem:
                    symbol = mem.symbol
                    if symbol.global_address is not None:
                        address = symbol.global_address
                    else:
                        address = fp + offsets[symbol]
                else:
                    address = regs[mem.addr.index]
                    self._check_address(address, instruction)
                regs[instruction.dest.index] = memory.read(
                    address, instruction.ref
                )
            elif cls is Store:
                mem = instruction.mem
                if mem.__class__ is SymMem:
                    symbol = mem.symbol
                    if symbol.global_address is not None:
                        address = symbol.global_address
                    else:
                        address = fp + offsets[symbol]
                else:
                    address = regs[mem.addr.index]
                    self._check_address(address, instruction)
                src = instruction.src
                value = regs[src.index] if src.__class__ is PReg else src.value
                memory.write(address, value, instruction.ref)
            elif cls is CJump:
                cond = instruction.cond
                value = (
                    regs[cond.index] if cond.__class__ is PReg else cond.value
                )
                target = instruction.if_true if value != 0 else instruction.if_false
                block = function.blocks[target]
                instructions = block.instructions
                index = 0
            elif cls is Jump:
                block = function.blocks[instruction.target]
                instructions = block.instructions
                index = 0
            elif cls is UnOp:
                operand = instruction.operand
                value = (
                    regs[operand.index]
                    if operand.__class__ is PReg
                    else operand.value
                )
                if instruction.op == "neg":
                    regs[instruction.dest.index] = -value
                else:
                    regs[instruction.dest.index] = 1 if value == 0 else 0
            elif cls is AddrOfSym:
                symbol = instruction.symbol
                if symbol.global_address is not None:
                    regs[instruction.dest.index] = symbol.global_address
                else:
                    regs[instruction.dest.index] = fp + offsets[symbol]
            elif cls is Call:
                callee = self.module.functions.get(instruction.callee)
                if callee is None:
                    raise VMError(
                        "call to unknown function {}".format(instruction.callee)
                    )
                call_stack.append((function, offsets, block, index, fp))
                if len(call_stack) > MAX_CALL_DEPTH:
                    raise ResourceExhausted(
                        "call stack overflow (recursion too deep)"
                    )
                fp = fp - callee.frame.size
                if fp < self._global_top:
                    raise VMError(
                        "stack overflow calling {}".format(callee.name)
                    )
                function = callee
                offsets = self._offsets[function.name]
                block = function.entry
                instructions = block.instructions
                index = 0
            elif cls is Ret:
                if not call_stack:
                    self.steps = steps
                    return ExecutionResult(
                        return_value=regs[self.machine.ret_reg],
                        output=self.output,
                        steps=steps,
                    )
                function, offsets, block, index, fp = call_stack.pop()
                instructions = block.instructions
            elif cls is Print:
                src = instruction.src
                value = regs[src.index] if src.__class__ is PReg else src.value
                self.output.append(value)
            else:
                raise VMError(
                    "cannot execute instruction {!r}".format(instruction)
                )

    def _check_address(self, address, instruction):
        if address < GLOBAL_BASE or address >= self.stack_base:
            raise VMError(
                "wild memory access at address {} by {!r}".format(
                    address, instruction
                )
            )


def run_module(module, entry="main", memory=None, machine=MACHINE, **kwargs):
    """Convenience: build a Machine, run ``entry``, return the result."""
    vm = Machine(module, memory=memory, machine=machine, **kwargs)
    return vm.run(entry)
