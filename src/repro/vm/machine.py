"""The register-machine interpreter.

Executes fully allocated IR: sixteen physical registers, a word-
addressed memory, a downward-growing stack of frames.  Every data
memory access goes through the pluggable memory system together with
its :class:`RefInfo`, which is how traces and cache models observe the
reference stream with the paper's bypass/kill annotations attached.

The hot loop is **closure-compiled**: at construction time every
instruction is translated into a zero-argument handler closure with
its operand kinds, arithmetic op, frame offsets, jump targets, and
trace flag byte resolved once, instead of being re-dispatched on every
step.  The interpreter loop is then just ``index = handlers[index]()``
plus the fuel check; each handler returns the global index of its
successor.  Handlers bind the memory system at construction — build
the :class:`Machine` after the memory it should run against, and do
not swap ``vm.memory`` afterwards.

On top of the per-instruction handlers the compiler builds
**superinstructions**: each maximal straight-line run of Load/Store-
free locals-in-registers ops (BinOp/Move/UnOp/AddrOfSym, optionally
closing with the block's Jump/CJump) is code-generated into a single
zero-argument handler, so one dispatch retires the whole run.  The
generated bodies inline register indices and constants as literals
and are cached module-wide by source text, so structurally repeated
runs share one code object.  Fuel accounting charges a run's full
length before executing it (a budget overrun raises without running
the partial superinstruction — registers are the only state such a
run touches, so the externally visible result is unchanged), and the
fused table is bypassed whenever an ``instruction_sink`` is attached
so fetch traces still see every instruction.  ``ReferenceMachine``
opts out entirely via ``_enable_fusion`` and remains the oracle the
fused interpreter is differentially tested against.
"""

from dataclasses import dataclass, field

from repro.lang.errors import ResourceExhausted, VMError
from repro.ir.function import GLOBAL_BASE
from repro.ir.instructions import (
    MACHINE,
    AddrOfSym,
    BinOp,
    Call,
    CJump,
    Jump,
    Load,
    Move,
    PReg,
    Print,
    Ret,
    Store,
    SymMem,
    UnOp,
)
from repro.vm.memory import FlatMemory, RecordingMemory

#: Default top-of-stack word address (stack grows downward from here).
DEFAULT_STACK_BASE = 1 << 22

#: Base address of the text segment (instruction fetches in combined
#: I+D traces).  Above the stack, so code and data never collide.
TEXT_BASE = 1 << 23

#: Default execution budget; generous enough for paper-scale workloads.
#: Read at Machine construction time, so tools (the CLIs' --max-steps
#: flag, the fuzz driver) can tighten it process-wide via
#: :func:`set_default_max_steps`.
DEFAULT_MAX_STEPS = 2_000_000_000

#: Maximum call-stack depth before the VM refuses to recurse further.
MAX_CALL_DEPTH = 100_000


def set_default_max_steps(max_steps):
    """Set the process-wide default VM fuel budget (None keeps it)."""
    global DEFAULT_MAX_STEPS
    if max_steps is not None:
        DEFAULT_MAX_STEPS = max_steps
    return DEFAULT_MAX_STEPS


def _c_div(a, b):
    """C-style integer division: truncation toward zero."""
    if b == 0:
        raise VMError("division by zero")
    quotient = abs(a) // abs(b)
    if (a < 0) != (b < 0):
        quotient = -quotient
    return quotient


def _c_mod(a, b):
    return a - _c_div(a, b) * b


_BINOPS = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "div": _c_div,
    "mod": _c_mod,
    "eq": lambda a, b: 1 if a == b else 0,
    "ne": lambda a, b: 1 if a != b else 0,
    "lt": lambda a, b: 1 if a < b else 0,
    "le": lambda a, b: 1 if a <= b else 0,
    "gt": lambda a, b: 1 if a > b else 0,
    "ge": lambda a, b: 1 if a >= b else 0,
}


#: Expression templates for the superinstruction code generator — the
#: arithmetic inlined as operators instead of ``_BINOPS`` calls.
_FUSE_OPS = {
    "add": "({} + {})",
    "sub": "({} - {})",
    "mul": "({} * {})",
    "div": "_c_div({}, {})",
    "mod": "_c_mod({}, {})",
    "eq": "(1 if {} == {} else 0)",
    "ne": "(1 if {} != {} else 0)",
    "lt": "(1 if {} < {} else 0)",
    "le": "(1 if {} <= {} else 0)",
    "gt": "(1 if {} > {} else 0)",
    "ge": "(1 if {} >= {} else 0)",
}

#: Names the generated bodies may reference beyond ``vm``/``r``.
#: (_Halt / the error types serve the fused Ret and Call closers;
#: _Halt is injected below its definition.)
_FUSE_GLOBALS = {
    "_c_div": _c_div,
    "_c_mod": _c_mod,
    "VMError": VMError,
    "ResourceExhausted": ResourceExhausted,
}

#: Source text -> ``_make`` factory.  Fused bodies inline only small
#: literals, so structurally repeated runs (unrolled loops, generated
#: programs) hit this cache instead of re-exec'ing.
_FUSED_CODE_CACHE = {}
_FUSED_CODE_CACHE_LIMIT = 4096

#: Upper bound on instructions retired by one superinstruction —
#: keeps jump-threaded bodies (and their up-front fuel charge) small.
_FUSE_RUN_LIMIT = 32


def _fusable(ins, offsets):
    """Can ``ins`` join a superinstruction run?

    Only ops whose effects live entirely in the register file (plus a
    frame-pointer read for local AddrOfSym): no memory traffic, no
    output, no control transfer, and no construction-time surprises —
    unknown BinOps and unknown frame symbols keep their individual
    handlers so they fail exactly as before.
    """
    cls = ins.__class__
    if cls is BinOp:
        return ins.op in _FUSE_OPS
    if cls is Move or cls is UnOp:
        return True
    if cls is AddrOfSym:
        symbol = ins.symbol
        return symbol.global_address is not None or symbol in offsets
    return False


def _fuse_stmt(ins, offsets):
    """One fusable instruction -> one generated statement."""
    cls = ins.__class__
    if cls is BinOp:
        left, right = ins.left, ins.right
        a = (
            "r[%d]" % left.index if left.__class__ is PReg
            else repr(left.value)
        )
        b = (
            "r[%d]" % right.index if right.__class__ is PReg
            else repr(right.value)
        )
        return "r[%d] = %s" % (ins.dest.index, _FUSE_OPS[ins.op].format(a, b))
    if cls is Move:
        src = ins.src
        value = (
            "r[%d]" % src.index if src.__class__ is PReg
            else repr(src.value)
        )
        return "r[%d] = %s" % (ins.dest.index, value)
    if cls is UnOp:
        operand = ins.operand
        if operand.__class__ is PReg:
            if ins.op == "neg":
                return "r[%d] = -r[%d]" % (ins.dest.index, operand.index)
            return (
                "r[%d] = 1 if r[%d] == 0 else 0"
                % (ins.dest.index, operand.index)
            )
        value = (
            -operand.value if ins.op == "neg"
            else (1 if operand.value == 0 else 0)
        )
        return "r[%d] = %s" % (ins.dest.index, repr(value))
    symbol = ins.symbol
    if symbol.global_address is not None:
        return "r[%d] = %d" % (ins.dest.index, symbol.global_address)
    return "r[%d] = vm.fp + %s" % (ins.dest.index, repr(offsets[symbol]))


class _Halt(Exception):
    """Internal: a top-level Ret ends the run (never escapes Machine)."""


_FUSE_GLOBALS["_Halt"] = _Halt


@dataclass
class ExecutionResult:
    """What one program run produced."""

    return_value: int
    output: list = field(default_factory=list)
    steps: int = 0


class Machine:
    """Interprets an allocated :class:`IRModule`."""

    #: Subclasses (the reference oracle) set this False to keep the
    #: one-handler-per-instruction table byte-for-byte unfused.
    _enable_fusion = True

    def __init__(
        self,
        module,
        memory=None,
        machine=MACHINE,
        stack_base=DEFAULT_STACK_BASE,
        max_steps=None,
        instruction_sink=None,
    ):
        self.module = module
        self.memory = memory if memory is not None else FlatMemory()
        self.machine = machine
        self.stack_base = stack_base
        self.max_steps = max_steps if max_steps is not None else DEFAULT_MAX_STEPS
        #: Optional callable(address) invoked for every instruction
        #: fetch; used to build combined I+D traces.
        self.instruction_sink = instruction_sink
        self.regs = [0] * machine.num_regs
        self.output = []
        self.steps = 0
        self._global_top = GLOBAL_BASE + module.global_size
        self._offsets = {}
        for function in module.functions.values():
            self._offsets[function.name] = dict(function.frame._offsets)
        self._initialize_globals()
        self._layout_code()
        self._compile_handlers()

    def _layout_code(self):
        """Assign every basic block a text-segment address so fetches
        can be traced.  One word per instruction, blocks laid out in
        function order — a plausible linker layout."""
        address = TEXT_BASE
        for function in self.module.functions.values():
            for block in function.blocks.values():
                block.code_address = address
                address += len(block.instructions)
        self.code_size = address - TEXT_BASE

    def _initialize_globals(self):
        for symbol in self.module.globals:
            base = symbol.global_address
            if symbol.is_array():
                for offset in range(symbol.type.size_words()):
                    self.memory.poke(base + offset, 0)
            else:
                self.memory.poke(base, self.module.global_inits.get(symbol, 0))

    # -- closure compilation -------------------------------------------

    def _compile_handlers(self):
        """Translate the laid-out code into the global handler table.

        ``self._handlers[i]`` executes the instruction at text address
        ``TEXT_BASE + i`` and returns its successor's index.  One extra
        guard slot at the end catches control flow that falls off a
        block without a terminator (or jumps to an empty block).
        """
        module = self.module
        #: Index of the fall-off guard handler (one past the code).
        guard = self.code_size
        #: Current frame pointer — a plain rebindable attribute the
        #: handlers close over via ``vm`` (an unboxed ``[0]`` cell).
        self.fp = 0
        self._call_stack = []
        fuse = self._enable_fusion and self.instruction_sink is None
        handlers = []
        overlays = []
        entry_index = {}
        for function in module.functions.values():
            entry_block = function.entry
            entry_index[function.name] = (
                entry_block.code_address - TEXT_BASE
                if entry_block.instructions
                else guard
            )
            offsets = self._offsets[function.name]
            for block in function.blocks.values():
                base = block.code_address - TEXT_BASE
                assert base == len(handlers), "layout/compile order skew"
                last = len(block.instructions) - 1
                for i, instruction in enumerate(block.instructions):
                    next_index = base + i + 1 if i < last else guard
                    handlers.append(
                        self._compile_instruction(
                            instruction, next_index, function, offsets, guard
                        )
                    )
                if fuse:
                    self._fuse_block(
                        block, base, function, offsets, guard, overlays
                    )

        def fell_off():
            raise VMError("execution fell off the end of a basic block")

        handlers.append(fell_off)
        self._handlers = handlers
        self._entry_index = entry_index
        if overlays:
            fast = list(handlers)
            costs = [1] * len(handlers)
            for index, handler, cost in overlays:
                fast[index] = handler
                costs[index] = cost
            self._fast_handlers = fast
            self._costs = costs
        else:
            self._fast_handlers = None
            self._costs = None

    def _block_index(self, function, name, guard):
        block = function.blocks[name]
        if not block.instructions:
            return guard
        return block.code_address - TEXT_BASE

    # -- superinstruction fusion ---------------------------------------

    def _fuse_block(self, block, base, function, offsets, guard, overlays):
        """Collect the block's superinstruction runs into ``overlays``.

        A run is a maximal stretch of fusable ops, optionally closed by
        one control op — Jump/CJump/Ret, or a Call to a known function
        (whose push/frame bookkeeping is pure register-and-attribute
        work too); runs shorter than two instructions stay on their
        individual handlers.  Only run heads get overlaid — interior
        indices are unreachable (nothing jumps into the middle of
        straight-line code), but their per-instruction handlers stay in
        the table untouched.
        """
        instructions = block.instructions
        m = len(instructions)
        i = 0
        while i < m:
            if not _fusable(instructions[i], offsets):
                i += 1
                continue
            j = i
            while j < m and _fusable(instructions[j], offsets):
                j += 1
            terminal = self._fuse_closer(instructions, j)
            count = (j - i) + (1 if terminal is not None else 0)
            if count >= 2:
                handler, count = self._compile_fused(
                    instructions[i:j], terminal, j, m, base, function,
                    offsets, guard,
                )
                overlays.append((base + i, handler, count))
            i = j + 1 if terminal is not None else j

    def _fuse_closer(self, instructions, j):
        """The control op at position ``j`` if a run may absorb it."""
        if j >= len(instructions):
            return None
        ins = instructions[j]
        cls = ins.__class__
        if cls in (Jump, CJump, Ret):
            return ins
        if cls is Call and ins.callee in self.module.functions:
            return ins
        return None

    def _compile_fused(self, run, terminal, j, m, base, function, offsets,
                       guard):
        """Generate and instantiate one superinstruction handler.

        The body is plain source — register indices, constants, frame
        offsets and successor indices all inlined as literals — wrapped
        in a ``_make(vm, r)`` factory so one compiled code object
        serves every machine whose run has the same shape.  Returns
        ``(handler, instructions_retired)``.

        A closing Jump is **threaded**: instead of returning the
        target's index, the target block's own fusable head run (and
        its closer) is inlined into this body, repeating — bounded by
        ``_FUSE_RUN_LIMIT`` and a visited set — so straight-line code
        split across blocks still retires in one dispatch.  Each block
        is threaded at most once per body; a self-jump therefore
        unrolls a single partial iteration and then returns.
        """
        lines = ["def _make(vm, r):", "    def _fused():"]
        for ins in run:
            lines.append("        " + _fuse_stmt(ins, offsets))
        count = len(run)
        #: Successor index when the current segment has no closer.
        succ = guard if j >= m else base + j
        visited = set()
        while True:
            if terminal is None:
                lines.append("        return %d" % succ)
                break
            cls = terminal.__class__
            count += 1
            if cls is Jump:
                target = function.blocks[terminal.target]
                t_instructions = target.instructions
                t_base = target.code_address - TEXT_BASE
                if not t_instructions:
                    lines.append("        return %d" % guard)
                    break
                if id(target) in visited or count >= _FUSE_RUN_LIMIT:
                    lines.append("        return %d" % t_base)
                    break
                visited.add(id(target))
                k = 0
                t_m = len(t_instructions)
                while (
                    k < t_m
                    and count + k < _FUSE_RUN_LIMIT
                    and _fusable(t_instructions[k], offsets)
                ):
                    lines.append(
                        "        " + _fuse_stmt(t_instructions[k], offsets)
                    )
                    k += 1
                count += k
                if k == 0:
                    lines.append("        return %d" % t_base)
                    break
                terminal = (
                    self._fuse_closer(t_instructions, k)
                    if count < _FUSE_RUN_LIMIT else None
                )
                j, m, base = k, t_m, t_base
                succ = guard if j >= m else base + j
                continue
            if cls is CJump:
                t = self._block_index(function, terminal.if_true, guard)
                f = self._block_index(function, terminal.if_false, guard)
                cond = terminal.cond
                if cond.__class__ is PReg:
                    lines.append(
                        "        return %d if r[%d] != 0 else %d"
                        % (t, cond.index, f)
                    )
                else:
                    lines.append(
                        "        return %d" % (t if cond.value != 0 else f)
                    )
            elif cls is Ret:
                lines.extend([
                    "        cs = vm._call_stack",
                    "        if not cs:",
                    "            raise _Halt",
                    "        n, fp = cs.pop()",
                    "        vm.fp = fp",
                    "        return n",
                ])
            else:  # Call to a known function
                callee = self.module.functions[terminal.callee]
                centry = (
                    callee.entry.code_address - TEXT_BASE
                    if callee.entry.instructions
                    else guard
                )
                after = base + j + 1 if j < m - 1 else guard
                overflow = "stack overflow calling {}".format(callee.name)
                lines.extend([
                    "        cs = vm._call_stack",
                    "        cs.append((%d, vm.fp))" % after,
                    "        if len(cs) > %d:" % MAX_CALL_DEPTH,
                    "            raise ResourceExhausted(",
                    "                'call stack overflow "
                    "(recursion too deep)'",
                    "            )",
                    "        fp = vm.fp - %d" % callee.frame.size,
                    "        if fp < %d:" % self._global_top,
                    "            raise VMError(%r)" % overflow,
                    "        vm.fp = fp",
                    "        return %d" % centry,
                ])
            break
        lines.append("    return _fused")
        source = "\n".join(lines)
        make = _FUSED_CODE_CACHE.get(source)
        if make is None:
            namespace = dict(_FUSE_GLOBALS)
            exec(compile(source, "<fused>", "exec"), namespace)
            make = namespace["_make"]
            if len(_FUSED_CODE_CACHE) < _FUSED_CODE_CACHE_LIMIT:
                _FUSED_CODE_CACHE[source] = make
        return make(self, self.regs), count

    def _compile_instruction(self, ins, nxt, function, offsets, guard):
        """One instruction -> one zero-argument handler closure."""
        regs = self.regs
        vm = self
        cls = ins.__class__

        if cls is BinOp:
            opname = ins.op
            if opname not in _BINOPS:
                def unknown_op(opname=opname):
                    return _BINOPS[opname]  # the historical KeyError
                return unknown_op
            op = _BINOPS[opname]
            d = ins.dest.index
            left, right = ins.left, ins.right
            if left.__class__ is PReg:
                li = left.index
                if right.__class__ is PReg:
                    def h(regs=regs, op=op, d=d, l=li, r=right.index, n=nxt):
                        regs[d] = op(regs[l], regs[r])
                        return n
                else:
                    def h(regs=regs, op=op, d=d, l=li, b=right.value, n=nxt):
                        regs[d] = op(regs[l], b)
                        return n
            else:
                a = left.value
                if right.__class__ is PReg:
                    def h(regs=regs, op=op, d=d, a=a, r=right.index, n=nxt):
                        regs[d] = op(a, regs[r])
                        return n
                else:
                    def h(regs=regs, op=op, d=d, a=a, b=right.value, n=nxt):
                        regs[d] = op(a, b)
                        return n
            return h

        if cls is Move:
            d = ins.dest.index
            src = ins.src
            if src.__class__ is PReg:
                def h(regs=regs, d=d, s=src.index, n=nxt):
                    regs[d] = regs[s]
                    return n
            else:
                def h(regs=regs, d=d, v=src.value, n=nxt):
                    regs[d] = v
                    return n
            return h

        if cls is Load:
            return self._compile_load(ins, nxt, offsets)

        if cls is Store:
            return self._compile_store(ins, nxt, offsets)

        if cls is CJump:
            cond = ins.cond
            t = self._block_index(function, ins.if_true, guard)
            f = self._block_index(function, ins.if_false, guard)
            if cond.__class__ is PReg:
                def h(regs=regs, c=cond.index, t=t, f=f):
                    return t if regs[c] != 0 else f
            else:
                target = t if cond.value != 0 else f
                def h(t=target):
                    return t
            return h

        if cls is Jump:
            target = self._block_index(function, ins.target, guard)

            def h(t=target):
                return t
            return h

        if cls is UnOp:
            d = ins.dest.index
            operand = ins.operand
            negate = ins.op == "neg"
            if operand.__class__ is PReg:
                if negate:
                    def h(regs=regs, d=d, s=operand.index, n=nxt):
                        regs[d] = -regs[s]
                        return n
                else:
                    def h(regs=regs, d=d, s=operand.index, n=nxt):
                        regs[d] = 1 if regs[s] == 0 else 0
                        return n
            else:
                value = -operand.value if negate else (
                    1 if operand.value == 0 else 0
                )

                def h(regs=regs, d=d, v=value, n=nxt):
                    regs[d] = v
                    return n
            return h

        if cls is AddrOfSym:
            d = ins.dest.index
            symbol = ins.symbol
            if symbol.global_address is not None:
                def h(regs=regs, d=d, a=symbol.global_address, n=nxt):
                    regs[d] = a
                    return n
            else:
                def h(regs=regs, d=d, vm=vm, off=offsets[symbol], n=nxt):
                    regs[d] = vm.fp + off
                    return n
            return h

        if cls is Call:
            callee = self.module.functions.get(ins.callee)
            if callee is None:
                def h(name=ins.callee):
                    raise VMError(
                        "call to unknown function {}".format(name)
                    )
                return h
            centry = (
                callee.entry.code_address - TEXT_BASE
                if callee.entry.instructions
                else guard
            )

            def h(
                cs=self._call_stack,
                vm=vm,
                n=nxt,
                size=callee.frame.size,
                ce=centry,
                top=self._global_top,
                cname=callee.name,
            ):
                cs.append((n, vm.fp))
                if len(cs) > MAX_CALL_DEPTH:
                    raise ResourceExhausted(
                        "call stack overflow (recursion too deep)"
                    )
                fp = vm.fp - size
                if fp < top:
                    raise VMError("stack overflow calling {}".format(cname))
                vm.fp = fp
                return ce
            return h

        if cls is Ret:
            def h(cs=self._call_stack, vm=vm):
                if not cs:
                    raise _Halt
                n, fp = cs.pop()
                vm.fp = fp
                return n
            return h

        if cls is Print:
            out = self.output
            src = ins.src
            if src.__class__ is PReg:
                def h(regs=regs, out=out, s=src.index, n=nxt):
                    out.append(regs[s])
                    return n
            else:
                def h(out=out, v=src.value, n=nxt):
                    out.append(v)
                    return n
            return h

        def h(ins=ins):
            raise VMError("cannot execute instruction {!r}".format(ins))
        return h

    def _memory_plan(self):
        """How loads/stores bind the memory system.

        Exact-type :class:`RecordingMemory` (over exact-type
        :class:`FlatMemory`) and exact-type :class:`FlatMemory` get
        inlined fast paths — the flag byte is encoded at compile time
        and the handler talks straight to the trace buffer and the
        word dict.  Anything else (streaming sinks, subclasses) goes
        through ``memory.read``/``memory.write`` unchanged.
        """
        memory = self.memory
        if (
            type(memory) is RecordingMemory
            and type(memory.flat) is FlatMemory
        ):
            return "recording", memory.buffer.append, memory.flat.words
        if type(memory) is FlatMemory:
            return "flat", None, memory.words
        return "generic", None, None

    def _compile_load(self, ins, nxt, offsets):
        from repro.vm.trace import encode_flags

        regs = self.regs
        vm = self
        d = ins.dest.index
        mem = ins.mem
        kind, append, words = self._memory_plan()
        if kind == "recording":
            fb = encode_flags(ins.ref, False)
            get = words.get
        elif kind == "flat":
            get = words.get
        else:
            read = self.memory.read

        if mem.__class__ is SymMem:
            symbol = mem.symbol
            if symbol.global_address is not None:
                address = symbol.global_address
                if kind == "recording":
                    def h(append=append, get=get, regs=regs, d=d,
                          a=address, fb=fb, n=nxt):
                        append(a, fb)
                        regs[d] = get(a, 0)
                        return n
                elif kind == "flat":
                    def h(get=get, regs=regs, d=d, a=address, n=nxt):
                        regs[d] = get(a, 0)
                        return n
                else:
                    def h(read=read, regs=regs, d=d, a=address,
                          ref=ins.ref, n=nxt):
                        regs[d] = read(a, ref)
                        return n
                return h
            off = offsets[symbol]
            if kind == "recording":
                def h(append=append, get=get, regs=regs, vm=vm,
                      d=d, off=off, fb=fb, n=nxt):
                    a = vm.fp + off
                    append(a, fb)
                    regs[d] = get(a, 0)
                    return n
            elif kind == "flat":
                def h(get=get, regs=regs, vm=vm, d=d, off=off, n=nxt):
                    regs[d] = get(vm.fp + off, 0)
                    return n
            else:
                def h(read=read, regs=regs, vm=vm, d=d, off=off,
                      ref=ins.ref, n=nxt):
                    regs[d] = read(vm.fp + off, ref)
                    return n
            return h

        ai = mem.addr.index
        lo, hi = GLOBAL_BASE, self.stack_base
        if kind == "recording":
            def h(append=append, get=get, regs=regs, d=d, ai=ai,
                  lo=lo, hi=hi, fb=fb, ins=ins, n=nxt):
                a = regs[ai]
                if a < lo or a >= hi:
                    raise VMError(
                        "wild memory access at address {} by {!r}".format(
                            a, ins
                        )
                    )
                append(a, fb)
                regs[d] = get(a, 0)
                return n
        elif kind == "flat":
            def h(get=get, regs=regs, d=d, ai=ai, lo=lo, hi=hi,
                  ins=ins, n=nxt):
                a = regs[ai]
                if a < lo or a >= hi:
                    raise VMError(
                        "wild memory access at address {} by {!r}".format(
                            a, ins
                        )
                    )
                regs[d] = get(a, 0)
                return n
        else:
            def h(read=read, regs=regs, d=d, ai=ai, lo=lo, hi=hi,
                  ref=ins.ref, ins=ins, n=nxt):
                a = regs[ai]
                if a < lo or a >= hi:
                    raise VMError(
                        "wild memory access at address {} by {!r}".format(
                            a, ins
                        )
                    )
                regs[d] = read(a, ref)
                return n
        return h

    def _compile_store(self, ins, nxt, offsets):
        from repro.vm.trace import encode_flags

        regs = self.regs
        vm = self
        mem = ins.mem
        src = ins.src
        src_reg = src.index if src.__class__ is PReg else None
        src_val = None if src_reg is not None else src.value
        kind, append, words = self._memory_plan()
        if kind == "recording":
            fb = encode_flags(ins.ref, True)
        if kind == "generic":
            write = self.memory.write

        if mem.__class__ is SymMem:
            symbol = mem.symbol
            if symbol.global_address is not None:
                address = symbol.global_address
                if kind == "recording":
                    if src_reg is not None:
                        def h(append=append, words=words, regs=regs,
                              a=address, s=src_reg, fb=fb, n=nxt):
                            append(a, fb)
                            words[a] = regs[s]
                            return n
                    else:
                        def h(append=append, words=words, a=address,
                              v=src_val, fb=fb, n=nxt):
                            append(a, fb)
                            words[a] = v
                            return n
                elif kind == "flat":
                    if src_reg is not None:
                        def h(words=words, regs=regs, a=address,
                              s=src_reg, n=nxt):
                            words[a] = regs[s]
                            return n
                    else:
                        def h(words=words, a=address, v=src_val, n=nxt):
                            words[a] = v
                            return n
                else:
                    if src_reg is not None:
                        def h(write=write, regs=regs, a=address, s=src_reg,
                              ref=ins.ref, n=nxt):
                            write(a, regs[s], ref)
                            return n
                    else:
                        def h(write=write, a=address, v=src_val,
                              ref=ins.ref, n=nxt):
                            write(a, v, ref)
                            return n
                return h
            off = offsets[symbol]
            if kind == "recording":
                if src_reg is not None:
                    def h(append=append, words=words, regs=regs, vm=vm,
                          off=off, s=src_reg, fb=fb, n=nxt):
                        a = vm.fp + off
                        append(a, fb)
                        words[a] = regs[s]
                        return n
                else:
                    def h(append=append, words=words, vm=vm, off=off,
                          v=src_val, fb=fb, n=nxt):
                        a = vm.fp + off
                        append(a, fb)
                        words[a] = v
                        return n
            elif kind == "flat":
                if src_reg is not None:
                    def h(words=words, regs=regs, vm=vm, off=off,
                          s=src_reg, n=nxt):
                        words[vm.fp + off] = regs[s]
                        return n
                else:
                    def h(words=words, vm=vm, off=off, v=src_val,
                          n=nxt):
                        words[vm.fp + off] = v
                        return n
            else:
                if src_reg is not None:
                    def h(write=write, regs=regs, vm=vm, off=off,
                          s=src_reg, ref=ins.ref, n=nxt):
                        write(vm.fp + off, regs[s], ref)
                        return n
                else:
                    def h(write=write, vm=vm, off=off, v=src_val,
                          ref=ins.ref, n=nxt):
                        write(vm.fp + off, v, ref)
                        return n
            return h

        ai = mem.addr.index
        lo, hi = GLOBAL_BASE, self.stack_base
        if kind == "recording":
            if src_reg is not None:
                def h(append=append, words=words, regs=regs, ai=ai,
                      lo=lo, hi=hi, s=src_reg, fb=fb, ins=ins, n=nxt):
                    a = regs[ai]
                    if a < lo or a >= hi:
                        raise VMError(
                            "wild memory access at address {} by {!r}".format(
                                a, ins
                            )
                        )
                    append(a, fb)
                    words[a] = regs[s]
                    return n
            else:
                def h(append=append, words=words, regs=regs, ai=ai,
                      lo=lo, hi=hi, v=src_val, fb=fb, ins=ins, n=nxt):
                    a = regs[ai]
                    if a < lo or a >= hi:
                        raise VMError(
                            "wild memory access at address {} by {!r}".format(
                                a, ins
                            )
                        )
                    append(a, fb)
                    words[a] = v
                    return n
        elif kind == "flat":
            if src_reg is not None:
                def h(words=words, regs=regs, ai=ai, lo=lo, hi=hi,
                      s=src_reg, ins=ins, n=nxt):
                    a = regs[ai]
                    if a < lo or a >= hi:
                        raise VMError(
                            "wild memory access at address {} by {!r}".format(
                                a, ins
                            )
                        )
                    words[a] = regs[s]
                    return n
            else:
                def h(words=words, regs=regs, ai=ai, lo=lo, hi=hi,
                      v=src_val, ins=ins, n=nxt):
                    a = regs[ai]
                    if a < lo or a >= hi:
                        raise VMError(
                            "wild memory access at address {} by {!r}".format(
                                a, ins
                            )
                        )
                    words[a] = v
                    return n
        else:
            if src_reg is not None:
                def h(write=write, regs=regs, ai=ai, lo=lo, hi=hi,
                      s=src_reg, ref=ins.ref, ins=ins, n=nxt):
                    a = regs[ai]
                    if a < lo or a >= hi:
                        raise VMError(
                            "wild memory access at address {} by {!r}".format(
                                a, ins
                            )
                        )
                    write(a, regs[s], ref)
                    return n
            else:
                def h(write=write, regs=regs, ai=ai, lo=lo, hi=hi,
                      v=src_val, ref=ins.ref, ins=ins, n=nxt):
                    a = regs[ai]
                    if a < lo or a >= hi:
                        raise VMError(
                            "wild memory access at address {} by {!r}".format(
                                a, ins
                            )
                        )
                    write(a, v, ref)
                    return n
        return h

    # ------------------------------------------------------------------

    def set_global(self, name, value, index=None):
        """Initialise a global scalar or array element before running."""
        symbol = self._find_global(name)
        address = symbol.global_address
        if index is not None:
            if not symbol.is_array():
                raise VMError("global {} is not an array".format(name))
            if not 0 <= index < symbol.type.size_words():
                raise VMError("index {} out of range for {}".format(index, name))
            address += index
        self.memory.poke(address, value)

    def get_global(self, name, index=None):
        symbol = self._find_global(name)
        address = symbol.global_address
        if index is not None:
            address += index
        return self.memory.peek(address)

    def _find_global(self, name):
        for symbol in self.module.globals:
            if symbol.name == name:
                return symbol
        raise VMError("no global named {}".format(name))

    # ------------------------------------------------------------------

    def run(self, entry="main", max_steps=None):
        """Execute ``entry()`` to completion; returns ExecutionResult."""
        if entry not in self.module.functions:
            raise VMError("no function named {}".format(entry))
        budget = max_steps if max_steps is not None else self.max_steps
        function = self.module.functions[entry]
        fp = self.stack_base - function.frame.size
        if fp < self._global_top:
            raise VMError("stack overflow on entry")
        self.fp = fp
        self._call_stack.clear()
        handlers = self._handlers
        index = self._entry_index[entry]
        steps = self.steps
        sink = self.instruction_sink

        try:
            if sink is None and self._fast_handlers is not None:
                # Superinstruction table: each handler retires a whole
                # fused run, so fuel is charged by ``costs`` up front.
                # An overrun raises before the run executes; fused ops
                # only touch registers, so nothing visible is lost.
                fast = self._fast_handlers
                costs = self._costs
                while True:
                    steps += costs[index]
                    if steps > budget:
                        self.steps = budget + 1
                        raise ResourceExhausted(
                            "execution exceeded {} steps "
                            "(infinite loop?)".format(budget)
                        )
                    index = fast[index]()
            elif sink is None:
                while True:
                    steps += 1
                    if steps > budget:
                        self.steps = steps
                        raise ResourceExhausted(
                            "execution exceeded {} steps "
                            "(infinite loop?)".format(budget)
                        )
                    index = handlers[index]()
            else:
                while True:
                    sink(TEXT_BASE + index)
                    steps += 1
                    if steps > budget:
                        self.steps = steps
                        raise ResourceExhausted(
                            "execution exceeded {} steps "
                            "(infinite loop?)".format(budget)
                        )
                    index = handlers[index]()
        except _Halt:
            self.steps = steps
            return ExecutionResult(
                return_value=self.regs[self.machine.ret_reg],
                output=self.output,
                steps=steps,
            )

    def _check_address(self, address, instruction):
        if address < GLOBAL_BASE or address >= self.stack_base:
            raise VMError(
                "wild memory access at address {} by {!r}".format(
                    address, instruction
                )
            )


def run_module(module, entry="main", memory=None, machine=MACHINE, **kwargs):
    """Convenience: build a Machine, run ``entry``, return the result."""
    vm = Machine(module, memory=memory, machine=machine, **kwargs)
    return vm.run(entry)
