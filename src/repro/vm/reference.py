"""The per-step dispatch interpreter, kept as a reference oracle.

This is the original :class:`~repro.vm.machine.Machine` hot loop: one
big ``if/elif`` over the instruction class, operand kinds re-examined
on every step.  :mod:`repro.vm.machine` replaced it with closure-
compiled handlers; this copy stays behind for two reasons:

* **Differential testing** — the closure compiler resolves operand
  kinds, frame offsets, jump targets, and memory fast paths at build
  time, which is exactly the kind of translation that can go subtly
  wrong.  Running the same module through both interpreters and
  demanding identical output, steps, registers, and reference traces
  checks the whole translation (``tests/test_vm_reference.py``).
* **Benchmark baseline** — ``benchmarks/bench_onepass.py`` measures
  the closure rework's cold-trace speedup against this loop, live,
  rather than against a number recorded on some other machine.

It reuses the compiled :class:`Machine` for everything but ``run`` —
construction, global initialisation, and code layout are shared, so
the two interpreters execute literally the same module object.
"""

from repro.ir.instructions import (
    AddrOfSym,
    BinOp,
    Call,
    CJump,
    Jump,
    Load,
    Move,
    PReg,
    Print,
    Ret,
    Store,
    SymMem,
    UnOp,
)
from repro.lang.errors import ResourceExhausted, VMError
from repro.vm.machine import (
    _BINOPS,
    MACHINE,
    MAX_CALL_DEPTH,
    ExecutionResult,
    Machine,
)


class ReferenceMachine(Machine):
    """A :class:`Machine` that runs the original dispatch loop."""

    #: The oracle never fuses — it must stay the original semantics
    #: the superinstruction compiler is differentially tested against.
    _enable_fusion = False

    def run(self, entry="main", max_steps=None):
        """Execute ``entry()`` to completion; returns ExecutionResult."""
        if entry not in self.module.functions:
            raise VMError("no function named {}".format(entry))
        budget = max_steps if max_steps is not None else self.max_steps
        function = self.module.functions[entry]
        fp = self.stack_base - function.frame.size
        if fp < self._global_top:
            raise VMError("stack overflow on entry")
        call_stack = []
        offsets = self._offsets[function.name]
        block = function.entry
        instructions = block.instructions
        index = 0
        regs = self.regs
        memory = self.memory
        steps = self.steps
        instruction_sink = self.instruction_sink

        while True:
            instruction = instructions[index]
            if instruction_sink is not None:
                instruction_sink(block.code_address + index)
            index += 1
            steps += 1
            if steps > budget:
                self.steps = steps
                raise ResourceExhausted(
                    "execution exceeded {} steps (infinite loop?)".format(budget)
                )
            cls = instruction.__class__

            if cls is BinOp:
                left = instruction.left
                right = instruction.right
                a = regs[left.index] if left.__class__ is PReg else left.value
                b = regs[right.index] if right.__class__ is PReg else right.value
                regs[instruction.dest.index] = _BINOPS[instruction.op](a, b)
            elif cls is Move:
                src = instruction.src
                regs[instruction.dest.index] = (
                    regs[src.index] if src.__class__ is PReg else src.value
                )
            elif cls is Load:
                mem = instruction.mem
                if mem.__class__ is SymMem:
                    symbol = mem.symbol
                    if symbol.global_address is not None:
                        address = symbol.global_address
                    else:
                        address = fp + offsets[symbol]
                else:
                    address = regs[mem.addr.index]
                    self._check_address(address, instruction)
                regs[instruction.dest.index] = memory.read(
                    address, instruction.ref
                )
            elif cls is Store:
                mem = instruction.mem
                if mem.__class__ is SymMem:
                    symbol = mem.symbol
                    if symbol.global_address is not None:
                        address = symbol.global_address
                    else:
                        address = fp + offsets[symbol]
                else:
                    address = regs[mem.addr.index]
                    self._check_address(address, instruction)
                src = instruction.src
                value = regs[src.index] if src.__class__ is PReg else src.value
                memory.write(address, value, instruction.ref)
            elif cls is CJump:
                cond = instruction.cond
                value = (
                    regs[cond.index] if cond.__class__ is PReg else cond.value
                )
                target = instruction.if_true if value != 0 else instruction.if_false
                block = function.blocks[target]
                instructions = block.instructions
                index = 0
            elif cls is Jump:
                block = function.blocks[instruction.target]
                instructions = block.instructions
                index = 0
            elif cls is UnOp:
                operand = instruction.operand
                value = (
                    regs[operand.index]
                    if operand.__class__ is PReg
                    else operand.value
                )
                if instruction.op == "neg":
                    regs[instruction.dest.index] = -value
                else:
                    regs[instruction.dest.index] = 1 if value == 0 else 0
            elif cls is AddrOfSym:
                symbol = instruction.symbol
                if symbol.global_address is not None:
                    regs[instruction.dest.index] = symbol.global_address
                else:
                    regs[instruction.dest.index] = fp + offsets[symbol]
            elif cls is Call:
                callee = self.module.functions.get(instruction.callee)
                if callee is None:
                    raise VMError(
                        "call to unknown function {}".format(instruction.callee)
                    )
                call_stack.append((function, offsets, block, index, fp))
                if len(call_stack) > MAX_CALL_DEPTH:
                    raise ResourceExhausted(
                        "call stack overflow (recursion too deep)"
                    )
                fp = fp - callee.frame.size
                if fp < self._global_top:
                    raise VMError(
                        "stack overflow calling {}".format(callee.name)
                    )
                function = callee
                offsets = self._offsets[function.name]
                block = function.entry
                instructions = block.instructions
                index = 0
            elif cls is Ret:
                if not call_stack:
                    self.steps = steps
                    return ExecutionResult(
                        return_value=regs[self.machine.ret_reg],
                        output=self.output,
                        steps=steps,
                    )
                function, offsets, block, index, fp = call_stack.pop()
                instructions = block.instructions
            elif cls is Print:
                src = instruction.src
                value = regs[src.index] if src.__class__ is PReg else src.value
                self.output.append(value)
            else:
                raise VMError(
                    "cannot execute instruction {!r}".format(instruction)
                )


def run_module_reference(module, entry="main", memory=None, machine=MACHINE,
                         **kwargs):
    """Convenience mirror of :func:`repro.vm.machine.run_module`."""
    vm = ReferenceMachine(module, memory=memory, machine=machine, **kwargs)
    return vm.run(entry)
