"""Compact memory-reference traces.

A trace event is one data reference: word address plus one flag byte.
Events are stored in parallel ``array`` buffers so multi-million-entry
traces stay cheap; the cache simulators consume either the packed form
directly or :class:`TraceEvent` views.
"""

import struct
import sys
from array import array
from dataclasses import dataclass

from repro.ir.instructions import RefClass, RefOrigin
from repro.lang.errors import ResourceExhausted

#: On-disk trace formats.  Both share the header (magic, format
#: version, event count); the payloads differ:
#:
#: * ``RPTRACE1`` — the address array verbatim (little-endian int64)
#:   followed by the flag array (one byte per event).
#: * ``RPTRACE2`` (written by default) — each address as the zigzag
#:   varint of its delta from the previous event's address (the first
#:   event is relative to zero), followed by the raw flag bytes.
#:   Reference streams walk arrays and stack frames in small strides,
#:   so most deltas fit one varint byte and traces shrink several-fold
#:   (``benchmarks/bench_onepass.py`` records the measured ratio).
#:
#: :meth:`TraceBuffer.from_bytes` auto-detects the format by magic, so
#: artifacts written before the codec change stay readable.  Version
#: bumps whenever the flag-byte encoding above changes, so a stale
#: artifact can never be replayed under the wrong semantics.
TRACE_MAGIC_V1 = b"RPTRACE1"
TRACE_FORMAT_VERSION_V1 = 1
TRACE_MAGIC = b"RPTRACE2"
TRACE_FORMAT_VERSION = 2
_HEADER = struct.Struct("<8sIQ")

#: 64-bit wrap mask: the delta codec works in uint64 arithmetic so the
#: NumPy fast path and the pure-Python fallback agree bit-for-bit even
#: on adversarial address extremes.
_U64 = (1 << 64) - 1

#: Default cap on buffered trace events.  Each event costs nine bytes
#: (an int64 address plus a flag byte), so the default bounds one
#: buffer at roughly 1.8 GB — far above any shipped workload
#: (paper-scale runs stay in the tens of millions) but low enough to
#: fail with a clean :class:`ResourceExhausted` instead of an OOM kill
#: when a runaway program floods the recorder.
DEFAULT_MAX_EVENTS = 200_000_000

FLAG_WRITE = 0x01
FLAG_BYPASS = 0x02
FLAG_KILL = 0x04
FLAG_AMBIGUOUS = 0x08
ORIGIN_SHIFT = 4
ORIGIN_MASK = 0x70
#: Set on instruction-fetch events in combined I+D traces.  Instruction
#: references always go through the cache in the unified model (there
#: is no "execute register" instruction, Section 2.3), so the bit only
#: classifies; it never changes cache behaviour.
FLAG_INSTRUCTION = 0x80

_ORIGIN_CODES = {
    RefOrigin.USER: 0,
    RefOrigin.SPILL: 1,
    RefOrigin.CALLEE_SAVE: 2,
    RefOrigin.ARG_HOME: 3,
}
_CODE_ORIGINS = {code: origin for origin, code in _ORIGIN_CODES.items()}


def encode_flags(ref, is_write):
    """Pack a :class:`RefInfo` plus direction into one flag byte."""
    flags = FLAG_WRITE if is_write else 0
    if ref.bypass:
        flags |= FLAG_BYPASS
    if ref.kill:
        flags |= FLAG_KILL
    if ref.ref_class is RefClass.AMBIGUOUS:
        flags |= FLAG_AMBIGUOUS
    flags |= _ORIGIN_CODES[ref.origin] << ORIGIN_SHIFT
    return flags


def origin_from_flags(flags):
    return _CODE_ORIGINS[(flags & ORIGIN_MASK) >> ORIGIN_SHIFT]


@dataclass(frozen=True)
class TraceEvent:
    """An unpacked view of one reference, for tests and small tools."""

    address: int
    is_write: bool
    bypass: bool
    kill: bool
    ambiguous: bool
    origin: RefOrigin
    is_instruction: bool = False

    @classmethod
    def from_packed(cls, address, flags):
        return cls(
            address=address,
            is_write=bool(flags & FLAG_WRITE),
            bypass=bool(flags & FLAG_BYPASS),
            kill=bool(flags & FLAG_KILL),
            ambiguous=bool(flags & FLAG_AMBIGUOUS),
            origin=origin_from_flags(flags),
            is_instruction=bool(flags & FLAG_INSTRUCTION),
        )


def _encode_deltas(addresses):
    """Zigzag-varint encode previous-address deltas (RPTRACE2 body).

    All arithmetic wraps at 64 bits so the NumPy path and the
    pure-Python fallback produce identical bytes.
    """
    try:
        import numpy
    except Exception:  # pragma: no cover - exercised off-image
        numpy = None
    if numpy is None or not len(addresses):
        return _encode_deltas_py(addresses)
    addrs = numpy.frombuffer(addresses.tobytes(), dtype=numpy.int64)
    if sys.byteorder != "little":  # pragma: no cover - big-endian hosts
        addrs = addrs.byteswap()
    deltas = numpy.diff(addrs, prepend=addrs.dtype.type(0))
    zig = ((deltas << 1) ^ (deltas >> 63)).astype(numpy.uint64)
    # Varint width of each value: one byte per started 7-bit group.
    widths = numpy.ones(len(zig), dtype=numpy.int64)
    for bits in range(7, 70, 7):
        widths += zig >= numpy.uint64(1) << numpy.uint64(bits)
    out = numpy.zeros(int(widths.sum()), dtype=numpy.uint8)
    starts = numpy.cumsum(widths) - widths
    for k in range(int(widths.max())):
        mask = widths > k
        group = (zig[mask] >> numpy.uint64(7 * k)) & numpy.uint64(0x7F)
        cont = (widths[mask] > k + 1).astype(numpy.uint8) << 7
        out[starts[mask] + k] = group.astype(numpy.uint8) | cont
    return out.tobytes()


def _encode_deltas_py(addresses):
    out = bytearray()
    previous = 0
    for address in addresses:
        delta = (address - previous) & _U64
        previous = address
        if delta >= 1 << 63:
            delta -= 1 << 64
        zig = ((delta << 1) ^ (delta >> 63)) & _U64
        while zig > 0x7F:
            out.append(0x80 | (zig & 0x7F))
            zig >>= 7
        out.append(zig)
    return bytes(out)


def _decode_deltas(payload, count):
    """Decode an RPTRACE2 varint body into an ``array('q')``.

    Raises :class:`ValueError` unless the payload holds exactly
    ``count`` well-formed varints.
    """
    try:
        import numpy
    except Exception:  # pragma: no cover - exercised off-image
        numpy = None
    if numpy is None or not count:
        return _decode_deltas_py(payload, count)
    data = numpy.frombuffer(bytes(payload), dtype=numpy.uint8)
    ends = numpy.flatnonzero(data < 0x80)
    if len(ends) != count or (len(data) and ends[-1] != len(data) - 1):
        raise ValueError("corrupt trace: varint stream does not hold "
                         "the promised event count")
    starts = numpy.empty(count, dtype=numpy.int64)
    starts[0] = 0
    starts[1:] = ends[:-1] + 1
    widths = ends - starts + 1
    if int(widths.max()) > 10:
        raise ValueError("corrupt trace: varint wider than 64 bits")
    zig = numpy.zeros(count, dtype=numpy.uint64)
    for k in range(int(widths.max())):
        mask = widths > k
        zig[mask] |= (
            (data[starts[mask] + k] & numpy.uint64(0x7F))
            << numpy.uint64(7 * k)
        )
    deltas = (zig >> numpy.uint64(1)).astype(numpy.int64) ^ -(
        (zig & numpy.uint64(1)).astype(numpy.int64)
    )
    addrs = numpy.cumsum(deltas, dtype=numpy.int64)
    out = array("q")
    out.frombytes(addrs.tobytes())  # native order on both sides
    return out


def _decode_deltas_py(payload, count):
    out = array("q")
    position = 0
    previous = 0
    data = bytes(payload)
    for _ in range(count):
        zig = 0
        shift = 0
        while True:
            if position >= len(data) or shift > 63:
                raise ValueError(
                    "corrupt trace: varint stream does not hold the "
                    "promised event count"
                )
            byte = data[position]
            position += 1
            zig |= (byte & 0x7F) << shift
            if not byte & 0x80:
                break
            shift += 7
        zig &= _U64
        delta = (zig >> 1) ^ -(zig & 1)
        previous = (previous + delta) & _U64
        value = previous
        if value >= 1 << 63:
            value -= 1 << 64
        out.append(value)
    if position != len(data):
        raise ValueError("corrupt trace: trailing bytes after the "
                         "varint stream")
    return out


class TraceBuffer:
    """Parallel-array storage for a data-reference trace.

    ``max_events`` caps the buffer's growth; exceeding it raises
    :class:`ResourceExhausted` (``None`` disables the cap entirely).
    """

    def __init__(self, max_events=DEFAULT_MAX_EVENTS):
        self.addresses = array("q")
        self.flags = array("B")
        self.max_events = max_events
        self._events = None
        self._columns = None
        self._partitions = None

    def append(self, address, flags):
        if self.max_events is not None and len(self.addresses) >= self.max_events:
            raise ResourceExhausted(
                "trace buffer exceeded {} events "
                "(runaway reference stream?)".format(self.max_events)
            )
        if (
            self._events is not None
            or self._columns is not None
            or self._partitions is not None
        ):
            self._events = None
            self._columns = None
            self._partitions = None
        self.addresses.append(address)
        self.flags.append(flags)

    def __len__(self):
        return len(self.addresses)

    def __iter__(self):
        """Yield packed ``(address, flags)`` pairs."""
        return zip(self.addresses, self.flags)

    def events(self):
        """The unpacked :class:`TraceEvent` list.

        Decoded once and cached — repeated consumers (fuzzer
        cross-checks, cross-validation audits) iterate the same tuple.
        :meth:`append` invalidates the cache.
        """
        if self._events is None:
            self._events = tuple(
                TraceEvent.from_packed(address, flags)
                for address, flags in self
            )
        return self._events

    def to_columns(self):
        """The packed stream as flat ``(addresses, flags)`` columns.

        Returns NumPy int64/uint8 arrays when NumPy is importable,
        otherwise the underlying ``array`` objects.  The result is
        cached (and invalidated by :meth:`append`); callers must treat
        it as read-only — the replay engines and the stack-distance
        profiler all share one decode.
        """
        if self._columns is None:
            try:
                import numpy
            except Exception:  # pragma: no cover - exercised off-image
                self._columns = (self.addresses, self.flags)
            else:
                # tobytes() detaches the columns from the live arrays:
                # exporting the arrays' own buffers would make a later
                # append raise BufferError while a caller held them.
                self._columns = (
                    numpy.frombuffer(
                        self.addresses.tobytes(), dtype=numpy.int64
                    ),
                    numpy.frombuffer(self.flags.tobytes(), dtype=numpy.uint8),
                )
        return self._columns

    def set_partition(self, num_sets, line_words=1):
        """A stable argsort of the trace by cache-set index.

        Returns a NumPy int64 permutation that groups events set-major
        (all of set 0's events in time order, then set 1's, ...), or
        ``None`` when NumPy is unavailable.  The sort key is
        ``(address // line_words) % num_sets`` — the set index every
        replay engine derives — so one partition is shared by the
        stack-distance profiler's run collapse and the vectorized
        set-major kernels for every flavor of the same geometry.
        Cached per ``(num_sets, line_words)`` and invalidated by
        :meth:`append`; callers must treat the array as read-only.
        """
        key = (int(num_sets), int(line_words))
        if self._partitions is not None and key in self._partitions:
            return self._partitions[key]
        try:
            import numpy
        except Exception:  # pragma: no cover - exercised off-image
            return None
        addresses, _ = self.to_columns()
        if not isinstance(addresses, numpy.ndarray):  # pragma: no cover
            return None
        blocks = addresses if line_words == 1 else addresses // line_words
        order = numpy.argsort(blocks % num_sets, kind="stable")
        if self._partitions is None:
            self._partitions = {}
        self._partitions[key] = order
        return order

    # -- serialization -------------------------------------------------

    def to_bytes(self, version=TRACE_FORMAT_VERSION):
        """Serialize to the versioned on-disk format.

        ``version=2`` (default) writes the zigzag-varint delta codec;
        ``version=1`` writes the verbatim little-endian layout for
        tooling that predates the codec.
        """
        if version == TRACE_FORMAT_VERSION:
            return b"".join(
                [
                    _HEADER.pack(TRACE_MAGIC, TRACE_FORMAT_VERSION,
                                 len(self)),
                    _encode_deltas(self.addresses),
                    self.flags.tobytes(),
                ]
            )
        if version == TRACE_FORMAT_VERSION_V1:
            addresses = self.addresses
            if sys.byteorder != "little":
                addresses = array("q", addresses)
                addresses.byteswap()
            return b"".join(
                [
                    _HEADER.pack(TRACE_MAGIC_V1, TRACE_FORMAT_VERSION_V1,
                                 len(self)),
                    addresses.tobytes(),
                    self.flags.tobytes(),
                ]
            )
        raise ValueError("unknown trace format version {!r}".format(version))

    @classmethod
    def from_bytes(cls, data, max_events=DEFAULT_MAX_EVENTS):
        """Rebuild a buffer serialized by :meth:`to_bytes`.

        The format is detected from the magic, so both RPTRACE2 and
        legacy RPTRACE1 payloads load.  Raises :class:`ValueError` on
        a truncated, corrupted, or wrong-version payload rather than
        returning a bad trace.
        """
        if len(data) < _HEADER.size:
            raise ValueError("trace data shorter than its header")
        magic, version, count = _HEADER.unpack_from(data)
        if magic == TRACE_MAGIC:
            expected_version = TRACE_FORMAT_VERSION
        elif magic == TRACE_MAGIC_V1:
            expected_version = TRACE_FORMAT_VERSION_V1
        else:
            raise ValueError("not a serialized trace (bad magic)")
        if version != expected_version:
            raise ValueError(
                "trace format version {} unsupported (expected {})".format(
                    version, expected_version
                )
            )

        buffer = cls(max_events=max_events)
        if version == TRACE_FORMAT_VERSION_V1:
            expected = _HEADER.size + count * 9
            if len(data) != expected:
                raise ValueError(
                    "trace payload is {} bytes, header promises {}".format(
                        len(data), expected
                    )
                )
            split = _HEADER.size + count * 8
            buffer.addresses.frombytes(data[_HEADER.size:split])
            if sys.byteorder != "little":
                buffer.addresses.byteswap()
            buffer.flags.frombytes(data[split:])
            return buffer

        payload = data[_HEADER.size:]
        if len(payload) < count:
            raise ValueError(
                "trace payload is {} bytes, too short for {} flag "
                "bytes".format(len(payload), count)
            )
        split = len(payload) - count
        buffer.addresses = _decode_deltas(payload[:split], count)
        buffer.flags.frombytes(payload[split:])
        return buffer

    def save(self, path):
        """Write the serialized trace to ``path`` (see :meth:`to_bytes`)."""
        with open(path, "wb") as handle:
            handle.write(self.to_bytes())

    @classmethod
    def load(cls, path, max_events=DEFAULT_MAX_EVENTS):
        """Read a trace written by :meth:`save`."""
        with open(path, "rb") as handle:
            return cls.from_bytes(handle.read(), max_events=max_events)

    def summary(self):
        """Counts used by the dynamic-classification experiment.

        Instruction-fetch events (combined traces) are reported under
        ``instructions`` and excluded from every data-reference count.
        """
        writes = 0
        bypassed = 0
        killed = 0
        ambiguous = 0
        instructions = 0
        by_origin = {origin: 0 for origin in _ORIGIN_CODES}
        for flags in self.flags:
            if flags & FLAG_INSTRUCTION:
                instructions += 1
                continue
            if flags & FLAG_WRITE:
                writes += 1
            if flags & FLAG_BYPASS:
                bypassed += 1
            if flags & FLAG_KILL:
                killed += 1
            if flags & FLAG_AMBIGUOUS:
                ambiguous += 1
            by_origin[origin_from_flags(flags)] += 1
        total = len(self) - instructions
        return {
            "total": total,
            "reads": total - writes,
            "writes": writes,
            "bypassed": bypassed,
            "killed": killed,
            "ambiguous": ambiguous,
            "unambiguous": total - ambiguous,
            "instructions": instructions,
            "by_origin": {
                origin.value: count for origin, count in by_origin.items()
            },
        }
