"""Compact memory-reference traces.

A trace event is one data reference: word address plus one flag byte.
Events are stored in parallel ``array`` buffers so multi-million-entry
traces stay cheap; the cache simulators consume either the packed form
directly or :class:`TraceEvent` views.
"""

import struct
import sys
from array import array
from dataclasses import dataclass

from repro.ir.instructions import RefClass, RefOrigin
from repro.lang.errors import ResourceExhausted

#: On-disk trace format: magic, format version, event count.  Payload
#: is the address array (little-endian int64) followed by the flag
#: array (one byte per event).  Version bumps whenever the flag-byte
#: encoding above changes, so a stale artifact can never be replayed
#: under the wrong semantics.
TRACE_MAGIC = b"RPTRACE1"
TRACE_FORMAT_VERSION = 1
_HEADER = struct.Struct("<8sIQ")

#: Default cap on buffered trace events.  Each event costs nine bytes
#: (an int64 address plus a flag byte), so the default bounds one
#: buffer at roughly 1.8 GB — far above any shipped workload
#: (paper-scale runs stay in the tens of millions) but low enough to
#: fail with a clean :class:`ResourceExhausted` instead of an OOM kill
#: when a runaway program floods the recorder.
DEFAULT_MAX_EVENTS = 200_000_000

FLAG_WRITE = 0x01
FLAG_BYPASS = 0x02
FLAG_KILL = 0x04
FLAG_AMBIGUOUS = 0x08
ORIGIN_SHIFT = 4
ORIGIN_MASK = 0x70
#: Set on instruction-fetch events in combined I+D traces.  Instruction
#: references always go through the cache in the unified model (there
#: is no "execute register" instruction, Section 2.3), so the bit only
#: classifies; it never changes cache behaviour.
FLAG_INSTRUCTION = 0x80

_ORIGIN_CODES = {
    RefOrigin.USER: 0,
    RefOrigin.SPILL: 1,
    RefOrigin.CALLEE_SAVE: 2,
    RefOrigin.ARG_HOME: 3,
}
_CODE_ORIGINS = {code: origin for origin, code in _ORIGIN_CODES.items()}


def encode_flags(ref, is_write):
    """Pack a :class:`RefInfo` plus direction into one flag byte."""
    flags = FLAG_WRITE if is_write else 0
    if ref.bypass:
        flags |= FLAG_BYPASS
    if ref.kill:
        flags |= FLAG_KILL
    if ref.ref_class is RefClass.AMBIGUOUS:
        flags |= FLAG_AMBIGUOUS
    flags |= _ORIGIN_CODES[ref.origin] << ORIGIN_SHIFT
    return flags


def origin_from_flags(flags):
    return _CODE_ORIGINS[(flags & ORIGIN_MASK) >> ORIGIN_SHIFT]


@dataclass(frozen=True)
class TraceEvent:
    """An unpacked view of one reference, for tests and small tools."""

    address: int
    is_write: bool
    bypass: bool
    kill: bool
    ambiguous: bool
    origin: RefOrigin
    is_instruction: bool = False

    @classmethod
    def from_packed(cls, address, flags):
        return cls(
            address=address,
            is_write=bool(flags & FLAG_WRITE),
            bypass=bool(flags & FLAG_BYPASS),
            kill=bool(flags & FLAG_KILL),
            ambiguous=bool(flags & FLAG_AMBIGUOUS),
            origin=origin_from_flags(flags),
            is_instruction=bool(flags & FLAG_INSTRUCTION),
        )


class TraceBuffer:
    """Parallel-array storage for a data-reference trace.

    ``max_events`` caps the buffer's growth; exceeding it raises
    :class:`ResourceExhausted` (``None`` disables the cap entirely).
    """

    def __init__(self, max_events=DEFAULT_MAX_EVENTS):
        self.addresses = array("q")
        self.flags = array("B")
        self.max_events = max_events
        self._events = None
        self._columns = None

    def append(self, address, flags):
        if self.max_events is not None and len(self.addresses) >= self.max_events:
            raise ResourceExhausted(
                "trace buffer exceeded {} events "
                "(runaway reference stream?)".format(self.max_events)
            )
        if self._events is not None or self._columns is not None:
            self._events = None
            self._columns = None
        self.addresses.append(address)
        self.flags.append(flags)

    def __len__(self):
        return len(self.addresses)

    def __iter__(self):
        """Yield packed ``(address, flags)`` pairs."""
        return zip(self.addresses, self.flags)

    def events(self):
        """The unpacked :class:`TraceEvent` list.

        Decoded once and cached — repeated consumers (fuzzer
        cross-checks, cross-validation audits) iterate the same tuple.
        :meth:`append` invalidates the cache.
        """
        if self._events is None:
            self._events = tuple(
                TraceEvent.from_packed(address, flags)
                for address, flags in self
            )
        return self._events

    def to_columns(self):
        """The packed stream as flat ``(addresses, flags)`` columns.

        Returns NumPy int64/uint8 arrays when NumPy is importable,
        otherwise the underlying ``array`` objects.  The result is
        cached (and invalidated by :meth:`append`); callers must treat
        it as read-only — the replay engines and the stack-distance
        profiler all share one decode.
        """
        if self._columns is None:
            try:
                import numpy
            except Exception:  # pragma: no cover - exercised off-image
                self._columns = (self.addresses, self.flags)
            else:
                # tobytes() detaches the columns from the live arrays:
                # exporting the arrays' own buffers would make a later
                # append raise BufferError while a caller held them.
                self._columns = (
                    numpy.frombuffer(
                        self.addresses.tobytes(), dtype=numpy.int64
                    ),
                    numpy.frombuffer(self.flags.tobytes(), dtype=numpy.uint8),
                )
        return self._columns

    # -- serialization -------------------------------------------------

    def to_bytes(self):
        """Serialize to the versioned on-disk format (little-endian)."""
        addresses = self.addresses
        if sys.byteorder != "little":
            addresses = array("q", addresses)
            addresses.byteswap()
        return b"".join(
            [
                _HEADER.pack(TRACE_MAGIC, TRACE_FORMAT_VERSION, len(self)),
                addresses.tobytes(),
                self.flags.tobytes(),
            ]
        )

    @classmethod
    def from_bytes(cls, data, max_events=DEFAULT_MAX_EVENTS):
        """Rebuild a buffer serialized by :meth:`to_bytes`.

        Raises :class:`ValueError` on a truncated, corrupted, or
        wrong-version payload rather than returning a bad trace.
        """
        if len(data) < _HEADER.size:
            raise ValueError("trace data shorter than its header")
        magic, version, count = _HEADER.unpack_from(data)
        if magic != TRACE_MAGIC:
            raise ValueError("not a serialized trace (bad magic)")
        if version != TRACE_FORMAT_VERSION:
            raise ValueError(
                "trace format version {} unsupported (expected {})".format(
                    version, TRACE_FORMAT_VERSION
                )
            )
        expected = _HEADER.size + count * 9
        if len(data) != expected:
            raise ValueError(
                "trace payload is {} bytes, header promises {}".format(
                    len(data), expected
                )
            )
        buffer = cls(max_events=max_events)
        split = _HEADER.size + count * 8
        buffer.addresses.frombytes(data[_HEADER.size:split])
        if sys.byteorder != "little":
            buffer.addresses.byteswap()
        buffer.flags.frombytes(data[split:])
        return buffer

    def save(self, path):
        """Write the serialized trace to ``path`` (see :meth:`to_bytes`)."""
        with open(path, "wb") as handle:
            handle.write(self.to_bytes())

    @classmethod
    def load(cls, path, max_events=DEFAULT_MAX_EVENTS):
        """Read a trace written by :meth:`save`."""
        with open(path, "rb") as handle:
            return cls.from_bytes(handle.read(), max_events=max_events)

    def summary(self):
        """Counts used by the dynamic-classification experiment.

        Instruction-fetch events (combined traces) are reported under
        ``instructions`` and excluded from every data-reference count.
        """
        writes = 0
        bypassed = 0
        killed = 0
        ambiguous = 0
        instructions = 0
        by_origin = {origin: 0 for origin in _ORIGIN_CODES}
        for flags in self.flags:
            if flags & FLAG_INSTRUCTION:
                instructions += 1
                continue
            if flags & FLAG_WRITE:
                writes += 1
            if flags & FLAG_BYPASS:
                bypassed += 1
            if flags & FLAG_KILL:
                killed += 1
            if flags & FLAG_AMBIGUOUS:
                ambiguous += 1
            by_origin[origin_from_flags(flags)] += 1
        total = len(self) - instructions
        return {
            "total": total,
            "reads": total - writes,
            "writes": writes,
            "bypassed": bypassed,
            "killed": killed,
            "ambiguous": ambiguous,
            "unambiguous": total - ambiguous,
            "instructions": instructions,
            "by_origin": {
                origin.value: count for origin, count in by_origin.items()
            },
        }
