"""Memory systems the VM can run against."""

from repro.vm.trace import TraceBuffer, encode_flags


class MemorySystem:
    """Interface: word reads/writes annotated with the RefInfo."""

    def read(self, address, ref):
        raise NotImplementedError

    def write(self, address, value, ref):
        raise NotImplementedError


class FlatMemory(MemorySystem):
    """Plain word-addressed memory; the functional oracle."""

    def __init__(self):
        self.words = {}

    def read(self, address, ref):
        return self.words.get(address, 0)

    def write(self, address, value, ref):
        self.words[address] = value

    def poke(self, address, value):
        """Direct initialisation (no RefInfo, not traced)."""
        self.words[address] = value

    def peek(self, address):
        return self.words.get(address, 0)


class RecordingMemory(MemorySystem):
    """Flat memory that records every reference into a TraceBuffer.

    ``max_events`` bounds the freshly created buffer (ignored when an
    explicit ``buffer`` is supplied); see
    :data:`repro.vm.trace.DEFAULT_MAX_EVENTS`.
    """

    def __init__(self, flat=None, buffer=None, max_events=None):
        self.flat = flat if flat is not None else FlatMemory()
        if buffer is None:
            buffer = (
                TraceBuffer(max_events=max_events)
                if max_events is not None
                else TraceBuffer()
            )
        self.buffer = buffer

    def read(self, address, ref):
        self.buffer.append(address, encode_flags(ref, False))
        return self.flat.words.get(address, 0)

    def write(self, address, value, ref):
        self.buffer.append(address, encode_flags(ref, True))
        self.flat.words[address] = value

    def poke(self, address, value):
        self.flat.poke(address, value)

    def peek(self, address):
        return self.flat.peek(address)


class StreamingMemory(MemorySystem):
    """Flat memory that feeds an online cache simulator as it runs.

    ``sink`` must expose ``access(address, is_write, bypass, kill)``;
    :class:`repro.cache.Cache` does.
    """

    def __init__(self, sink, flat=None):
        self.flat = flat if flat is not None else FlatMemory()
        self.sink = sink

    def read(self, address, ref):
        self.sink.access(address, False, ref.bypass, ref.kill)
        return self.flat.words.get(address, 0)

    def write(self, address, value, ref):
        self.sink.access(address, True, ref.bypass, ref.kill)
        self.flat.words[address] = value

    def poke(self, address, value):
        self.flat.poke(address, value)

    def peek(self, address):
        return self.flat.peek(address)
