"""Register-machine interpreter and memory-reference tracing.

The :class:`Machine` executes fully allocated IR (physical registers
only) and drives every data access through a pluggable
:class:`MemorySystem`.  Swapping the memory system is how the harness
obtains its different views of the same execution:

* :class:`FlatMemory` — plain words, fastest, used as the functional
  oracle;
* :class:`RecordingMemory` — flat memory plus a compact
  :class:`TraceBuffer` of every data reference for offline cache
  simulation (including Belady MIN, which needs the future);
* :class:`StreamingMemory` — flat memory feeding an online cache
  simulator without materialising the trace;
* :class:`repro.cache.functional.DataCachedMemory` — a cache that
  actually holds the data, used to *prove* the unified protocol
  (bypass + kill bits) never changes program results.
"""

from repro.vm.memory import FlatMemory, MemorySystem, RecordingMemory, StreamingMemory
from repro.vm.machine import ExecutionResult, Machine, run_module
from repro.vm.trace import (
    FLAG_AMBIGUOUS,
    FLAG_BYPASS,
    FLAG_KILL,
    FLAG_WRITE,
    ORIGIN_SHIFT,
    TraceBuffer,
    TraceEvent,
    encode_flags,
    origin_from_flags,
)

__all__ = [
    "Machine",
    "ExecutionResult",
    "run_module",
    "MemorySystem",
    "FlatMemory",
    "RecordingMemory",
    "StreamingMemory",
    "TraceBuffer",
    "TraceEvent",
    "encode_flags",
    "origin_from_flags",
    "FLAG_WRITE",
    "FLAG_BYPASS",
    "FLAG_KILL",
    "FLAG_AMBIGUOUS",
    "ORIGIN_SHIFT",
]
