"""The unified error hierarchy for the whole pipeline.

Every error the repro system raises deliberately derives from
:class:`ReproError` and carries a ``stage`` tag naming the pipeline
layer that produced it (``lex``, ``parse``, ``sema``, ``lower``,
``alias``, ``regalloc``, ``classify``, ``annotate``, ``verify``,
``vm``, ``limits`` ...).  Anything *else* escaping a pipeline stage —
a ``KeyError``, an ``AssertionError`` from a broken invariant — is a
bug; :func:`pipeline_stage` converts it into an :class:`InternalError`
so callers (the fuzz driver, the evaluation harness) can classify the
failure without pattern-matching arbitrary exception types.

This module is dependency-free; the frontend error types in
:mod:`repro.lang.errors` subclass :class:`ReproError`.
"""

import contextlib


class ReproError(Exception):
    """Base class for every structured error raised by the pipeline.

    ``stage`` is a class-level default that subclasses override; the
    instance attribute wins when a stage guard re-tags an error that
    did not know where it was raised.
    """

    stage = "unknown"

    def __init__(self, message):
        self.message = message
        super().__init__(message)


class ResourceExhausted(ReproError):
    """An execution budget ran out: VM fuel, trace memory, recursion.

    Raised *instead of* hanging or exhausting host memory; the work is
    abandoned cleanly and the partial state is discarded.  The VM's
    fuel variant (:class:`repro.lang.errors.ResourceExhausted`) is also
    a ``VMError`` so existing ``except VMError`` sites keep working.
    """

    stage = "limits"


class FaultInjected(ReproError):
    """A deliberate failure planted by :mod:`repro.faultinject`.

    Chaos runs tag these with stage ``faultinject`` so fuzzer crash
    records and failure summaries distinguish an injected fault (the
    schedule working as designed) from a real pipeline bug.  Hardened
    layers treat the class as *transient*: retry, degrade, or
    quarantine — never a wrong result.
    """

    stage = "faultinject"


class WorkerQuarantined(ReproError):
    """A work unit was quarantined after exhausting its retry budget.

    Carries the unit name, the attempt count, and the signature of the
    last failure; the supervised pool records (not raises) these when a
    ``failures`` collector is present, so one poisoned unit costs one
    row, not the sweep.
    """

    stage = "quarantine"

    def __init__(self, item, attempts, last_error):
        self.item = item
        self.attempts = attempts
        self.last_error_type = type(last_error).__name__
        self.last_stage = getattr(last_error, "stage", "unknown")
        super().__init__(
            "unit {!r} quarantined after {} attempt(s); last failure: "
            "{}: {}".format(item, attempts, self.last_error_type, last_error)
        )


class InternalError(ReproError):
    """An unexpected exception escaped a pipeline stage.

    Wraps the original exception (also chained via ``__cause__``) and
    records which stage it escaped from, so a crash anywhere in the
    pipeline surfaces as one classifiable error type.
    """

    def __init__(self, stage, original):
        self.stage = stage
        self.original = original
        self.original_type = type(original).__name__
        super().__init__(
            "internal error in stage '{}': {}: {}".format(
                stage, self.original_type, original
            )
        )


@contextlib.contextmanager
def pipeline_stage(name):
    """Tag errors escaping the guarded block with the stage ``name``.

    Structured :class:`ReproError` exceptions pass through (gaining the
    stage tag if they have none); any other ``Exception`` is wrapped in
    an :class:`InternalError` chained to the original.
    """
    try:
        yield
    except ReproError as error:
        if getattr(error, "stage", "unknown") == "unknown":
            error.stage = name
        raise
    except Exception as error:
        raise InternalError(name, error) from error


def failure_record(section, item, error):
    """A JSON-friendly description of one recorded (not raised) failure.

    The evaluation harness appends these to its ``failures`` list when
    a benchmark or report section breaks, so one bad workload degrades
    the report instead of killing it.
    """
    error_type, stage, kind, original_type = error_signature(error)
    return {
        "section": section,
        "item": item,
        "error_type": error_type,
        "stage": stage,
        "kind": kind,
        "original_type": original_type,
        "message": str(error),
    }


def error_signature(error):
    """A compact, message-free classification of a failure.

    Used by the fuzz driver and the delta-debugging reducer to decide
    whether two failures are "the same bug": same type, same stage,
    same kind (differential checks set ``kind``), same wrapped type
    for internal errors.
    """
    return (
        type(error).__name__,
        getattr(error, "stage", "unknown"),
        getattr(error, "kind", None),
        getattr(error, "original_type", None),
    )
