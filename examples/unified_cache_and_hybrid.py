#!/usr/bin/env python
"""Two results beyond Figure 5.

1. Combined I+D cache (the abstract's "cache effectiveness is
   improved"): bypassing unambiguous data stops it from evicting
   instruction words, so the *instruction* hit rate rises.

2. The hybrid policy (this repository's extension): bypass only
   register-boundary traffic, keep memory-resident unambiguous values
   in the cache with kill bits.  It dominates the pure policy on total
   memory access time and rescues call-dense code (towers).

Run:  python examples/unified_cache_and_hybrid.py
"""

from repro.cache.cache import CacheConfig
from repro.cache.replay import replay_trace
from repro.cache.timing import (
    LatencyModel,
    access_time_speedup,
    value_reference_time,
)
from repro.evalharness.tables import format_table
from repro.evalharness.unifiedcache import unified_cache_comparison
from repro.programs import BENCHMARK_NAMES, get_benchmark
from repro.unified.pipeline import CompilationOptions, compile_source
from repro.vm.memory import RecordingMemory


def combined_cache_demo():
    print("=== combined I+D cache: instruction hit rate ===")
    rows = []
    for name, size in (("queen", 128), ("towers", 128), ("towers", 256)):
        row = unified_cache_comparison(name, size_words=size)
        rows.append([
            "{} @ {} words".format(name, size),
            "{:.4f}".format(row["conventional_i_hit_rate"]),
            "{:.4f}".format(row["unified_i_hit_rate"]),
        ])
    print(format_table(
        ["workload", "conventional", "unified (bypass on)"], rows
    ))
    print()


def hybrid_demo():
    print("=== access-time speedup: pure bypass vs hybrid ===")
    model = LatencyModel()
    rows = []
    for name in BENCHMARK_NAMES:
        bench = get_benchmark(name)
        cycles = {}
        refs = {}
        for label, options, honor in (
            ("conv",
             CompilationOptions(scheme="conventional", promotion="none"),
             False),
            ("pure",
             CompilationOptions(scheme="unified", promotion="aggressive"),
             True),
            ("hybrid",
             CompilationOptions(scheme="unified", promotion="aggressive",
                                bypass_user_refs=False),
             True),
        ):
            program = compile_source(bench.source, options)
            memory = RecordingMemory()
            result = program.run(memory=memory)
            assert tuple(result.output) == bench.expected_output
            stats = replay_trace(
                memory.buffer,
                CacheConfig(honor_bypass=honor, honor_kill=honor),
            )
            refs[label] = len(memory.buffer)
            cycles[label] = stats
        total = refs["conv"]
        conv = value_reference_time(cycles["conv"], 0, model)
        pure = value_reference_time(cycles["pure"], total - refs["pure"],
                                    model)
        hybrid = value_reference_time(
            cycles["hybrid"], total - refs["hybrid"], model
        )
        rows.append([
            name,
            "{:.2f}x".format(access_time_speedup(conv, pure)),
            "{:.2f}x".format(access_time_speedup(conv, hybrid)),
        ])
    print(format_table(["benchmark", "pure unified", "hybrid"], rows))
    print()
    print("The pure model bypasses every unambiguous reference; when the")
    print("allocator could not keep the value in a register (towers: hot")
    print("globals, calls everywhere), each reload pays a memory access.")
    print("The hybrid bypasses only spill/callee-save traffic and keeps")
    print("kill bits on everything else - it never loses.")


def main():
    combined_cache_demo()
    hybrid_demo()


if __name__ == "__main__":
    main()
