#!/usr/bin/env python
"""Alias-set explorer: see how the compiler groups names into alias
sets (paper Section 4.1) and how that drives cache-bypass decisions.

Includes the paper's own Figure 2 example of compile-time-unsolvable
aliasing: ``a[i+j] = a[i] + a[j]``.

Run:  python examples/alias_explorer.py
"""

from repro import CompilationOptions, compile_source
from repro.ir.instructions import Load, Store

EXAMPLES = {
    "figure2 (the paper's unsolvable case)": """
        int a[16];
        int main() {
            int i; int j;
            i = 3; j = 5;                  // stand-in for read(i, j)
            a[i + j] = a[i] + a[j];
            return a[8];
        }
    """,
    "clean scalars (everything register-worthy)": """
        int main() {
            int x; int y; int z;
            x = 1; y = 2; z = x + y;
            return z;
        }
    """,
    "address-taken scalar (forced into the cache-managed world)": """
        int main() {
            int x; int y; int *p;
            x = 1; y = 2;
            p = &x;
            *p = y;          // x and *p are ambiguous aliases
            return x;
        }
    """,
    "two pointers, one target": """
        int data[8];
        int sum(int *p, int n) {
            int s; int i;
            s = 0;
            for (i = 0; i < n; i++) s = s + p[i];
            return s;
        }
        int main() {
            int *q;
            q = data;
            q[0] = 5;
            return sum(data, 8);
        }
    """,
}


def describe(title, source):
    print("=" * 72)
    print(title)
    print("=" * 72)
    program = compile_source(
        source, CompilationOptions(scheme="unified", promotion="none")
    )

    print("alias sets:")
    for alias_set in program.alias_sets():
        print("   ", alias_set)

    print("points-to facts:")
    for pointer, regions in sorted(
        program.alias.points_to.items(), key=lambda item: item[0].id
    ):
        names = sorted(
            "{}{}".format(symbol.name, "[]" if kind == "array" else "")
            for kind, symbol in regions
        )
        print("    {} -> {{{}}}".format(pointer.name, ", ".join(names)))

    print("reference classification and load/store flavors:")
    seen = set()
    for function in program.module.functions.values():
        for instruction in function.instructions():
            if isinstance(instruction, (Load, Store)):
                line = "    {:24s} {:12s} {}".format(
                    instruction.ref.access_path,
                    instruction.ref.ref_class.value,
                    instruction.ref.flavor.value,
                )
                if line not in seen:
                    seen.add(line)
                    print(line)
    print()


def main():
    for title, source in EXAMPLES.items():
        describe(title, source)


if __name__ == "__main__":
    main()
