#!/usr/bin/env python
"""Reproduce Figure 5 of the paper: percent of data-cache reference
traffic reduction across the six DARPA/Stanford benchmarks.

Run:  python examples/figure5_reproduction.py            (seconds)
      python examples/figure5_reproduction.py --paper    (minutes)

The paper reports: statically 70-80% of data references unambiguous,
dynamically 45-75%, and about a 60% reduction in data-cache reference
traffic.  Exact numbers differ (our substrate is a MiniC compiler and
simulator, not the authors' MIPS toolchain), but the bands and the
per-benchmark shape reproduce.
"""

import argparse

from repro.evalharness.figure5 import figure5_table, format_figure5


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument(
        "--paper", action="store_true",
        help="use the paper's workload sizes (Bubble 500, Towers 18, ...)",
    )
    args = parser.parse_args()

    rows = figure5_table(paper_scale=args.paper)
    print(format_figure5(rows))


if __name__ == "__main__":
    main()
