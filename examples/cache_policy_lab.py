#!/usr/bin/env python
"""Cache-policy laboratory: the paper's Section 3.2 dead-line
modification applied to LRU, FIFO, Random and Belady's MIN.

Shows, per policy, what the kill (last-reference) bit buys: dead lines
freed immediately instead of decaying through the LRU stack, and dead
dirty lines dropped without write-backs.

Run:  python examples/cache_policy_lab.py [benchmark] [--cache-words N]
"""

import argparse

from repro.evalharness.sweeps import kill_bit_ablation, policy_ablation
from repro.evalharness.tables import format_table
from repro.programs import BENCHMARK_NAMES
from repro.unified.pipeline import CompilationOptions


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("benchmark", nargs="?", default="towers",
                        choices=list(BENCHMARK_NAMES))
    args = parser.parse_args()

    rows = policy_ablation(args.benchmark)
    print(format_table(
        ["policy", "kill bits", "miss rate", "misses", "writebacks",
         "dead drops", "bus words"],
        [
            [
                row["policy"],
                "on" if row["kill_bits"] else "off",
                "{:.4f}".format(row["miss_rate"]),
                row["misses"],
                row["writebacks"],
                row["dead_drops"],
                row["bus_words"],
            ]
            for row in rows
        ],
        title="policy x kill-bit grid, benchmark '{}', 256-word cache"
        .format(args.benchmark),
    ))

    print()
    # Default promotion: callee-save and spill traffic all flows through
    # the cache, which is where the kill bit shines brightest.
    rows = kill_bit_ablation(args.benchmark, options=CompilationOptions())
    print(format_table(
        ["cache words", "kill mode", "miss rate", "writebacks",
         "dead frees", "bus words"],
        [
            [
                row["size_words"],
                row["kill_mode"],
                "{:.4f}".format(row["miss_rate"]),
                row["writebacks"],
                row["dead_line_frees"],
                row["bus_words"],
            ]
            for row in rows
        ],
        title="kill-bit modes across cache sizes (invalidate = paper's "
              "'empty', demote = paper's 'make LRU', off = baseline)",
    ))


if __name__ == "__main__":
    main()
