#!/usr/bin/env python
"""Quickstart: compile a MiniC program under the unified model, look at
the annotated code, and measure what the cache bypass saves.

Run:  python examples/quickstart.py
"""

from repro import CompilationOptions, RecordingMemory, compile_source
from repro.cache import replay_trace
from repro.cache.cache import CacheConfig
from repro.ir.printer import format_function

SOURCE = """
// Dot product with an accumulator the compiler can prove unaliased.
int a[64];
int b[64];

int dot(int *x, int *y, int n) {
    int acc;
    int i;
    acc = 0;
    for (i = 0; i < n; i++) {
        acc = acc + x[i] * y[i];
    }
    return acc;
}

int main() {
    int i;
    for (i = 0; i < 64; i++) {
        a[i] = i;
        b[i] = 2 * i;
    }
    print(dot(a, b, 64));
    return 0;
}
"""


def main():
    # Compile under the unified registers/cache management model.
    # promotion="none" keeps every variable access visible as a memory
    # reference so the annotations are easy to see in the dump.
    program = compile_source(
        SOURCE, CompilationOptions(scheme="unified", promotion="none")
    )

    print("=== annotated machine code for dot() ===")
    print(format_function(program.module.functions["dot"]))

    print()
    print("=== alias sets (paper Section 4.1) ===")
    for alias_set in program.alias_sets():
        print("  ", alias_set)

    print()
    print("=== static classification ===")
    for label, value in program.static.rows():
        print("  {:28s} {}".format(label, value))

    # Execute once, recording every data reference with its bypass and
    # kill annotations.
    memory = RecordingMemory()
    result = program.run(memory=memory)
    print()
    print("program output:", result.output,
          "({} instructions executed)".format(result.steps))

    # Replay the same reference stream against the paper's cache (256
    # words, line size one) twice: honoring the annotations (unified)
    # and ignoring them (the conventional baseline).
    unified = replay_trace(memory.buffer, CacheConfig())
    baseline = replay_trace(
        memory.buffer,
        CacheConfig(honor_bypass=False, honor_kill=False),
    )

    print()
    print("=== unified vs conventional (256-word LRU data cache) ===")
    print("  data references:         ", unified.refs_total)
    print("  through cache (unified): ", unified.refs_cached)
    print("  through cache (baseline):", baseline.refs_cached)
    print("  cache reference traffic reduction: {:.1f}%".format(
        unified.cache_traffic_reduction_vs(baseline)))
    print("  dead-line frees from kill bits:    {}".format(
        unified.dead_line_frees + unified.dead_drops))


if __name__ == "__main__":
    main()
