#!/usr/bin/env python
"""Register pressure and spill-to-cache (paper Section 4.2).

Compiles a kernel with twenty simultaneously-live values for machines
with 16 and 8 registers, then shows where the spill traffic goes:
``AmSp_STORE`` through the cache, reload kills on last use, and the
resulting cache statistics for spill-to-cache versus spill-bypass.

Run:  python examples/register_pressure.py
"""

from repro import CompilationOptions, RecordingMemory, compile_source
from repro.cache import replay_trace
from repro.cache.cache import CacheConfig
from repro.ir.instructions import Load, MachineConfig, RefOrigin, Store
from repro.vm.trace import origin_from_flags

KERNEL = """
int main() {
    int a; int b; int c; int d; int e; int f; int g; int h;
    int i; int j; int k; int l; int m; int n; int o; int p;
    int q; int r; int s; int t;
    int round;
    for (round = 0; round < 50; round++) {
        a = round + 1;  b = a + 1;  c = b + 1;  d = c + 1;
        e = d + 1;      f = e + 1;  g = f + 1;  h = g + 1;
        i = h + 1;      j = i + 1;  k = j + 1;  l = k + 1;
        m = l + 1;      n = m + 1;  o = n + 1;  p = o + 1;
        q = p + 1;      r = q + 1;  s = r + 1;  t = s + 1;
        print(a + b + c + d + e + f + g + h + i + j
              + k + l + m + n + o + p + q + r + s + t
              + a * t + b * s + c * r + d * q + e * p
              + f * o + g * n + h * m + i * l + j * k);
    }
    return 0;
}
"""


def spill_report(num_regs, spill_to_cache):
    machine = MachineConfig(num_regs=num_regs,
                            num_caller_saved=num_regs // 2)
    program = compile_source(
        KERNEL,
        CompilationOptions(
            scheme="unified",
            promotion="aggressive",
            machine=machine,
            spill_to_cache=spill_to_cache,
        ),
    )
    stats = program.allocation_stats["main"]

    static_spills = sum(
        1
        for inst in program.module.functions["main"].instructions()
        if isinstance(inst, (Load, Store))
        and inst.ref.origin is RefOrigin.SPILL
    )

    memory = RecordingMemory()
    program.run(memory=memory)
    dynamic_spills = sum(
        1 for _addr, flags in memory.buffer
        if origin_from_flags(flags) is RefOrigin.SPILL
    )
    cache = replay_trace(memory.buffer, CacheConfig(size_words=64))
    return stats, static_spills, dynamic_spills, cache


def main():
    print("twenty simultaneously live values, graph-coloring allocation\n")
    for num_regs in (16, 8):
        for spill_to_cache in (True, False):
            stats, static_spills, dynamic_spills, cache = spill_report(
                num_regs, spill_to_cache
            )
            label = "through cache" if spill_to_cache else "bypassing cache"
            print("{} registers, spills {}:".format(num_regs, label))
            print("  spilled webs:          ", stats.spilled_webs)
            print("  coloring rounds:       ", stats.rounds)
            print("  static spill refs:     ", static_spills)
            print("  dynamic spill refs:    ", dynamic_spills)
            print("  cache hits / misses:    {} / {}".format(
                cache.hits, cache.misses))
            print("  dead-line frees:       ",
                  cache.dead_line_frees + cache.dead_drops)
            print("  bus words moved:       ", cache.bus_words)
            print()
    print("The paper's point: spilled values are short-lived and heavily")
    print("reused, so routing them through the cache (AmSp_STORE) turns")
    print("spill traffic into cache hits, while liveness-marked reloads")
    print("free the lines the moment the value dies.")


if __name__ == "__main__":
    main()
